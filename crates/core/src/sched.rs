//! List scheduling (paper §4.2–§4.6).
//!
//! The scheduler keeps a list of instructions that are ready to be
//! scheduled without causing a delay and, each iteration, picks the
//! ready instruction with the greatest maximum distance to a leaf of
//! the code DAG. Structural hazards are avoided by intersecting each
//! candidate's *resource vector* with the composite of the resources
//! in use (§4.3); multiple instruction issue falls out of disjoint
//! resource sets. Irregular instruction-word packing is checked with
//! *classes* — two sub-operations pack only if their class
//! intersection is non-empty (§4.5). Explicitly advanced pipelines
//! are handled with *temporal scheduling*: Rule 1 (an instruction that
//! affects clock `k` may not be scheduled before the open destination
//! of a temporal edge on `k`, though it may be packed with it) plus
//! temporal groups, which schedule all open destinations of a clock as
//! one unit (§4.6).

use crate::code::{CodeBlock, CodeFunc, Operand, VregKind};
use crate::dag::{CodeDag, EdgeKind};
use crate::error::{CodegenError, Phase};
use crate::explain::{log_stall, ScheduleExplanation, Stall, StallReason};
use marion_maril::machine::ClockId;
use marion_maril::{Machine, ResSet};
use marion_trace::Tracer;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Reusable per-block scratch buffers — a small bump arena for the
/// scheduler's hot state. One `Scratch` serves any number of
/// consecutive [`schedule_block_scratch`] calls (each call resets the
/// lengths it needs but keeps the capacity), so a caller walking a
/// whole function allocates the scheduler's working set once instead
/// of once per block. All state is dense: vreg-indexed, cycle-indexed,
/// or clock-indexed arrays — no hashing on the scheduling path.
#[derive(Default)]
pub struct Scratch {
    /// Remaining uses per local vreg (vreg-indexed; 0 = untracked).
    uses_left: Vec<u32>,
    /// Liveness flag per tracked local vreg (vreg-indexed).
    live_local: Vec<bool>,
    /// Temporal edge indices bucketed by clock id.
    temporal_by_clock: Vec<Vec<usize>>,
    /// Open temporal-group destination list.
    dests: Vec<usize>,
    /// Combined group resource vector, cycle-offset-indexed.
    extra: Vec<ResSet>,
    scheduled: Vec<bool>,
    pred_left: Vec<usize>,
    earliest: Vec<u32>,
    timeline: Vec<ResSet>,
    /// Ready-set worklist: instructions with all predecessors issued
    /// and operands arrived, plus each instruction's slot in it.
    ready: Vec<usize>,
    ready_pos: Vec<u32>,
    /// Min-heap of (arrival cycle, instruction) for instructions whose
    /// predecessors all issued but whose operands are still in flight.
    pending: BinaryHeap<Reverse<(u32, usize)>>,
    /// Open temporal edges per clock id.
    open_clock_edges: Vec<u32>,
}

impl Scratch {
    pub fn new() -> Scratch {
        Scratch::default()
    }
}

/// Scheduling options.
#[derive(Debug, Clone, Default)]
pub struct SchedOptions {
    /// IPS-style limit on simultaneously live *local* virtual
    /// registers per register class (paper §2: "schedules with a limit
    /// on local register use"). `None` = unlimited.
    pub local_reg_limit: Option<usize>,
    /// Skip Rule 1 and temporal grouping; only meaningful with a DAG
    /// built by [`crate::dag::build_dag_with`] with latch
    /// name-dependences, which then provide latch ordering.
    pub ignore_rule1: bool,
}

/// A completed block schedule.
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    /// Instructions issued per cycle, in issue order.
    pub cycles: Vec<Vec<usize>>,
    /// Issue cycle of each instruction.
    pub inst_cycle: Vec<u32>,
    /// Schedule length in issue cycles, including the trailing delay
    /// slots of a final branch — the scheduler's *estimate* of the
    /// block's execution cost (used by RASE and by Table 4).
    pub length: u32,
    /// Peak number of simultaneously live local virtual registers
    /// observed while scheduling.
    pub peak_local_pressure: usize,
    /// What the scheduler saw and did (cheap to collect; consumers
    /// decide whether to keep it).
    pub metrics: SchedMetrics,
    /// Per-instruction placement provenance: why each instruction
    /// issued when it did (see [`crate::explain`]). Empty on
    /// hand-built schedules.
    pub explanation: ScheduleExplanation,
}

/// Per-block scheduler observations: the code DAG's shape, how
/// contended the ready list got, and where cycles went.
#[derive(Debug, Clone, Default)]
pub struct SchedMetrics {
    /// Code DAG nodes (= block instructions).
    pub dag_nodes: usize,
    /// DAG edges by kind (paper edge types 1/2/3 plus ordering).
    pub edges_true: usize,
    pub edges_temporal: usize,
    pub edges_anti: usize,
    pub edges_output: usize,
    pub edges_mem: usize,
    pub edges_order: usize,
    /// Most instructions simultaneously ready (dependences satisfied,
    /// earliest cycle reached) at any scheduling step.
    pub ready_high_water: usize,
    /// Issue cycles in which nothing could be placed — latency or
    /// structural-hazard stalls the schedule could not fill.
    pub stall_cycles: usize,
    /// Temporal groups placed as a unit (§4.6 sequence scheduling).
    pub temporal_groups: usize,
    /// Sub-operations issued (multi-issue slot usage numerator).
    pub issue_slots_used: usize,
    /// Cycles that issued at least one sub-operation (instruction
    /// words emitted).
    pub issue_cycles: usize,
    /// Cycles that issued at least two sub-operations (packed words).
    pub packed_words: usize,
}

impl SchedMetrics {
    fn from_dag(dag: &CodeDag) -> SchedMetrics {
        let mut m = SchedMetrics {
            dag_nodes: dag.n,
            ..SchedMetrics::default()
        };
        for e in &dag.edges {
            match e.kind {
                EdgeKind::True => m.edges_true += 1,
                EdgeKind::TrueTemporal(_) => m.edges_temporal += 1,
                EdgeKind::Anti => m.edges_anti += 1,
                EdgeKind::Output => m.edges_output += 1,
                EdgeKind::Mem => m.edges_mem += 1,
                EdgeKind::Order => m.edges_order += 1,
            }
        }
        m
    }

    /// Total DAG edges of every kind.
    pub fn dag_edges(&self) -> usize {
        self.edges_true
            + self.edges_temporal
            + self.edges_anti
            + self.edges_output
            + self.edges_mem
            + self.edges_order
    }

    /// Sub-operations per issuing cycle (1.0 on a single-issue
    /// machine; above it when words pack).
    pub fn issue_utilization(&self) -> f64 {
        self.issue_slots_used as f64 / self.issue_cycles.max(1) as f64
    }
}

/// Schedules one block against its code DAG.
///
/// # Errors
///
/// Fails only on internal deadlock (which temporal-sequence
/// protection is designed to prevent); the error message names the
/// stuck instructions.
pub fn schedule_block(
    machine: &Machine,
    func: &CodeFunc,
    block: &CodeBlock,
    dag: &CodeDag,
    opts: &SchedOptions,
) -> Result<Schedule, CodegenError> {
    schedule_block_traced(machine, func, block, dag, opts, &Tracer::off())
}

/// [`schedule_block`] with micro-span attribution of the scheduler's
/// interior: ready-list scans, temporal-group probes, candidate
/// pick-and-place, and clock advances each fold into the tracer's
/// self-profile.
pub fn schedule_block_traced(
    machine: &Machine,
    func: &CodeFunc,
    block: &CodeBlock,
    dag: &CodeDag,
    opts: &SchedOptions,
    tracer: &Tracer,
) -> Result<Schedule, CodegenError> {
    schedule_block_scratch(machine, func, block, dag, opts, tracer, &mut Scratch::new())
}

/// [`schedule_block_traced`] with caller-provided [`Scratch`]: the hot
/// loops (`ready_scan`, `group_scan`, `pick_place`) allocate nothing,
/// and a caller scheduling many blocks (see [`crate::strategy`])
/// amortises the scheduler's working set across all of them.
pub fn schedule_block_scratch(
    machine: &Machine,
    func: &CodeFunc,
    block: &CodeBlock,
    dag: &CodeDag,
    opts: &SchedOptions,
    tracer: &Tracer,
    scratch: &mut Scratch,
) -> Result<Schedule, CodegenError> {
    let n = block.insts.len();
    if n == 0 {
        return Ok(Schedule::default());
    }
    let prep = tracer.mspan("prep");
    let priority = dag.critical_path();

    // Local-vreg pressure bookkeeping (for the IPS limit), dense over
    // vreg ids. A vreg the block never uses keeps a zero count, which
    // the dense reads treat exactly like the old missing map entry.
    let nv = func.vregs.len();
    scratch.uses_left.clear();
    scratch.uses_left.resize(nv, 0);
    scratch.live_local.clear();
    scratch.live_local.resize(nv, false);
    for inst in &block.insts {
        for op in inst.use_operands(machine) {
            if let Operand::Vreg(v) | Operand::VregHalf(v, _) = op {
                if func.vreg(*v).kind == VregKind::Local {
                    scratch.uses_left[v.0 as usize] += 1;
                }
            }
        }
    }

    // Temporal edges bucketed per clock, so the group and Rule-1 scans
    // touch only one clock's (few) temporal edges instead of the whole
    // edge list on every probe.
    for list in scratch.temporal_by_clock.iter_mut() {
        list.clear();
    }
    let nclocks = machine.clocks().len();
    if scratch.temporal_by_clock.len() < nclocks {
        scratch.temporal_by_clock.resize_with(nclocks, Vec::new);
    }
    for (ei, e) in dag.edges.iter().enumerate() {
        if let EdgeKind::TrueTemporal(k) = e.kind {
            scratch.temporal_by_clock[k.0 as usize].push(ei);
        }
    }

    scratch.scheduled.clear();
    scratch.scheduled.resize(n, false);
    scratch.pred_left.clear();
    scratch.pred_left.extend(dag.preds.iter().map(|p| p.len()));
    scratch.earliest.clear();
    scratch.earliest.resize(n, 0);
    scratch.timeline.clear();
    // Seed the ready worklist with the DAG roots. An instruction's
    // `earliest` is final once its last predecessor issues (nothing
    // updates it afterwards), so readiness is event-driven: the last
    // releasing `place` either enqueues the successor here or parks it
    // in the pending heap until its operands arrive.
    scratch.ready.clear();
    scratch.ready_pos.clear();
    scratch.ready_pos.resize(n, u32::MAX);
    scratch.pending.clear();
    scratch.open_clock_edges.clear();
    scratch.open_clock_edges.resize(nclocks, 0);
    for i in 0..n {
        if scratch.pred_left[i] == 0 {
            scratch.ready_pos[i] = scratch.ready.len() as u32;
            scratch.ready.push(i);
        }
    }

    let mut state = SchedState {
        machine,
        block,
        dag,
        priority,
        scheduled: std::mem::take(&mut scratch.scheduled),
        inst_cycle: vec![0u32; n],
        pred_left: std::mem::take(&mut scratch.pred_left),
        earliest: std::mem::take(&mut scratch.earliest),
        timeline: std::mem::take(&mut scratch.timeline),
        cycles: Vec::new(),
        t: 0,
        word_elems: None,
        live_local: std::mem::take(&mut scratch.live_local),
        live_count: 0,
        uses_left: std::mem::take(&mut scratch.uses_left),
        temporal_by_clock: std::mem::take(&mut scratch.temporal_by_clock),
        extra: std::mem::take(&mut scratch.extra),
        ready: std::mem::take(&mut scratch.ready),
        ready_pos: std::mem::take(&mut scratch.ready_pos),
        pending: std::mem::take(&mut scratch.pending),
        open_clock_edges: std::mem::take(&mut scratch.open_clock_edges),
        local_limit: opts.local_reg_limit,
        ignore_rule1: opts.ignore_rule1,
        peak_pressure: 0,
        func,
    };

    let mut metrics = SchedMetrics::from_dag(dag);
    drop(prep);
    // Per-instruction hazard log: one entry per cycle an instruction
    // was ready but could not issue, stamped just before the clock
    // advances (when cycle membership is final). Together with the
    // dependence wait derived afterwards this tiles
    // `[ready_cycle, issue_cycle)` exactly.
    let mut hazard: Vec<Vec<Stall>> = vec![Vec::new(); n];
    let mut remaining = n;
    let max_cycles = (n as u32 + 8) * 64 + 1024;
    // Rule-1 destination list, reused across cycles.
    let mut dests = std::mem::take(&mut scratch.dests);
    while remaining > 0 {
        // The worklist *is* the ready set, so the per-cycle count is a
        // length read; the span only brackets high-water bookkeeping.
        let ready = {
            let _m = tracer.mspan("ready_scan");
            debug_assert!(state.ready.iter().all(|&i| state.is_ready(i)));
            debug_assert_eq!(
                state.ready.len(),
                (0..n).filter(|&i| state.is_ready(i)).count()
            );
            state.ready.len()
        };
        metrics.ready_high_water = metrics.ready_high_water.max(ready);
        let mut progress = true;
        while progress {
            progress = false;
            // 1. Temporal groups: all open destinations of a clock go
            //    together.
            if !opts.ignore_rule1 {
                let _m = tracer.mspan("group_scan");
                for k in 0..nclocks {
                    if state.open_clock_edges[k] == 0 {
                        continue;
                    }
                    let clock = ClockId(k as u32);
                    state.open_dests_into(clock, &mut dests);
                    if dests.is_empty() {
                        continue;
                    }
                    if state.try_place_group(&dests) {
                        remaining -= dests.len();
                        metrics.temporal_groups += 1;
                        progress = true;
                    }
                }
            }
            // 2. Best regular candidate.
            let _m = tracer.mspan("pick_place");
            if let Some(i) = state.pick_candidate(remaining) {
                state.place(i);
                remaining -= 1;
                progress = true;
            }
        }
        if remaining > 0 {
            let _m = tracer.mspan("advance");
            for idx in 0..state.ready.len() {
                let i = state.ready[idx];
                log_stall(&mut hazard[i], state.t, state.stall_reason_at(i));
            }
            state.advance_cycle();
            if state.t > max_cycles {
                let stuck: Vec<usize> = (0..n).filter(|i| !state.scheduled[*i]).collect();
                state.reclaim(scratch, dests);
                return Err(CodegenError::new(
                    Phase::Schedule,
                    format!("scheduling deadlock; unscheduled instructions {stuck:?}"),
                ));
            }
        }
    }

    let _m = tracer.mspan("finalize");
    let (cycles, inst_cycle, peak_pressure) = state.reclaim(scratch, dests);
    // Schedule length: last issue cycle + 1, plus the delay slots of
    // the block's final control transfer.
    let mut length = cycles.len() as u32;
    if let Some(last) = block
        .insts
        .iter()
        .enumerate()
        .filter(|(_, inst)| inst.is_control(machine))
        .map(|(i, _)| i)
        .max()
    {
        let slots = machine.template(block.insts[last].template).slots;
        length = length.max(inst_cycle[last] + 1 + slots.unsigned_abs());
    }
    metrics.issue_slots_used = n;
    metrics.issue_cycles = cycles.iter().filter(|c| !c.is_empty()).count();
    metrics.packed_words = cycles.iter().filter(|c| c.len() >= 2).count();
    metrics.stall_cycles = cycles.iter().filter(|c| c.is_empty()).count();
    let (slack, critical_path) = crate::explain::critical_path_slack(dag);
    let explanation = ScheduleExplanation {
        records: crate::explain::build_records(dag, &inst_cycle, hazard),
        slack,
        critical_path,
        critical_path_cycles: crate::explain::critical_path_cycles(dag),
        discipline: if opts.ignore_rule1 {
            "name-deps"
        } else {
            "rule1"
        },
    };
    Ok(Schedule {
        cycles,
        inst_cycle,
        length,
        peak_local_pressure: peak_pressure,
        metrics,
        explanation,
    })
}

/// Verifies that a schedule satisfies every constraint the paper
/// imposes (used by tests and property checks):
///
/// 1. **dependence** — for every DAG edge `(x, y, l)`,
///    `cycle(y) ≥ cycle(x) + l`;
/// 2. **structural** — no resource is claimed twice in any cycle
///    (§4.3);
/// 3. **packing** — the classes of all classed sub-operations issued
///    in one cycle have a non-empty intersection (§4.5);
/// 4. **Rule 1** — no instruction affecting clock `k` issues strictly
///    between the source and destination cycles of a temporal edge on
///    `k` (§4.6).
///
/// Returns a description of the first violation.
pub fn verify_schedule(
    machine: &Machine,
    block: &CodeBlock,
    dag: &CodeDag,
    schedule: &Schedule,
) -> Result<(), String> {
    verify_schedule_with(machine, block, dag, schedule, true)
}

/// [`verify_schedule`] with Rule 1 optional: schedules produced under
/// the latch name-dependence fallback discipline get their latch
/// safety from DAG edges instead, so constraint 4 does not apply.
pub fn verify_schedule_with(
    machine: &Machine,
    block: &CodeBlock,
    dag: &CodeDag,
    schedule: &Schedule,
    check_rule1: bool,
) -> Result<(), String> {
    let n = block.insts.len();
    if schedule.inst_cycle.len() != n {
        return Err(format!(
            "schedule covers {} of {} instructions",
            schedule.inst_cycle.len(),
            n
        ));
    }
    // 1. Dependences.
    for e in &dag.edges {
        let (cf, ct) = (schedule.inst_cycle[e.from], schedule.inst_cycle[e.to]);
        if ct < cf + e.latency {
            return Err(format!(
                "edge {} -> {} (lat {}) violated: cycles {cf} -> {ct} ({:?})",
                e.from, e.to, e.latency, e.kind
            ));
        }
    }
    // 2. Structural hazards (cycle-indexed reservation timeline).
    let mut usage: Vec<ResSet> = Vec::new();
    for (i, inst) in block.insts.iter().enumerate() {
        let t = machine.template(inst.template);
        for (c, need) in t.rsrc.iter().enumerate() {
            let at = (schedule.inst_cycle[i] + c as u32) as usize;
            if usage.len() <= at {
                usage.resize(at + 1, ResSet::EMPTY);
            }
            if usage[at].intersects(need) {
                return Err(format!(
                    "resource conflict at cycle {at} caused by instruction {i}"
                ));
            }
            usage[at].union_with(need);
        }
    }
    // 3. Class packing (cycle-indexed membership lists).
    let max_cycle = schedule.inst_cycle.iter().copied().max().unwrap_or(0) as usize;
    let mut per_cycle: Vec<Vec<usize>> = vec![Vec::new(); max_cycle + 1];
    for (i, c) in schedule.inst_cycle.iter().enumerate() {
        per_cycle[*c as usize].push(i);
    }
    for (cycle, members) in per_cycle.iter().enumerate() {
        let mut word: Option<ResSet> = None;
        for &i in members {
            if let Some(cid) = machine.template(block.insts[i].template).class {
                let elems = machine.class(cid).elements;
                word = Some(match word {
                    None => elems,
                    Some(w) => {
                        let inter = w.intersection(&elems);
                        if inter.is_empty() {
                            return Err(format!(
                                "illegal packing at cycle {cycle}: classes do not intersect"
                            ));
                        }
                        inter
                    }
                });
            }
        }
    }
    // 4. Rule 1.
    if !check_rule1 {
        return Ok(());
    }
    for e in &dag.edges {
        let EdgeKind::TrueTemporal(k) = e.kind else {
            continue;
        };
        let (cf, ct) = (schedule.inst_cycle[e.from], schedule.inst_cycle[e.to]);
        for (z, inst) in block.insts.iter().enumerate() {
            if z == e.to || z == e.from {
                continue;
            }
            if machine.template(inst.template).affects_clock == Some(k) {
                let cz = schedule.inst_cycle[z];
                if cz > cf && cz < ct {
                    return Err(format!(
                        "Rule 1 violated: instruction {z} (affects clock {k}) at cycle                          {cz} sits inside temporal edge {} -> {} (cycles {cf} -> {ct})",
                        e.from, e.to
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Schedules a block with the full fallback ladder the strategies
/// use: Rule 1 list scheduling, then same-clock sequence
/// serialisation, then the latch name-dependence discipline, then a
/// serial thread-order schedule. Never fails; the returned flag names
/// the discipline that succeeded.
pub fn schedule_block_robust(
    machine: &Machine,
    func: &CodeFunc,
    block: &CodeBlock,
    opts: &SchedOptions,
) -> (Schedule, &'static str) {
    schedule_block_robust_traced(machine, func, block, opts, &Tracer::off())
}

/// [`schedule_block_robust`] with micro-span attribution: DAG
/// construction for each fallback rung folds into `dag_build`, and the
/// list scheduler's interior is traced via [`schedule_block_traced`].
pub fn schedule_block_robust_traced(
    machine: &Machine,
    func: &CodeFunc,
    block: &CodeBlock,
    opts: &SchedOptions,
    tracer: &Tracer,
) -> (Schedule, &'static str) {
    schedule_block_robust_scratch(machine, func, block, opts, tracer, &mut Scratch::new())
}

/// [`schedule_block_robust_traced`] with caller-provided [`Scratch`],
/// reused by every rung of the fallback ladder.
pub fn schedule_block_robust_scratch(
    machine: &Machine,
    func: &CodeFunc,
    block: &CodeBlock,
    opts: &SchedOptions,
    tracer: &Tracer,
    scratch: &mut Scratch,
) -> (Schedule, &'static str) {
    let m = tracer.mspan("dag_build");
    let dag = crate::dag::build_dag(machine, block, true);
    drop(m);
    if let Ok(s) = schedule_block_scratch(machine, func, block, &dag, opts, tracer, scratch) {
        return (s, "rule1");
    }
    let m = tracer.mspan("dag_build");
    let mut dag2 = crate::dag::build_dag(machine, block, true);
    crate::dag::serialize_same_clock_sequences(&mut dag2);
    drop(m);
    if let Ok(mut s) = schedule_block_scratch(machine, func, block, &dag2, opts, tracer, scratch) {
        s.explanation.discipline = "serialized";
        return (s, "serialized");
    }
    let m = tracer.mspan("dag_build");
    let dag3 = crate::dag::build_dag_with(machine, block, true, true);
    drop(m);
    let relaxed = SchedOptions {
        ignore_rule1: true,
        ..opts.clone()
    };
    if let Ok(s) = schedule_block_scratch(machine, func, block, &dag3, &relaxed, tracer, scratch) {
        return (s, "name-deps");
    }
    (serial_schedule(machine, block, &dag3), "serial")
}

/// A degenerate but always-valid schedule: instructions in code-thread
/// order, one per cycle, delayed only by DAG latencies and structural
/// hazards. Used as the last-resort fallback when list scheduling with
/// Rule 1 deadlocks on a pathological explicitly-advanced-pipeline
/// interleaving: under the simulator's read-old/write-new word
/// semantics, thread order preserves the latch dataflow the code DAG
/// records.
pub fn serial_schedule(machine: &Machine, block: &CodeBlock, dag: &CodeDag) -> Schedule {
    let n = block.insts.len();
    let mut inst_cycle = vec![0u32; n];
    let mut timeline: Vec<ResSet> = Vec::new();
    let mut t = 0u32;
    let mut cycles: Vec<Vec<usize>> = Vec::new();
    let mut hazard: Vec<Vec<Stall>> = vec![Vec::new(); n];
    for i in 0..n {
        let mut dep_at = 0u32;
        for &ei in &dag.preds[i] {
            let e = dag.edges[ei];
            dep_at = dep_at.max(inst_cycle[e.from] + e.latency);
        }
        let mut at = dep_at.max(t);
        if at > dep_at {
            // Waiting for the serial cursor, not for a dependence.
            hazard[i].push(Stall {
                at: dep_at,
                cycles: at - dep_at,
                reason: StallReason::ThreadOrder,
            });
        }
        let tmpl = machine.template(block.insts[i].template);
        'search: loop {
            for (c, need) in tmpl.rsrc.iter().enumerate() {
                let idx = at as usize + c;
                if timeline.len() > idx && timeline[idx].intersects(need) {
                    if let Some(r) = timeline[idx].intersection(need).iter().next() {
                        log_stall(&mut hazard[i], at, StallReason::Resource { resource: r });
                    }
                    at += 1;
                    continue 'search;
                }
            }
            break;
        }
        for (c, need) in tmpl.rsrc.iter().enumerate() {
            let idx = at as usize + c;
            if timeline.len() <= idx {
                timeline.resize(idx + 1, ResSet::EMPTY);
            }
            timeline[idx].union_with(need);
        }
        inst_cycle[i] = at;
        while cycles.len() <= at as usize {
            cycles.push(Vec::new());
        }
        cycles[at as usize].push(i);
        // Strictly serial: the next instruction issues later.
        t = at + 1;
    }
    let mut length = cycles.len() as u32;
    if let Some(last) = block
        .insts
        .iter()
        .enumerate()
        .filter(|(_, inst)| inst.is_control(machine))
        .map(|(i, _)| i)
        .max()
    {
        let slots = machine.template(block.insts[last].template).slots;
        length = length.max(inst_cycle[last] + 1 + slots.unsigned_abs());
    }
    let mut metrics = SchedMetrics::from_dag(dag);
    metrics.issue_slots_used = n;
    metrics.issue_cycles = cycles.iter().filter(|c| !c.is_empty()).count();
    metrics.packed_words = cycles.iter().filter(|c| c.len() >= 2).count();
    metrics.stall_cycles = cycles.iter().filter(|c| c.is_empty()).count();
    let (slack, critical_path) = crate::explain::critical_path_slack(dag);
    let explanation = ScheduleExplanation {
        records: crate::explain::build_records(dag, &inst_cycle, hazard),
        slack,
        critical_path,
        critical_path_cycles: crate::explain::critical_path_cycles(dag),
        discipline: "serial",
    };
    Schedule {
        cycles,
        inst_cycle,
        length,
        peak_local_pressure: 0,
        metrics,
        explanation,
    }
}

/// Renders a block schedule as a reservation table: one row per
/// cycle, one column per declared resource, `X` where the cycle
/// claims the resource (§4.3's composite resource vector, unrolled
/// over time). A trailing column lists the sub-operations issued that
/// cycle, so packed words on a multi-issue machine read directly off
/// the table. Empty for an empty block.
pub fn reservation_rows(machine: &Machine, block: &CodeBlock, schedule: &Schedule) -> Vec<String> {
    if block.insts.is_empty() {
        return Vec::new();
    }
    let names = machine.resources();
    let mut timeline: Vec<ResSet> = Vec::new();
    for (i, inst) in block.insts.iter().enumerate() {
        let t = machine.template(inst.template);
        for (c, need) in t.rsrc.iter().enumerate() {
            let at = schedule.inst_cycle[i] as usize + c;
            if timeline.len() <= at {
                timeline.resize(at + 1, ResSet::EMPTY);
            }
            timeline[at].union_with(need);
        }
    }
    let width = names.iter().map(|n| n.len()).max().unwrap_or(1).max(2);
    let mut rows = Vec::with_capacity(timeline.len() + 1);
    let header: Vec<String> = names.iter().map(|n| format!("{n:>width$}")).collect();
    rows.push(format!("cycle | {} | issued", header.join(" ")));
    for (c, used) in timeline.iter().enumerate() {
        let cells: Vec<String> = (0..names.len())
            .map(|r| {
                let mark = if used.contains(r as u32) { "X" } else { "." };
                format!("{mark:>width$}")
            })
            .collect();
        let issued = schedule
            .cycles
            .get(c)
            .map(|members| {
                members
                    .iter()
                    .map(|&i| machine.template(block.insts[i].template).mnemonic.as_str())
                    .collect::<Vec<_>>()
                    .join(" + ")
            })
            .unwrap_or_default();
        rows.push(format!("{c:>5} | {} | {issued}", cells.join(" ")));
    }
    rows
}

struct SchedState<'a> {
    machine: &'a Machine,
    block: &'a CodeBlock,
    dag: &'a CodeDag,
    priority: Vec<u32>,
    scheduled: Vec<bool>,
    inst_cycle: Vec<u32>,
    pred_left: Vec<usize>,
    earliest: Vec<u32>,
    timeline: Vec<ResSet>,
    cycles: Vec<Vec<usize>>,
    t: u32,
    /// Intersection of the packing classes issued this cycle.
    word_elems: Option<ResSet>,
    /// Vreg-indexed liveness of tracked locals plus an incrementally
    /// maintained count of `true` entries (the IPS pressure figure).
    live_local: Vec<bool>,
    live_count: usize,
    /// Vreg-indexed remaining-use counts; 0 means untracked.
    uses_left: Vec<u32>,
    /// Temporal edge indices bucketed by clock id, in edge order.
    temporal_by_clock: Vec<Vec<usize>>,
    /// Reusable group resource-probe buffer.
    extra: Vec<ResSet>,
    /// Exactly the instructions for which [`SchedState::is_ready`]
    /// holds, maintained incrementally; `ready_pos[i]` is `i`'s slot
    /// (or `u32::MAX`) so placement removes in O(1). Membership can
    /// only end by issuing: `earliest` never moves once `pred_left`
    /// hits zero and `t` never decreases.
    ready: Vec<usize>,
    ready_pos: Vec<u32>,
    /// Instructions whose predecessors all issued but whose operands
    /// land at a future cycle, keyed by that cycle.
    pending: BinaryHeap<Reverse<(u32, usize)>>,
    /// Open temporal edges per clock (source issued, destination
    /// not): the group scan, Rule 1 and stall attribution all probe
    /// "is anything open on this clock" — a counter answers that
    /// without walking the clock's edge bucket.
    open_clock_edges: Vec<u32>,
    local_limit: Option<usize>,
    ignore_rule1: bool,
    peak_pressure: usize,
    func: &'a CodeFunc,
}

impl<'a> SchedState<'a> {
    /// Returns the reusable buffers to `scratch` and hands back the
    /// pieces the caller still needs.
    fn reclaim(
        self,
        scratch: &mut Scratch,
        dests: Vec<usize>,
    ) -> (Vec<Vec<usize>>, Vec<u32>, usize) {
        scratch.scheduled = self.scheduled;
        scratch.pred_left = self.pred_left;
        scratch.earliest = self.earliest;
        scratch.timeline = self.timeline;
        scratch.live_local = self.live_local;
        scratch.uses_left = self.uses_left;
        scratch.temporal_by_clock = self.temporal_by_clock;
        scratch.extra = self.extra;
        scratch.ready = self.ready;
        scratch.ready_pos = self.ready_pos;
        scratch.pending = self.pending;
        scratch.open_clock_edges = self.open_clock_edges;
        scratch.dests = dests;
        (self.cycles, self.inst_cycle, self.peak_pressure)
    }

    /// Destinations of currently open temporal edges on `clock`:
    /// source scheduled, destination not.
    fn open_dests_into(&self, clock: ClockId, out: &mut Vec<usize>) {
        out.clear();
        for &ei in &self.temporal_by_clock[clock.0 as usize] {
            let e = &self.dag.edges[ei];
            if self.scheduled[e.from] && !self.scheduled[e.to] && !out.contains(&e.to) {
                out.push(e.to);
            }
        }
    }

    fn is_ready(&self, i: usize) -> bool {
        !self.scheduled[i] && self.pred_left[i] == 0 && self.earliest[i] <= self.t
    }

    fn push_ready(&mut self, i: usize) {
        self.ready_pos[i] = self.ready.len() as u32;
        self.ready.push(i);
    }

    fn remove_ready(&mut self, i: usize) {
        let p = self.ready_pos[i] as usize;
        let last = self.ready.pop().expect("ready list underflow");
        if last != i {
            self.ready[p] = last;
            self.ready_pos[last] = p as u32;
        }
        self.ready_pos[i] = u32::MAX;
    }

    /// All of `j`'s predecessors have issued: make it ready now or
    /// park it until its operands arrive.
    fn release(&mut self, j: usize) {
        if self.earliest[j] <= self.t {
            self.push_ready(j);
        } else {
            self.pending.push(Reverse((self.earliest[j], j)));
        }
    }

    fn drain_pending(&mut self) {
        while let Some(&Reverse((at, j))) = self.pending.peek() {
            if at > self.t {
                break;
            }
            self.pending.pop();
            self.push_ready(j);
        }
    }

    fn resources_fit(&self, i: usize, extra: &[ResSet]) -> bool {
        let t = self.machine.template(self.block.insts[i].template);
        for (c, need) in t.rsrc.iter().enumerate() {
            let at = self.t as usize + c;
            let mut in_use = self.timeline.get(at).copied().unwrap_or(ResSet::EMPTY);
            if let Some(e) = extra.get(c) {
                in_use.union_with(e);
            }
            if in_use.intersects(need) {
                return false;
            }
        }
        true
    }

    fn class_fits(&self, i: usize, word: Option<ResSet>) -> (bool, Option<ResSet>) {
        let t = self.machine.template(self.block.insts[i].template);
        match t.class {
            None => (true, word),
            Some(cid) => {
                let elems = self.machine.class(cid).elements;
                match word {
                    None => (true, Some(elems)),
                    Some(w) => {
                        let inter = w.intersection(&elems);
                        (!inter.is_empty(), Some(inter))
                    }
                }
            }
        }
    }

    /// Rule 1 (paper §4.6): if there is a temporal edge `(x, y)` based
    /// on clock `k` and `x` has been scheduled, an instruction `z ≠ y`
    /// that affects `k` may not be scheduled before `y` — but may be
    /// *packed* with it. In cycle terms: `z` may issue at cycle `t`
    /// only if every open temporal edge on `k` (other than one ending
    /// at `z` itself) has its source issued in this same cycle, so the
    /// pending latch value is consumed by the same clock tick `z`
    /// rides on.
    fn rule1_allows(&self, i: usize) -> bool {
        if self.ignore_rule1 {
            return true;
        }
        let Some(k) = self
            .machine
            .template(self.block.insts[i].template)
            .affects_clock
        else {
            return true;
        };
        if self.open_clock_edges[k.0 as usize] == 0 {
            return true;
        }
        for &ei in &self.temporal_by_clock[k.0 as usize] {
            let e = &self.dag.edges[ei];
            if self.scheduled[e.from]
                && !self.scheduled[e.to]
                && e.to != i
                && self.inst_cycle[e.from] != self.t
            {
                return false;
            }
        }
        true
    }

    /// IPS pressure check: would scheduling `i` push live local vregs
    /// past the limit?
    fn pressure_allows(&self, i: usize) -> bool {
        let Some(limit) = self.local_limit else {
            return true;
        };
        let delta = self.pressure_delta(i);
        self.live_count as i64 + delta <= limit as i64
    }

    fn pressure_delta(&self, i: usize) -> i64 {
        let inst = &self.block.insts[i];
        let mut delta = 0i64;
        for op in inst.use_operands(self.machine) {
            if let Operand::Vreg(v) | Operand::VregHalf(v, _) = op {
                let vi = v.0 as usize;
                if self.uses_left[vi] == 1 && self.live_local[vi] {
                    delta -= 1;
                }
            }
        }
        for op in inst.def_operands(self.machine) {
            if let Operand::Vreg(v) | Operand::VregHalf(v, _) = op {
                let vi = v.0 as usize;
                if self.func.vreg(*v).kind == VregKind::Local
                    && self.uses_left[vi] > 0
                    && !self.live_local[vi]
                {
                    delta += 1;
                }
            }
        }
        delta
    }

    fn pick_candidate(&mut self, remaining: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        let mut relax_best: Option<usize> = None;
        // The winner is the maximum of a total order (priority, then
        // lowest index), so walking the unordered ready list picks the
        // same instruction the full 0..n scan did.
        for idx in 0..self.ready.len() {
            let i = self.ready[idx];
            debug_assert!(self.is_ready(i));
            if !self.rule1_allows(i) {
                continue;
            }
            if !self.resources_fit(i, &[]) {
                continue;
            }
            if !self.class_fits(i, self.word_elems).0 {
                continue;
            }
            let better = |cur: Option<usize>| {
                cur.is_none_or(|b| {
                    (self.priority[i], std::cmp::Reverse(i))
                        > (self.priority[b], std::cmp::Reverse(b))
                })
            };
            if self.pressure_allows(i) {
                if better(best) {
                    best = Some(i);
                }
            } else if better(relax_best) {
                relax_best = Some(i);
            }
        }
        // When the register limit blocks everything *and* advancing
        // time cannot make anything new ready (every unscheduled
        // instruction either is already ready-but-blocked or waits on
        // a blocked producer), exceed the limit rather than deadlock
        // (Goodman–Hsu switch from CSP to CSR).
        if best.is_none() && remaining > 0 {
            if let Some(r) = relax_best {
                // The pending heap holds exactly the released-but-not-
                // arrived instructions, i.e. the old full-scan
                // "ready-once-time-advances" set.
                if self.pending.is_empty() {
                    return Some(r);
                }
            }
        }
        best
    }

    /// Attempts to place an entire temporal group this cycle.
    fn try_place_group(&mut self, dests: &[usize]) -> bool {
        // Every member must be ready.
        if !dests.iter().all(|&d| self.is_ready(d)) {
            return false;
        }
        // Chained members can affect a *different* clock than the
        // group's (the i860's M1a is a clk_a-edge destination but
        // ticks clk_m): Rule 1 must hold for those clocks too, with
        // edges whose destinations are inside this group counting as
        // satisfied (they issue this very cycle).
        for &d in dests {
            let Some(k) = self
                .machine
                .template(self.block.insts[d].template)
                .affects_clock
            else {
                continue;
            };
            if self.open_clock_edges[k.0 as usize] == 0 {
                continue;
            }
            for &ei in &self.temporal_by_clock[k.0 as usize] {
                let e = &self.dag.edges[ei];
                if self.scheduled[e.from]
                    && !self.scheduled[e.to]
                    && e.to != d
                    && !dests.contains(&e.to)
                    && self.inst_cycle[e.from] != self.t
                {
                    return false;
                }
            }
        }
        // Combined resources must fit and classes must intersect.
        let mut extra = std::mem::take(&mut self.extra);
        extra.clear();
        let ok = self.group_resources_fit(dests, &mut extra);
        self.extra = extra;
        if !ok {
            return false;
        }
        for &d in dests {
            self.place(d);
        }
        true
    }

    /// Combined resource + class probe for a temporal group, writing
    /// the group's composite resource vector into `extra`.
    fn group_resources_fit(&self, dests: &[usize], extra: &mut Vec<ResSet>) -> bool {
        let mut word = self.word_elems;
        for &d in dests {
            let t = self.machine.template(self.block.insts[d].template);
            let (ok, new_word) = self.class_fits(d, word);
            if !ok {
                return false;
            }
            word = new_word;
            for (c, need) in t.rsrc.iter().enumerate() {
                if extra.len() <= c {
                    extra.resize(c + 1, ResSet::EMPTY);
                }
                if extra[c].intersects(need) {
                    return false;
                }
                extra[c].union_with(need);
            }
        }
        for (c, e) in extra.iter().enumerate() {
            let at = self.t as usize + c;
            let in_use = self.timeline.get(at).copied().unwrap_or(ResSet::EMPTY);
            if in_use.intersects(e) {
                return false;
            }
        }
        true
    }

    fn place(&mut self, i: usize) {
        debug_assert!(!self.scheduled[i]);
        self.remove_ready(i);
        // Reborrow through the 'a references so the operand iterators
        // below don't hold `&self` across the map mutations.
        let block = self.block;
        let machine = self.machine;
        let inst = &block.insts[i];
        let t = machine.template(inst.template);
        // Commit resources.
        for (c, need) in t.rsrc.iter().enumerate() {
            let at = self.t as usize + c;
            if self.timeline.len() <= at {
                self.timeline.resize(at + 1, ResSet::EMPTY);
            }
            self.timeline[at].union_with(need);
        }
        // Commit the word class.
        let (_, word) = self.class_fits(i, self.word_elems);
        self.word_elems = word;
        // Record.
        self.scheduled[i] = true;
        self.inst_cycle[i] = self.t;
        while self.cycles.len() <= self.t as usize {
            self.cycles.push(Vec::new());
        }
        self.cycles[self.t as usize].push(i);
        // Release successors. The last releasing edge fixes the
        // successor's `earliest` for good, so it can be enqueued at
        // exactly that arrival cycle. Issuing a temporal source opens
        // its edge (the destination cannot have issued first — it
        // depends on the source); issuing a destination closes every
        // temporal edge into it.
        for &ei in &self.dag.succs[i] {
            let e = self.dag.edges[ei];
            if let EdgeKind::TrueTemporal(k) = e.kind {
                self.open_clock_edges[k.0 as usize] += 1;
            }
            self.pred_left[e.to] -= 1;
            self.earliest[e.to] = self.earliest[e.to].max(self.t + e.latency);
            if self.pred_left[e.to] == 0 {
                self.release(e.to);
            }
        }
        for &ei in &self.dag.preds[i] {
            if let EdgeKind::TrueTemporal(k) = self.dag.edges[ei].kind {
                self.open_clock_edges[k.0 as usize] -= 1;
            }
        }
        // Pressure bookkeeping. `live_count` tracks the number of
        // `true` liveness flags incrementally: uses first (a final use
        // kills its vreg), then defs (a def of a still-used local
        // makes it live).
        for op in inst.use_operands(machine) {
            if let Operand::Vreg(v) | Operand::VregHalf(v, _) = *op {
                let vi = v.0 as usize;
                if self.uses_left[vi] > 0 {
                    self.uses_left[vi] -= 1;
                    if self.uses_left[vi] == 0 && self.live_local[vi] {
                        self.live_local[vi] = false;
                        self.live_count -= 1;
                    }
                }
            }
        }
        for op in inst.def_operands(machine) {
            if let Operand::Vreg(v) | Operand::VregHalf(v, _) = *op {
                let vi = v.0 as usize;
                if self.func.vreg(v).kind == VregKind::Local
                    && self.uses_left[vi] > 0
                    && !self.live_local[vi]
                {
                    self.live_local[vi] = true;
                    self.live_count += 1;
                }
            }
        }
        self.peak_pressure = self.peak_pressure.max(self.live_count);
    }

    fn advance_cycle(&mut self) {
        if self.ready.is_empty() {
            // Nothing can issue until an in-flight result lands: jump
            // straight to the next arrival. The skipped cycles are
            // provably empty, so the schedule is identical — only the
            // walk is shorter. With nothing pending either this is a
            // deadlock; stepping once lets the caller's cycle cap
            // fire with its usual diagnostic.
            self.t = match self.pending.peek() {
                Some(&Reverse((at, _))) => at,
                None => self.t + 1,
            };
        } else {
            self.t += 1;
        }
        self.drain_pending();
        self.word_elems = None;
        while self.cycles.len() < self.t as usize {
            self.cycles.push(Vec::new());
        }
    }

    /// Why a ready instruction cannot issue in the current cycle,
    /// mirroring [`SchedState::pick_candidate`]'s check order (Rule 1,
    /// resources, packing, pressure); the first failing check is the
    /// recorded reason. Called only at cycle-advance time, when the
    /// inner placement loop has reached a fixpoint, so at least one
    /// check fails for every ready instruction; `Other` is a
    /// defensive fallback.
    fn stall_reason_at(&self, i: usize) -> StallReason {
        if !self.ignore_rule1 {
            if let Some(k) = self
                .machine
                .template(self.block.insts[i].template)
                .affects_clock
            {
                if self.open_clock_edges[k.0 as usize] > 0 {
                    for &ei in &self.temporal_by_clock[k.0 as usize] {
                        let e = &self.dag.edges[ei];
                        if self.scheduled[e.from]
                            && !self.scheduled[e.to]
                            && e.to != i
                            && self.inst_cycle[e.from] != self.t
                        {
                            return StallReason::Temporal {
                                clock: k,
                                pending_src: e.from,
                                pending_dst: e.to,
                            };
                        }
                    }
                }
            }
        }
        let t = self.machine.template(self.block.insts[i].template);
        for (c, need) in t.rsrc.iter().enumerate() {
            let at = self.t as usize + c;
            let in_use = self.timeline.get(at).copied().unwrap_or(ResSet::EMPTY);
            if let Some(r) = in_use.intersection(need).iter().next() {
                return StallReason::Resource { resource: r };
            }
        }
        if !self.class_fits(i, self.word_elems).0 {
            return StallReason::ClassPacking;
        }
        if !self.pressure_allows(i) {
            return StallReason::RegPressure;
        }
        StallReason::Other
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::{CodeFunc, ImmVal, Inst, Vreg};
    use crate::dag::build_dag;
    use marion_maril::RegClassId;

    const TOY: &str = r#"
        declare {
            %reg r[0:7] (int);
            %resource IF; ID; IE; IA; IW; MUL;
            %def const16 [-32768:32767];
            %label rlab [-32768:32767] +relative;
            %memory m[0:2147483647];
        }
        cwvm { %general (int) r; %allocable r[1:5]; %sp r[7] +down; %fp r[6] +down; %retaddr r[1]; }
        instr {
            %instr add r, r, r (int) {$1 = $2 + $3;} [IE;] (1,1,0)
            %instr mul r, r, r (int) {$1 = $2 * $3;} [IE; MUL; MUL; MUL;] (1,4,0)
            %instr ld r, r, #const16 (int) {$1 = m[$2+$3];} [IE; IA;] (1,3,0)
            %instr st r, r, #const16 (int) {m[$2+$3] = $1;} [IE; IA;] (1,1,0)
            %instr beq0 r, #rlab {if ($1 == 0) goto $2;} [IE;] (1,2,1)
            %instr nop {} [IE;] (1,1,0)
        }
    "#;

    fn toy() -> Machine {
        Machine::parse("toy", TOY).unwrap()
    }

    fn v(n: u32) -> Operand {
        Operand::Vreg(Vreg(n))
    }

    fn imm(c: i64) -> Operand {
        Operand::Imm(ImmVal::Const(c))
    }

    fn setup(_m: &Machine, insts: Vec<Inst>) -> (CodeFunc, CodeBlock) {
        let mut f = CodeFunc::new("t");
        for _ in 0..20 {
            f.new_vreg(RegClassId(0), VregKind::Local);
        }
        (
            f,
            CodeBlock {
                insts,
                succs: vec![],
            },
        )
    }

    fn inst(m: &Machine, mnem: &str, ops: Vec<Operand>) -> Inst {
        Inst::new(m.template_by_mnemonic(mnem).unwrap(), ops)
    }

    #[test]
    fn fills_load_latency_with_independent_work() {
        let m = toy();
        // ld t1 <- [t0]; add t2 = t1+t1 (dependent, 3 cycles later);
        // add t3 = t4+t5 and add t6 = t7+t8 are independent fillers.
        let insts = vec![
            inst(&m, "ld", vec![v(1), v(0), imm(0)]),
            inst(&m, "add", vec![v(2), v(1), v(1)]),
            inst(&m, "add", vec![v(3), v(4), v(5)]),
            inst(&m, "add", vec![v(6), v(7), v(8)]),
        ];
        let (f, block) = setup(&m, insts);
        let dag = build_dag(&m, &block, true);
        let s = schedule_block(&m, &f, &block, &dag, &SchedOptions::default()).unwrap();
        assert_eq!(s.inst_cycle[0], 0);
        assert_eq!(s.inst_cycle[1], 3, "dependent add waits for the load");
        assert!(
            s.inst_cycle[2] < 3 && s.inst_cycle[3] < 3,
            "fillers moved up: {s:?}"
        );
        assert_eq!(s.length, 4);
    }

    #[test]
    fn structural_hazard_on_multiplier_serialises() {
        let m = toy();
        // Two independent multiplies fight over the MUL resource
        // (cycles 1-3 of each): second can start only when the
        // pipeline stage frees.
        let insts = vec![
            inst(&m, "mul", vec![v(1), v(0), v(0)]),
            inst(&m, "mul", vec![v(2), v(3), v(3)]),
        ];
        let (f, block) = setup(&m, insts);
        let dag = build_dag(&m, &block, true);
        let s = schedule_block(&m, &f, &block, &dag, &SchedOptions::default()).unwrap();
        assert_eq!(s.inst_cycle[0], 0);
        assert_eq!(s.inst_cycle[1], 3, "MUL stays busy cycles 1..=3: {s:?}");
    }

    #[test]
    fn critical_path_priority_orders_long_chain_first() {
        let m = toy();
        // A 3-mul chain and one trivial add. The chain instructions
        // should issue as early as their dependences allow.
        let insts = vec![
            inst(&m, "add", vec![v(9), v(8), v(8)]),
            inst(&m, "mul", vec![v(1), v(0), v(0)]),
            inst(&m, "mul", vec![v(2), v(1), v(1)]),
            inst(&m, "mul", vec![v(3), v(2), v(2)]),
        ];
        let (f, block) = setup(&m, insts);
        let dag = build_dag(&m, &block, true);
        let s = schedule_block(&m, &f, &block, &dag, &SchedOptions::default()).unwrap();
        assert_eq!(s.inst_cycle[1], 0, "chain head first despite thread order");
        assert_eq!(s.inst_cycle[2], 4);
        assert_eq!(s.inst_cycle[3], 8);
    }

    #[test]
    fn branch_scheduled_last_and_slots_counted() {
        let m = toy();
        let insts = vec![
            inst(&m, "add", vec![v(1), v(0), v(0)]),
            inst(
                &m,
                "beq0",
                vec![v(1), Operand::Block(marion_ir::BlockId(0))],
            ),
        ];
        let (f, block) = setup(&m, insts);
        let dag = build_dag(&m, &block, true);
        let s = schedule_block(&m, &f, &block, &dag, &SchedOptions::default()).unwrap();
        assert!(s.inst_cycle[1] >= s.inst_cycle[0]);
        // length includes the branch delay slot.
        assert_eq!(s.length, s.inst_cycle[1] + 2);
    }

    #[test]
    fn register_limit_caps_pressure() {
        let m = toy();
        // Four independent loads, each value consumed later: with a
        // limit of 2 locals the scheduler must interleave def/use.
        let insts = vec![
            inst(&m, "ld", vec![v(1), v(0), imm(0)]),
            inst(&m, "ld", vec![v(2), v(0), imm(4)]),
            inst(&m, "ld", vec![v(3), v(0), imm(8)]),
            inst(&m, "ld", vec![v(4), v(0), imm(12)]),
            inst(&m, "add", vec![v(5), v(1), v(2)]),
            inst(&m, "add", vec![v(6), v(3), v(4)]),
            inst(&m, "add", vec![v(7), v(5), v(6)]),
        ];
        let (f, block) = setup(&m, insts);
        let dag = build_dag(&m, &block, true);
        let unlimited = schedule_block(&m, &f, &block, &dag, &SchedOptions::default()).unwrap();
        let limited = schedule_block(
            &m,
            &f,
            &block,
            &dag,
            &SchedOptions {
                local_reg_limit: Some(2),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(unlimited.peak_local_pressure > 2);
        assert!(
            limited.peak_local_pressure <= 3,
            "limit roughly respected: {limited:?}"
        );
        assert!(limited.length >= unlimited.length);
    }

    const EAP: &str = r#"
        declare {
            %reg d[0:7] (double);
            %resource RM1; RM2; RFWB; RALU;
            %clock clk_m;
            %reg m1 (double; clk_m) +temporal;
            %reg m2 (double; clk_m) +temporal;
            %element pfmul;
            %element pfall;
            %class mul_ops { pfmul, pfall };
            %class all_ops { pfall };
        }
        cwvm { %general (double) d; }
        instr {
            %instr M1 d, d (double; clk_m) <mul_ops> {m1 = $1 * $2;} [RM1;] (1,1,0)
            %instr M2 (double; clk_m) <mul_ops> {m2 = m1;} [RM2;] (1,1,0)
            %instr FWB d (double; clk_m) <mul_ops> {$1 = m2;} [RFWB;] (1,1,0)
            %instr dadd d, d, d (double) <all_ops> {$1 = $2 + $3;} [RALU;] (1,1,0)
        }
    "#;

    fn eap() -> Machine {
        Machine::parse("eap", EAP).unwrap()
    }

    fn dsetup(m: &Machine, insts: Vec<Inst>) -> (CodeFunc, CodeBlock) {
        let mut f = CodeFunc::new("t");
        for _ in 0..20 {
            f.new_vreg(m.reg_class_by_name("d").unwrap(), VregKind::Local);
        }
        (
            f,
            CodeBlock {
                insts,
                succs: vec![],
            },
        )
    }

    #[test]
    fn temporal_sequence_schedules_in_order() {
        let m = eap();
        let insts = vec![
            inst(&m, "M1", vec![v(0), v(1)]),
            inst(&m, "M2", vec![]),
            inst(&m, "FWB", vec![v(2)]),
        ];
        let (f, block) = dsetup(&m, insts);
        let dag = build_dag(&m, &block, true);
        let s = schedule_block(&m, &f, &block, &dag, &SchedOptions::default()).unwrap();
        assert!(s.inst_cycle[0] < s.inst_cycle[1]);
        assert!(s.inst_cycle[1] < s.inst_cycle[2]);
    }

    #[test]
    fn rule1_packs_second_launch_with_advance() {
        let m = eap();
        // Two independent multiplies: M1a; M2a; FWBa; M1b; M2b; FWBb.
        // Rule 1 forbids M1b before M2a but allows packing with it —
        // their resources (RM1 vs RM2) and classes (mul/mul) permit it.
        let insts = vec![
            inst(&m, "M1", vec![v(0), v(1)]),
            inst(&m, "M2", vec![]),
            inst(&m, "FWB", vec![v(2)]),
            inst(&m, "M1", vec![v(3), v(4)]),
            inst(&m, "M2", vec![]),
            inst(&m, "FWB", vec![v(5)]),
        ];
        let (f, block) = dsetup(&m, insts);
        let dag = build_dag(&m, &block, true);
        let s = schedule_block(&m, &f, &block, &dag, &SchedOptions::default()).unwrap();
        // Second launch must not precede the first advance...
        assert!(
            s.inst_cycle[3] >= s.inst_cycle[1],
            "Rule 1 violated: M1b at {} before M2a at {}",
            s.inst_cycle[3],
            s.inst_cycle[1]
        );
        // ...and overlap should beat full serialisation (≤ 5 cycles
        // for 6 sub-operations rather than 6).
        assert!(
            s.length <= 5,
            "pipelines should overlap, got length {} ({:?})",
            s.length,
            s.cycles
        );
        // All temporal-register hazards respected: every M1->M2 pair
        // advances in order.
        assert!(s.inst_cycle[4] > s.inst_cycle[3]);
        assert!(s.inst_cycle[5] > s.inst_cycle[4]);
    }

    #[test]
    fn class_packing_restriction_enforced() {
        let m = eap();
        // dadd is in class all_ops = {pfall}; M1 is in {pfmul, pfall}.
        // They may pack (intersection {pfall}). Two dadds cannot pack
        // with an M2 issued the same cycle if resources clash — here
        // resources differ, so the class rule is what matters: a word
        // already holding M1+M2 (intersection {pfmul, pfall}) still
        // accepts dadd (∩ = {pfall}).
        let insts = vec![
            inst(&m, "M1", vec![v(0), v(1)]),
            inst(&m, "dadd", vec![v(2), v(3), v(4)]),
        ];
        let (f, block) = dsetup(&m, insts);
        let dag = build_dag(&m, &block, true);
        let s = schedule_block(&m, &f, &block, &dag, &SchedOptions::default()).unwrap();
        assert_eq!(
            s.inst_cycle[0], s.inst_cycle[1],
            "compatible classes pack into one word: {s:?}"
        );
    }

    #[test]
    fn empty_block_schedules_empty() {
        let m = toy();
        let (f, block) = setup(&m, vec![]);
        let dag = build_dag(&m, &block, true);
        let s = schedule_block(&m, &f, &block, &dag, &SchedOptions::default()).unwrap();
        assert_eq!(s.length, 0);
        assert!(s.cycles.is_empty());
    }
}
