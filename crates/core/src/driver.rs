//! The compilation driver: glue → selection → strategy → emission,
//! per function, over a whole IR module.

use crate::code::CodeFunc;
use crate::emit::{emit_func, AsmProgram};
use crate::error::CodegenError;
use crate::glue::apply_glue;
use crate::select::{select_func, EscapeRegistry};
use crate::strategy::{strategy_for, StrategyKind, StrategyStats};
use marion_ir as ir;
use marion_ir::{Node, NodeId, NodeKind};
use marion_maril::{Machine, Ty};
use marion_trace::{TraceConfig, TraceData, Tracer};

/// A fully compiled program, ready for the `marion-sim` simulator.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The emitted code.
    pub asm: AsmProgram,
    /// Global data, in layout order: (name, initialiser).
    pub globals: Vec<(String, ir::GlobalInit)>,
    /// Symbol names indexed by [`ir::SymbolId`].
    pub symbols: Vec<String>,
    /// The machine this was compiled for.
    pub machine_name: String,
    /// Strategy used.
    pub strategy: StrategyKind,
    /// Aggregate statistics.
    pub stats: CompileStats,
    /// The trace collected during compilation, when
    /// [`CompileOptions::trace`] was set.
    pub trace: Option<TraceData>,
}

impl CompiledProgram {
    /// Renders the program as assembly text.
    pub fn render(&self, machine: &Machine) -> String {
        crate::emit::render_program(machine, &self.asm, &self.symbols)
    }
}

/// Aggregate compile statistics.
#[derive(Debug, Clone, Default)]
pub struct CompileStats {
    /// Machine instructions generated (the dilation denominator).
    pub insts_generated: usize,
    /// Total virtual registers spilled.
    pub spills: usize,
    /// Scheduling passes across all functions.
    pub schedule_passes: usize,
    /// Sum of final block cycle estimates across the program.
    pub estimated_cycles: u64,
    /// Branch delay slots filled with useful instructions instead of
    /// nops (the §4.4 optional pass).
    pub delay_slots_filled: usize,
    /// `nop`s remaining in the emitted code (unfilled delay slots).
    pub nops_emitted: usize,
    /// The same statistics, per function.
    pub per_func: Vec<FuncStats>,
}

/// Compile statistics for one function.
#[derive(Debug, Clone, Default)]
pub struct FuncStats {
    /// Function name.
    pub name: String,
    /// Machine instructions generated.
    pub insts_generated: usize,
    /// Virtual registers spilled.
    pub spills: usize,
    /// Scheduling passes performed.
    pub schedule_passes: usize,
    /// Sum of final block cycle estimates.
    pub estimated_cycles: u64,
    /// Delay slots filled with useful instructions.
    pub delay_slots_filled: usize,
    /// `nop`s remaining in the emitted code.
    pub nops_emitted: usize,
}

/// Options controlling one [`Compiler`].
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Fill branch delay slots with useful instructions where possible
    /// (paper §4.4). On by default.
    pub fill_delay_slots: bool,
    /// Collect a trace (phase spans, counters, per-block scheduler
    /// metrics) during compilation; the result lands in
    /// [`CompiledProgram::trace`]. `None` (the default) collects
    /// nothing and costs nothing.
    pub trace: Option<TraceConfig>,
}

impl Default for CompileOptions {
    fn default() -> CompileOptions {
        CompileOptions {
            fill_delay_slots: true,
            trace: None,
        }
    }
}

/// A Marion code generator for one machine and one strategy.
pub struct Compiler {
    machine: Machine,
    escapes: EscapeRegistry,
    strategy: StrategyKind,
    options: CompileOptions,
}

impl Compiler {
    /// Creates a compiler from a compiled machine description, its
    /// escape functions and a strategy, with default options.
    pub fn new(machine: Machine, escapes: EscapeRegistry, strategy: StrategyKind) -> Compiler {
        Compiler::with_options(machine, escapes, strategy, CompileOptions::default())
    }

    /// Creates a compiler with explicit [`CompileOptions`].
    pub fn with_options(
        machine: Machine,
        escapes: EscapeRegistry,
        strategy: StrategyKind,
        options: CompileOptions,
    ) -> Compiler {
        Compiler {
            machine,
            escapes,
            strategy,
            options,
        }
    }

    /// The target machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The strategy in use.
    pub fn strategy(&self) -> StrategyKind {
        self.strategy
    }

    /// The options in use.
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }

    /// Compiles an IR module to machine code.
    ///
    /// # Errors
    ///
    /// Propagates failures from any phase, tagged with the phase name.
    pub fn compile_module(&self, module: &ir::Module) -> Result<CompiledProgram, CodegenError> {
        let tracer = match &self.options.trace {
            Some(config) => Tracer::new(config.clone()),
            None => Tracer::off(),
        };
        let mut module = module.clone();
        materialize_float_constants(&mut module);
        let strategy = strategy_for(self.strategy);
        let mut asm = AsmProgram::default();
        let mut stats = CompileStats::default();
        let module_ctx = self.machine.name().to_owned();
        let module_span = tracer.span(&module_ctx, "compile_module");
        for func in &module.funcs {
            let ctx = format!("{}/{}", self.machine.name(), func.name);
            let _func_span = tracer.span(&ctx, "compile_func");
            let mut func = func.clone();
            {
                let _span = tracer.span(&ctx, "glue");
                apply_glue(&self.machine, &mut func)?;
            }
            let mut code: CodeFunc = {
                let _span = tracer.span(&ctx, "select");
                select_func(&self.machine, &self.escapes, &module, &func)?
            };
            let (schedules, s): (_, StrategyStats) = {
                let _span = tracer.span(&ctx, "strategy");
                strategy.run(&self.machine, &mut code, &tracer, &ctx)?
            };
            let mut emitted = {
                let _span = tracer.span(&ctx, "emit");
                emit_func(&self.machine, &code, &schedules)?
            };
            let fills = if self.options.fill_delay_slots {
                let _span = tracer.span(&ctx, "fill_delay_slots");
                crate::emit::fill_delay_slots(&self.machine, &mut emitted)
            } else {
                Vec::new()
            };
            for fill in &fills {
                tracer.event(
                    &format!("{ctx}/b{}", fill.block),
                    "delay_slot_fill",
                    &[
                        ("inst", marion_trace::Value::from(fill.inst.as_str())),
                        ("branch", marion_trace::Value::from(fill.branch.as_str())),
                        ("slot", marion_trace::Value::from(fill.slot)),
                    ],
                );
            }
            let filled = fills.len();
            let fs = FuncStats {
                name: func.name.clone(),
                insts_generated: emitted.inst_count(),
                spills: s.spills,
                schedule_passes: s.schedule_passes,
                estimated_cycles: s.estimated_cycles,
                delay_slots_filled: filled,
                nops_emitted: emitted.nop_count(&self.machine),
            };
            // "spills" is recorded by the strategy's allocator hook;
            // everything else lands here so the trace and
            // `CompileStats` agree per function.
            tracer.add(&ctx, "insts_generated", fs.insts_generated as i64);
            tracer.add(&ctx, "schedule_passes", fs.schedule_passes as i64);
            tracer.add(&ctx, "estimated_cycles", fs.estimated_cycles as i64);
            tracer.add(&ctx, "delay_slots_filled", fs.delay_slots_filled as i64);
            tracer.add(&ctx, "nops_emitted", fs.nops_emitted as i64);
            stats.insts_generated += fs.insts_generated;
            stats.spills += fs.spills;
            stats.schedule_passes += fs.schedule_passes;
            stats.estimated_cycles += fs.estimated_cycles;
            stats.delay_slots_filled += fs.delay_slots_filled;
            stats.nops_emitted += fs.nops_emitted;
            stats.per_func.push(fs);
            asm.funcs.push(emitted);
        }
        drop(module_span);
        let symbols: Vec<String> = (0..module.symbol_count())
            .map(|i| module.symbol_name(ir::SymbolId(i as u32)).to_owned())
            .collect();
        let globals = module
            .globals
            .iter()
            .map(|g| (g.name.clone(), g.init.clone()))
            .collect();
        Ok(CompiledProgram {
            asm,
            globals,
            symbols,
            machine_name: self.machine.name().to_owned(),
            strategy: self.strategy,
            stats,
            trace: tracer.finish(),
        })
    }
}

/// Floating-point constants cannot be instruction immediates on these
/// machines; place them in an anonymous constant pool and rewrite each
/// `ConstF` node into a load. The [`Compiler`] applies this
/// automatically; it is public so tools driving the phases manually
/// (tests, experiments) can do the same.
pub fn materialize_float_constants(module: &mut ir::Module) {
    use std::collections::HashMap;
    let mut pool: HashMap<(u64, bool), ir::SymbolId> = HashMap::new();
    let nfuncs = module.funcs.len();
    for fi in 0..nfuncs {
        // Collect rewrites first to appease the borrow checker.
        let mut rewrites: Vec<(NodeId, f64, Ty)> = Vec::new();
        for (ni, node) in module.funcs[fi].nodes.iter().enumerate() {
            if let NodeKind::ConstF(v) = node.kind {
                rewrites.push((NodeId(ni as u32), v, node.ty));
            }
        }
        for (id, v, ty) in rewrites {
            let single = ty == Ty::Float;
            let key = (v.to_bits(), single);
            let sym = *pool.entry(key).or_insert_with(|| {
                let name = format!("$fc{}", module.globals.len());
                module.add_global(ir::Global {
                    name,
                    init: if single {
                        ir::GlobalInit::Words(vec![(v as f32).to_bits()])
                    } else {
                        ir::GlobalInit::Doubles(vec![v])
                    },
                })
            });
            let func = &mut module.funcs[fi];
            func.nodes.push(Node {
                kind: NodeKind::GlobalAddr(sym),
                ty: Ty::Ptr,
            });
            let addr = NodeId(func.nodes.len() as u32 - 1);
            func.nodes[id.0 as usize] = Node {
                kind: NodeKind::Load(addr),
                ty,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marion_ir::FuncBuilder;

    #[test]
    fn float_constants_become_pool_loads() {
        let mut module = ir::Module::new();
        let mut b = FuncBuilder::new("f", Some(Ty::Double));
        let c = b.const_f(3.25, Ty::Double);
        let d = b.const_f(3.25, Ty::Double);
        assert_eq!(c, d, "builder CSE");
        b.ret(Some(c));
        module.add_func(b.finish());
        materialize_float_constants(&mut module);
        assert_eq!(module.globals.len(), 1);
        let func = &module.funcs[0];
        assert!(matches!(func.node(c).kind, NodeKind::Load(_)));
    }

    #[test]
    fn distinct_constants_get_distinct_slots() {
        let mut module = ir::Module::new();
        let mut b = FuncBuilder::new("f", Some(Ty::Double));
        let c = b.const_f(1.5, Ty::Double);
        let d = b.const_f(2.5, Ty::Double);
        let s = b.bin(marion_ir::BinOp::Add, c, d, Ty::Double);
        b.ret(Some(s));
        module.add_func(b.finish());
        materialize_float_constants(&mut module);
        assert_eq!(module.globals.len(), 2);
    }
}
