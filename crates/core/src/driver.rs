//! The compilation driver: glue → selection → strategy → emission,
//! per function, over a whole IR module.

use crate::code::CodeFunc;
use crate::emit::{emit_func, AsmFunc, AsmProgram};
use crate::error::CodegenError;
use crate::fcache::{
    base_fingerprint, func_key, strip_spans, CacheSummary, CacheTally, CachedFunc, FuncCache,
};
use crate::glue::apply_glue;
use crate::select::EscapeRegistry;
use crate::strategy::{strategy_for, Strategy, StrategyKind, StrategyStats};
use marion_cache::StableHasher;
use marion_ir as ir;
use marion_ir::{Node, NodeId, NodeKind};
use marion_maril::{Machine, Ty};
use marion_trace::{TraceConfig, TraceData, Tracer};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A fully compiled program, ready for the `marion-sim` simulator.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The emitted code.
    pub asm: AsmProgram,
    /// Global data, in layout order: (name, initialiser).
    pub globals: Vec<(String, ir::GlobalInit)>,
    /// Symbol names indexed by [`ir::SymbolId`].
    pub symbols: Vec<String>,
    /// The machine this was compiled for.
    pub machine_name: String,
    /// Strategy used.
    pub strategy: StrategyKind,
    /// Aggregate statistics.
    pub stats: CompileStats,
    /// The trace collected during compilation, when
    /// [`CompileOptions::trace`] was set.
    pub trace: Option<TraceData>,
    /// Cache accounting for this compile, when
    /// [`CompileOptions::cache`] was set. Kept out of [`CompileStats`]
    /// so warm and cold statistics stay byte-identical.
    pub cache: Option<CacheSummary>,
}

impl CompiledProgram {
    /// Renders the program as assembly text.
    pub fn render(&self, machine: &Machine) -> String {
        crate::emit::render_program(machine, &self.asm, &self.symbols)
    }
}

/// Aggregate compile statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompileStats {
    /// Machine instructions generated (the dilation denominator).
    pub insts_generated: usize,
    /// Total virtual registers spilled.
    pub spills: usize,
    /// Scheduling passes across all functions.
    pub schedule_passes: usize,
    /// Sum of final block cycle estimates across the program.
    pub estimated_cycles: u64,
    /// Branch delay slots filled with useful instructions instead of
    /// nops (the §4.4 optional pass).
    pub delay_slots_filled: usize,
    /// `nop`s remaining in the emitted code (unfilled delay slots).
    pub nops_emitted: usize,
    /// The same statistics, per function.
    pub per_func: Vec<FuncStats>,
}

impl CompileStats {
    /// Folds one function's statistics into the aggregate.
    fn accumulate(&mut self, fs: &FuncStats) {
        self.insts_generated += fs.insts_generated;
        self.spills += fs.spills;
        self.schedule_passes += fs.schedule_passes;
        self.estimated_cycles += fs.estimated_cycles;
        self.delay_slots_filled += fs.delay_slots_filled;
        self.nops_emitted += fs.nops_emitted;
        self.per_func.push(fs.clone());
    }
}

/// Compile statistics for one function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuncStats {
    /// Function name.
    pub name: String,
    /// Machine instructions generated.
    pub insts_generated: usize,
    /// Virtual registers spilled.
    pub spills: usize,
    /// Scheduling passes performed.
    pub schedule_passes: usize,
    /// Sum of final block cycle estimates.
    pub estimated_cycles: u64,
    /// Delay slots filled with useful instructions.
    pub delay_slots_filled: usize,
    /// `nop`s remaining in the emitted code.
    pub nops_emitted: usize,
    /// Per-block schedule quality (critical-path bound, issue-slot
    /// usage, stall breakdown), index-aligned with the emitted blocks.
    /// Structural — cached entries replay it exactly (see
    /// [`crate::quality`]).
    pub blocks: Vec<crate::quality::BlockQuality>,
}

/// Options controlling one [`Compiler`].
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Fill branch delay slots with useful instructions where possible
    /// (paper §4.4). On by default.
    pub fill_delay_slots: bool,
    /// Collect a trace (phase spans, counters, per-block scheduler
    /// metrics) during compilation; the result lands in
    /// [`CompiledProgram::trace`]. `None` (the default) collects
    /// nothing and costs nothing.
    pub trace: Option<TraceConfig>,
    /// Worker threads for per-function compilation. `None` (the
    /// default) uses [`std::thread::available_parallelism`]. `1`
    /// compiles strictly serially on the calling thread. Results are
    /// collected in module order regardless, so the emitted assembly
    /// is byte-identical at any job count.
    pub jobs: Option<NonZeroUsize>,
    /// Select instructions through the machine's precomputed
    /// [`marion_maril::SelectionIndex`] (the default) instead of the
    /// brute-force scan over every template. Both pick identical
    /// instructions; the flag exists for benchmarking and
    /// cross-checking.
    pub indexed_select: bool,
    /// Memoize per-node template match attempts during selection (the
    /// default). Output-identical to unmemoized selection; the flag
    /// exists for benchmarking and cross-checking.
    pub memo_select: bool,
    /// Consult (and populate) a content-addressed compile cache: each
    /// function's key covers the machine description, strategy,
    /// output-relevant options and the function body, so a hit returns
    /// output byte-identical to a cold compile. `None` (the default)
    /// compiles everything cold. The cache is shared — clone the `Arc`
    /// into as many compilers as you like.
    pub cache: Option<Arc<FuncCache>>,
}

impl Default for CompileOptions {
    fn default() -> CompileOptions {
        CompileOptions {
            fill_delay_slots: true,
            trace: None,
            jobs: None,
            indexed_select: true,
            memo_select: true,
            cache: None,
        }
    }
}

/// A Marion code generator for one machine and one strategy.
pub struct Compiler {
    machine: Machine,
    escapes: EscapeRegistry,
    strategy: StrategyKind,
    options: CompileOptions,
}

impl Compiler {
    /// Creates a compiler from a compiled machine description, its
    /// escape functions and a strategy, with default options.
    pub fn new(machine: Machine, escapes: EscapeRegistry, strategy: StrategyKind) -> Compiler {
        Compiler::with_options(machine, escapes, strategy, CompileOptions::default())
    }

    /// Creates a compiler with explicit [`CompileOptions`].
    pub fn with_options(
        machine: Machine,
        escapes: EscapeRegistry,
        strategy: StrategyKind,
        options: CompileOptions,
    ) -> Compiler {
        Compiler {
            machine,
            escapes,
            strategy,
            options,
        }
    }

    /// The target machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The strategy in use.
    pub fn strategy(&self) -> StrategyKind {
        self.strategy
    }

    /// The options in use.
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }

    /// Compiles an IR module to machine code.
    ///
    /// Functions compile concurrently on [`CompileOptions::jobs`]
    /// scoped worker threads (std only); results are collected in
    /// module order, so the emitted assembly is byte-identical to a
    /// serial run. Each worker traces into its own shard, and the
    /// shards are merged in function order with [`TraceData::merge`],
    /// preserving the per-context counter-summing invariants.
    ///
    /// # Errors
    ///
    /// Propagates failures from any phase, tagged with the phase name.
    /// When several functions fail, the error of the first failing
    /// function in module order is returned — the same error a serial
    /// run would report.
    pub fn compile_module(&self, module: &ir::Module) -> Result<CompiledProgram, CodegenError> {
        let tracer = self.new_tracer();
        let mut module = module.clone();
        materialize_float_constants(&mut module);
        let strategy = strategy_for(self.strategy);
        let module_ctx = self.machine.name().to_owned();
        let module_span = tracer.span(&module_ctx, "compile_module");

        let jobs = self
            .options
            .jobs
            .map(NonZeroUsize::get)
            .or_else(|| {
                std::thread::available_parallelism()
                    .ok()
                    .map(NonZeroUsize::get)
            })
            .unwrap_or(1);
        let workers = jobs.min(module.funcs.len()).max(1);

        // The cache key's request-invariant prefix (machine, strategy,
        // options) is hashed once; each function extends a clone.
        let base: Option<StableHasher> = self
            .options
            .cache
            .as_ref()
            .map(|_| base_fingerprint(&self.machine, self.strategy, &self.options));
        let tally = CacheTally::default();

        let mut asm = AsmProgram::default();
        let mut stats = CompileStats::default();
        let mut shards: Vec<TraceData> = Vec::new();
        if workers <= 1 {
            // Strictly serial: compile on the calling thread, tracing
            // straight into the main tracer.
            for func in &module.funcs {
                let (emitted, fs) = self.compile_func_cached(
                    &module,
                    func,
                    strategy.as_ref(),
                    &tracer,
                    base.as_ref(),
                    &tally,
                )?;
                stats.accumulate(&fs);
                asm.funcs.push(emitted);
            }
        } else {
            let n = module.funcs.len();
            let next = AtomicUsize::new(0);
            type Slot = Option<Result<(AsmFunc, FuncStats, Option<TraceData>), CodegenError>>;
            let slots: Mutex<Vec<Slot>> = Mutex::new((0..n).map(|_| None).collect());
            let module_ref = &module;
            let strategy_ref: &(dyn Strategy + Send + Sync) = strategy.as_ref();
            let base_ref = base.as_ref();
            let tally_ref = &tally;
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let shard = self.new_tracer();
                        let r = self
                            .compile_func_cached(
                                module_ref,
                                &module_ref.funcs[i],
                                strategy_ref,
                                &shard,
                                base_ref,
                                tally_ref,
                            )
                            .map(|(emitted, fs)| (emitted, fs, shard.finish()));
                        slots.lock().unwrap()[i] = Some(r);
                    });
                }
            });
            for slot in slots.into_inner().unwrap() {
                let (emitted, fs, shard) = slot.expect("worker pool left a function uncompiled")?;
                stats.accumulate(&fs);
                asm.funcs.push(emitted);
                shards.extend(shard);
            }
        }
        tracer.gauge(&module_ctx, "workers", workers as i64);
        drop(module_span);
        let mut trace = tracer.finish();
        if let Some(data) = &mut trace {
            for shard in shards {
                data.merge(shard);
            }
        }
        let symbols: Vec<String> = (0..module.symbol_count())
            .map(|i| module.symbol_name(ir::SymbolId(i as u32)).to_owned())
            .collect();
        let globals = module
            .globals
            .iter()
            .map(|g| (g.name.clone(), g.init.clone()))
            .collect();
        Ok(CompiledProgram {
            asm,
            globals,
            symbols,
            machine_name: self.machine.name().to_owned(),
            strategy: self.strategy,
            stats,
            trace,
            cache: self.options.cache.as_ref().map(|_| tally.summary()),
        })
    }

    /// [`Compiler::compile_func`] behind the cache: serves a hit when
    /// [`CompileOptions::cache`] holds the function, compiles and
    /// inserts on a miss. Both paths return byte-identical output.
    fn compile_func_cached(
        &self,
        module: &ir::Module,
        func: &ir::Function,
        strategy: &(dyn Strategy + Send + Sync),
        tracer: &Tracer,
        base: Option<&StableHasher>,
        tally: &CacheTally,
    ) -> Result<(AsmFunc, FuncStats), CodegenError> {
        let Some((cache, base)) = self.options.cache.as_deref().zip(base) else {
            return self.compile_func(module, func, strategy, tracer);
        };
        let key = func_key(base, module, func);
        let ctx = format!("{}/{}", self.machine.name(), func.name);
        if let Some(entry) = cache.get(key) {
            tally.hit();
            tracer.add(&ctx, "cache_hit", 1);
            if let Some(data) = &entry.trace {
                // Replay the recorded counters and events so a warm
                // trace matches a cold one (spans were stripped at
                // insert — their timings belonged to the cold run).
                tracer.import(data);
            }
            return Ok((entry.asm, entry.stats));
        }
        // Miss: compile into a fresh shard so the cache entry can keep
        // a replayable copy of the function's counters and events.
        let shard = self.new_tracer();
        let (emitted, fs) = self.compile_func(module, func, strategy, &shard)?;
        let recorded = shard.finish();
        let evicted = cache.insert(
            key,
            CachedFunc {
                asm: emitted.clone(),
                stats: fs.clone(),
                trace: recorded.as_ref().map(strip_spans),
            },
        );
        tally.miss();
        tally.evict(evicted as u64);
        tracer.add(&ctx, "cache_miss", 1);
        if evicted > 0 {
            tracer.add(&ctx, "cache_evict", evicted as i64);
        }
        if let Some(data) = &recorded {
            tracer.import(data);
        }
        Ok((emitted, fs))
    }

    fn new_tracer(&self) -> Tracer {
        match &self.options.trace {
            Some(config) => Tracer::new(config.clone()),
            None => Tracer::off(),
        }
    }

    /// Compiles one function: glue → select → strategy → emit →
    /// delay-slot fill, tracing into `tracer`.
    fn compile_func(
        &self,
        module: &ir::Module,
        func: &ir::Function,
        strategy: &(dyn Strategy + Send + Sync),
        tracer: &Tracer,
    ) -> Result<(AsmFunc, FuncStats), CodegenError> {
        let ctx = format!("{}/{}", self.machine.name(), func.name);
        let _func_span = tracer.span(&ctx, "compile_func");
        let mut func = func.clone();
        {
            let _span = tracer.span(&ctx, "glue");
            apply_glue(&self.machine, &mut func)?;
        }
        let mut code: CodeFunc = {
            let _span = tracer.span(&ctx, "select");
            crate::select::select_func_traced(
                &self.machine,
                &self.escapes,
                module,
                &func,
                self.options.indexed_select,
                self.options.memo_select,
                tracer,
            )?
        };
        let (schedules, s): (_, StrategyStats) = {
            let _span = tracer.span(&ctx, "strategy");
            strategy.run(&self.machine, &mut code, tracer, &ctx)?
        };
        let mut emitted = {
            let _span = tracer.span(&ctx, "emit");
            emit_func(&self.machine, &code, &schedules)?
        };
        let fills = if self.options.fill_delay_slots {
            let _span = tracer.span(&ctx, "fill_delay_slots");
            crate::emit::fill_delay_slots(&self.machine, &mut emitted)
        } else {
            Vec::new()
        };
        for fill in &fills {
            tracer.event(
                &format!("{ctx}/b{}", fill.block),
                "delay_slot_fill",
                &[
                    ("inst", marion_trace::Value::from(fill.inst.as_str())),
                    ("branch", marion_trace::Value::from(fill.branch.as_str())),
                    ("slot", marion_trace::Value::from(fill.slot)),
                ],
            );
        }
        let fs = FuncStats {
            name: func.name.clone(),
            insts_generated: emitted.inst_count(),
            spills: s.spills,
            schedule_passes: s.schedule_passes,
            estimated_cycles: s.estimated_cycles,
            delay_slots_filled: fills.len(),
            nops_emitted: emitted.nop_count(&self.machine),
            blocks: schedules
                .iter()
                .map(crate::quality::BlockQuality::from_schedule)
                .collect(),
        };
        // "spills" is recorded by the strategy's allocator hook;
        // everything else lands here so the trace and `CompileStats`
        // agree per function.
        tracer.add(&ctx, "insts_generated", fs.insts_generated as i64);
        tracer.add(&ctx, "schedule_passes", fs.schedule_passes as i64);
        tracer.add(&ctx, "estimated_cycles", fs.estimated_cycles as i64);
        tracer.add(&ctx, "delay_slots_filled", fs.delay_slots_filled as i64);
        tracer.add(&ctx, "nops_emitted", fs.nops_emitted as i64);
        // Machine-level size distributions: one sample per function,
        // accumulated across the module into log2 histograms. These
        // are structural (deterministic), so a cache hit replaying the
        // recorded trace reproduces them exactly.
        let mctx = self.machine.name();
        tracer.observe(mctx, "func_insts", fs.insts_generated as u64);
        tracer.observe(mctx, "func_est_cycles", fs.estimated_cycles);
        Ok((emitted, fs))
    }
}

/// Floating-point constants cannot be instruction immediates on these
/// machines; place them in an anonymous constant pool and rewrite each
/// `ConstF` node into a load. The [`Compiler`] applies this
/// automatically; it is public so tools driving the phases manually
/// (tests, experiments) can do the same.
pub fn materialize_float_constants(module: &mut ir::Module) {
    use std::collections::HashMap;
    let mut pool: HashMap<(u64, bool), ir::SymbolId> = HashMap::new();
    let nfuncs = module.funcs.len();
    for fi in 0..nfuncs {
        // Collect rewrites first to appease the borrow checker.
        let mut rewrites: Vec<(NodeId, f64, Ty)> = Vec::new();
        for (ni, node) in module.funcs[fi].nodes.iter().enumerate() {
            if let NodeKind::ConstF(v) = node.kind {
                rewrites.push((NodeId(ni as u32), v, node.ty));
            }
        }
        for (id, v, ty) in rewrites {
            let single = ty == Ty::Float;
            let key = (v.to_bits(), single);
            let sym = *pool.entry(key).or_insert_with(|| {
                let name = format!("$fc{}", module.globals.len());
                module.add_global(ir::Global {
                    name,
                    init: if single {
                        ir::GlobalInit::Words(vec![(v as f32).to_bits()])
                    } else {
                        ir::GlobalInit::Doubles(vec![v])
                    },
                })
            });
            let func = &mut module.funcs[fi];
            func.nodes.push(Node {
                kind: NodeKind::GlobalAddr(sym),
                ty: Ty::Ptr,
            });
            let addr = NodeId(func.nodes.len() as u32 - 1);
            func.nodes[id.0 as usize] = Node {
                kind: NodeKind::Load(addr),
                ty,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marion_ir::FuncBuilder;

    #[test]
    fn float_constants_become_pool_loads() {
        let mut module = ir::Module::new();
        let mut b = FuncBuilder::new("f", Some(Ty::Double));
        let c = b.const_f(3.25, Ty::Double);
        let d = b.const_f(3.25, Ty::Double);
        assert_eq!(c, d, "builder CSE");
        b.ret(Some(c));
        module.add_func(b.finish());
        materialize_float_constants(&mut module);
        assert_eq!(module.globals.len(), 1);
        let func = &module.funcs[0];
        assert!(matches!(func.node(c).kind, NodeKind::Load(_)));
    }

    #[test]
    fn distinct_constants_get_distinct_slots() {
        let mut module = ir::Module::new();
        let mut b = FuncBuilder::new("f", Some(Ty::Double));
        let c = b.const_f(1.5, Ty::Double);
        let d = b.const_f(2.5, Ty::Double);
        let s = b.bin(marion_ir::BinOp::Add, c, d, Ty::Double);
        b.ret(Some(s));
        module.add_func(b.finish());
        materialize_float_constants(&mut module);
        assert_eq!(module.globals.len(), 2);
    }
}
