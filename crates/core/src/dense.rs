//! Dense data-layout primitives for the strategy-phase hot path.
//!
//! The list scheduler and the graph-coloring allocator spend almost
//! all compile time scanning small integer-keyed sets: live vregs,
//! interference neighbors, claimed resource units. Hash containers
//! make every membership test a rehash and every scan a pointer
//! chase; the structures here put the same sets into contiguous
//! `u64` words so membership is a shift-and-mask, set algebra is
//! word-parallel, and iteration is a trailing-zeros walk.
//!
//! The dense-id rule: anything keyed by vreg, block, cycle or unit
//! number is stored in an array indexed by that number. The key
//! universes are small and dense by construction (vregs are numbered
//! contiguously per function, units per machine), so the arrays stay
//! compact and the per-element constant beats hashing by an order of
//! magnitude.

/// A fixed-width bitset over `u64` words.
///
/// Width is set at construction (or [`BitSet::reset`]) and all
/// operands of the binary operations must share it; this keeps every
/// union/intersection a straight word loop with no tail casing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    nbits: usize,
}

impl BitSet {
    /// An empty set over the universe `0..nbits`.
    pub fn new(nbits: usize) -> BitSet {
        BitSet {
            words: vec![0; nbits.div_ceil(64)],
            nbits,
        }
    }

    /// Clears all bits, re-sizing the universe to `nbits`. Reuses the
    /// existing allocation when wide enough.
    pub fn reset(&mut self, nbits: usize) {
        self.nbits = nbits;
        let need = nbits.div_ceil(64);
        self.words.clear();
        self.words.resize(need, 0);
    }

    /// The universe width.
    pub fn nbits(&self) -> usize {
        self.nbits
    }

    /// Inserts `i`; returns whether the set changed.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.nbits);
        let w = &mut self.words[i >> 6];
        let mask = 1u64 << (i & 63);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Removes `i`; returns whether the set changed.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.nbits);
        let w = &mut self.words[i >> 6];
        let mask = 1u64 << (i & 63);
        let present = *w & mask != 0;
        *w &= !mask;
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.nbits);
        self.words[i >> 6] & (1u64 << (i & 63)) != 0
    }

    /// Removes every bit.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// `self |= other`; returns whether `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.nbits, other.nbits);
        let mut changed = 0u64;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a = old | b;
            changed |= *a ^ old;
        }
        changed != 0
    }

    /// `self &= other`; returns whether `self` changed.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.nbits, other.nbits);
        let mut changed = 0u64;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a = old & b;
            changed |= *a ^ old;
        }
        changed != 0
    }

    /// `self = a | (b & !c)` — the dataflow transfer
    /// `in = gen ∪ (out − kill)` as one fused word loop. Returns
    /// whether `self` changed.
    pub fn assign_union_minus(&mut self, a: &BitSet, b: &BitSet, c: &BitSet) -> bool {
        debug_assert_eq!(self.nbits, a.nbits);
        debug_assert_eq!(self.nbits, b.nbits);
        debug_assert_eq!(self.nbits, c.nbits);
        let mut changed = 0u64;
        for (((s, x), y), z) in self
            .words
            .iter_mut()
            .zip(&a.words)
            .zip(&b.words)
            .zip(&c.words)
        {
            let old = *s;
            *s = x | (y & !z);
            changed |= *s ^ old;
        }
        changed != 0
    }

    /// Copies `other` into `self` (same width).
    pub fn copy_from(&mut self, other: &BitSet) {
        debug_assert_eq!(self.nbits, other.nbits);
        self.words.copy_from_slice(&other.words);
    }

    /// Iterates set bits in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let base = wi << 6;
            std::iter::successors(Some(w), |&rest| Some(rest & rest.wrapping_sub(1)))
                .take_while(|&rest| rest != 0)
                .map(move |rest| base + rest.trailing_zeros() as usize)
        })
    }
}

/// A dense 2-D bit matrix: `nrows` rows of an `ncols`-bit universe,
/// all sharing one allocation. Used as the build-time representation
/// of the interference graph (symmetric adjacency) and of per-vreg
/// physical-unit conflicts, where O(1) deduplicated insertion
/// matters: the allocator inserts the same edge many times (once per
/// live range overlap) and the matrix absorbs duplicates for free.
#[derive(Debug, Clone, Default)]
pub struct BitMatrix {
    words: Vec<u64>,
    words_per_row: usize,
    nrows: usize,
    ncols: usize,
}

impl BitMatrix {
    /// An all-zero matrix.
    pub fn new(nrows: usize, ncols: usize) -> BitMatrix {
        let words_per_row = ncols.div_ceil(64);
        BitMatrix {
            words: vec![0; nrows * words_per_row],
            words_per_row,
            nrows,
            ncols,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Sets bit `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize) {
        debug_assert!(r < self.nrows && c < self.ncols);
        self.words[r * self.words_per_row + (c >> 6)] |= 1u64 << (c & 63);
    }

    /// Tests bit `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        debug_assert!(r < self.nrows && c < self.ncols);
        self.words[r * self.words_per_row + (c >> 6)] & (1u64 << (c & 63)) != 0
    }

    /// Set bits of row `r`, in increasing column order.
    pub fn row_iter(&self, r: usize) -> impl Iterator<Item = usize> + '_ {
        let row = &self.words[r * self.words_per_row..(r + 1) * self.words_per_row];
        row.iter().enumerate().flat_map(|(wi, &w)| {
            let base = wi << 6;
            std::iter::successors(Some(w), |&rest| Some(rest & rest.wrapping_sub(1)))
                .take_while(|&rest| rest != 0)
                .map(move |rest| base + rest.trailing_zeros() as usize)
        })
    }

    /// Population count of row `r`.
    pub fn row_len(&self, r: usize) -> usize {
        self.words[r * self.words_per_row..(r + 1) * self.words_per_row]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }
}

/// A compressed-sparse-row adjacency array: neighbor lists of all
/// nodes flattened into one `targets` vector addressed through
/// `offsets`. Rows are sorted and deduplicated by construction (they
/// come out of a [`BitMatrix`] in bit order), so degree is an O(1)
/// subtraction and a neighbor scan is a contiguous slice walk.
#[derive(Debug, Clone, Default)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl Csr {
    /// Flattens a bit matrix into adjacency arrays (row bit `c` of
    /// row `r` becomes target `c` of node `r`).
    pub fn from_matrix(m: &BitMatrix) -> Csr {
        let mut offsets = Vec::with_capacity(m.nrows() + 1);
        offsets.push(0u32);
        let mut total = 0u32;
        for r in 0..m.nrows() {
            total += m.row_len(r) as u32;
            offsets.push(total);
        }
        let mut targets = Vec::with_capacity(total as usize);
        for r in 0..m.nrows() {
            targets.extend(m.row_iter(r).map(|c| c as u32));
        }
        Csr { offsets, targets }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// The (sorted, deduplicated) neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Total directed targets; half this for a symmetric graph's
    /// undirected edge count.
    pub fn total_targets(&self) -> usize {
        self.targets.len()
    }
}

/// SplitMix64: the deterministic generator used by the property tests
/// and the randomized cache-correctness suite.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Random insert/remove sequences agree with a `HashSet` model:
    /// membership, length, union, intersection and iteration order.
    #[test]
    fn bitset_matches_hashset_model() {
        let mut rng = 0x5eed_0001u64;
        for trial in 0..50 {
            let nbits = 1 + (splitmix64(&mut rng) % 300) as usize;
            let mut a = BitSet::new(nbits);
            let mut b = BitSet::new(nbits);
            let mut ma: HashSet<usize> = HashSet::new();
            let mut mb: HashSet<usize> = HashSet::new();
            for _ in 0..200 {
                let i = (splitmix64(&mut rng) as usize) % nbits;
                match splitmix64(&mut rng) % 4 {
                    0 => {
                        assert_eq!(a.insert(i), ma.insert(i), "insert {i} trial {trial}");
                    }
                    1 => {
                        assert_eq!(a.remove(i), ma.remove(&i), "remove {i} trial {trial}");
                    }
                    2 => {
                        assert_eq!(b.insert(i), mb.insert(i));
                    }
                    _ => {
                        assert_eq!(a.contains(i), ma.contains(&i), "contains {i}");
                    }
                }
            }
            assert_eq!(a.len(), ma.len());
            assert_eq!(a.is_empty(), ma.is_empty());
            // Iteration yields exactly the model's elements, sorted.
            let mut want: Vec<usize> = ma.iter().copied().collect();
            want.sort_unstable();
            assert_eq!(a.iter().collect::<Vec<_>>(), want);
            // Union against the model.
            let mut u = a.clone();
            let u_changed = u.union_with(&b);
            let mu: HashSet<usize> = ma.union(&mb).copied().collect();
            let mut want: Vec<usize> = mu.iter().copied().collect();
            want.sort_unstable();
            assert_eq!(u.iter().collect::<Vec<_>>(), want);
            assert_eq!(u_changed, mu.len() != ma.len());
            // Intersection against the model.
            let mut n = a.clone();
            let n_changed = n.intersect_with(&b);
            let mn: HashSet<usize> = ma.intersection(&mb).copied().collect();
            let mut want: Vec<usize> = mn.iter().copied().collect();
            want.sort_unstable();
            assert_eq!(n.iter().collect::<Vec<_>>(), want);
            assert_eq!(n_changed, mn.len() != ma.len());
        }
    }

    /// The fused dataflow transfer equals its set-algebra spelling.
    #[test]
    fn assign_union_minus_is_gen_union_out_minus_kill() {
        let mut rng = 0x5eed_0002u64;
        for _ in 0..50 {
            let nbits = 1 + (splitmix64(&mut rng) % 200) as usize;
            let mut gen = BitSet::new(nbits);
            let mut out = BitSet::new(nbits);
            let mut kill = BitSet::new(nbits);
            for _ in 0..nbits {
                let i = (splitmix64(&mut rng) as usize) % nbits;
                match splitmix64(&mut rng) % 3 {
                    0 => {
                        gen.insert(i);
                    }
                    1 => {
                        out.insert(i);
                    }
                    _ => {
                        kill.insert(i);
                    }
                }
            }
            let mut fused = BitSet::new(nbits);
            fused.assign_union_minus(&gen, &out, &kill);
            let want: Vec<usize> = (0..nbits)
                .filter(|&i| gen.contains(i) || (out.contains(i) && !kill.contains(i)))
                .collect();
            assert_eq!(fused.iter().collect::<Vec<_>>(), want);
            // A second identical assignment reports no change.
            let mut again = fused.clone();
            assert!(!again.assign_union_minus(&gen, &out, &kill));
        }
    }

    /// CSR flattening preserves a random symmetric matrix exactly:
    /// same neighbors, same degrees, sorted rows.
    #[test]
    fn csr_matches_matrix() {
        let mut rng = 0x5eed_0003u64;
        for _ in 0..25 {
            let n = 1 + (splitmix64(&mut rng) % 120) as usize;
            let mut m = BitMatrix::new(n, n);
            let mut model: Vec<HashSet<usize>> = vec![HashSet::new(); n];
            for _ in 0..(n * 3) {
                let a = (splitmix64(&mut rng) as usize) % n;
                let b = (splitmix64(&mut rng) as usize) % n;
                if a == b {
                    continue;
                }
                m.set(a, b);
                m.set(b, a);
                model[a].insert(b);
                model[b].insert(a);
            }
            let csr = Csr::from_matrix(&m);
            assert_eq!(csr.nodes(), n);
            let mut total = 0;
            for (v, adj) in model.iter().enumerate() {
                let mut want: Vec<u32> = adj.iter().map(|&x| x as u32).collect();
                want.sort_unstable();
                assert_eq!(csr.neighbors(v), want.as_slice());
                assert_eq!(csr.degree(v), adj.len());
                total += adj.len();
            }
            assert_eq!(csr.total_targets(), total);
        }
    }

    #[test]
    fn reset_reuses_and_widens() {
        let mut s = BitSet::new(70);
        s.insert(69);
        s.reset(10);
        assert!(s.is_empty());
        assert_eq!(s.nbits(), 10);
        s.insert(9);
        s.reset(200);
        assert!(s.is_empty());
        s.insert(199);
        assert!(s.contains(199));
    }
}
