//! Assembly emission: linearises block schedules into instruction
//! *words* (one word per issue cycle — on a superscalar several
//! sub-operations pack into one word), fills delay slots with `nop`s
//! (paper §4.4: "Marion always fills branch delay slots with nops"),
//! and wraps the function in its prologue and epilogue.

use crate::code::*;
use crate::error::{CodegenError, Phase};
use crate::sched::Schedule;
use marion_maril::expr::{LValue, Stmt};
use marion_maril::{BinOp, Expr, Machine, OperandSpec, PhysReg, TemplateId};

/// One machine instruction with fully physical operands.
#[derive(Debug, Clone, PartialEq)]
pub struct AsmInst {
    /// The instruction template.
    pub template: TemplateId,
    /// Operands (no virtual registers remain).
    pub ops: Vec<Operand>,
}

/// One issue cycle's worth of instructions (a long instruction word on
/// machines like the i860; a single instruction elsewhere).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Word {
    /// Sub-operations issued together.
    pub insts: Vec<AsmInst>,
}

/// A basic block of emitted words.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AsmBlock {
    /// The words, in execution order.
    pub words: Vec<Word>,
    /// The scheduler's cycle estimate for one execution of this block
    /// (used for estimated-vs-actual comparisons, Table 4).
    pub est_cycles: u32,
}

/// An emitted function.
#[derive(Debug, Clone, PartialEq)]
pub struct AsmFunc {
    /// Function name.
    pub name: String,
    /// Blocks, in layout order; branch targets index this vector.
    pub blocks: Vec<AsmBlock>,
    /// Total frame size in bytes.
    pub frame_size: u32,
}

impl AsmFunc {
    /// Total number of machine instructions (sub-operations).
    pub fn inst_count(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| b.words.iter().map(|w| w.insts.len()).sum::<usize>())
            .sum()
    }

    /// How many of those instructions are `nop`s (delay-slot padding
    /// the filler could not replace with useful work).
    pub fn nop_count(&self, machine: &Machine) -> usize {
        let Some(nop) = machine.nop_template() else {
            return 0;
        };
        self.blocks
            .iter()
            .flat_map(|b| &b.words)
            .flat_map(|w| &w.insts)
            .filter(|i| i.template == nop)
            .count()
    }
}

/// An emitted program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AsmProgram {
    /// Functions in module order.
    pub funcs: Vec<AsmFunc>,
}

impl AsmProgram {
    /// Finds a function by name.
    pub fn func(&self, name: &str) -> Option<&AsmFunc> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Total instruction count (the denominator of the paper's
    /// *dilation* metric).
    pub fn inst_count(&self) -> usize {
        self.funcs.iter().map(|f| f.inst_count()).sum()
    }
}

fn err(msg: impl Into<String>) -> CodegenError {
    CodegenError::new(Phase::Emit, msg)
}

/// Emits one function from its scheduled blocks.
///
/// # Errors
///
/// Fails if virtual registers survive (allocation was skipped), if a
/// needed `nop`/add-immediate/spill template is missing, or if the
/// frame does not fit the add-immediate range.
pub fn emit_func(
    machine: &Machine,
    func: &CodeFunc,
    schedules: &[Schedule],
) -> Result<AsmFunc, CodegenError> {
    let cwvm = machine.cwvm();
    let sp = cwvm
        .sp
        .ok_or_else(|| err("machine declares no stack pointer"))?;

    // Frame layout (sp-relative): [locals][spills][saves][ra], rounded
    // to 8.
    let saves = used_callee_saves(machine, func);
    let saves_base = func.local_frame_size + func.spill_size;
    let ra_off = saves_base + 8 * saves.len() as u32;
    let mut frame_size = ra_off + if func.has_calls { 8 } else { 0 };
    frame_size = (frame_size + 7) & !7;

    let mut blocks = Vec::with_capacity(func.blocks.len());
    for (bi, block) in func.blocks.iter().enumerate() {
        let schedule = schedules
            .get(bi)
            .ok_or_else(|| err(format!("missing schedule for block {bi}")))?;
        let mut words = linearize(machine, block, schedule)?;
        if bi == 0 && frame_size > 0 {
            let mut pro: Vec<Word> = Vec::new();
            pro.push(single(addi(machine, sp, -(frame_size as i64))?));
            if func.has_calls {
                let ra = cwvm.retaddr.ok_or_else(|| err("calls but no %retaddr"))?;
                pro.push(single(save_to(machine, ra, sp, ra_off as i64)?));
            }
            for (i, reg) in saves.iter().enumerate() {
                pro.push(single(save_to(
                    machine,
                    *reg,
                    sp,
                    (saves_base + 8 * i as u32) as i64,
                )?));
            }
            pro.extend(words);
            words = pro;
        }
        if bi == func.blocks.len() - 1 && frame_size > 0 {
            // Epilogue: restores and the frame pop go before the
            // return instruction (this block holds only the return,
            // already followed by its delay-slot nops).
            let mut epi: Vec<Word> = Vec::new();
            for (i, reg) in saves.iter().enumerate() {
                epi.push(single(load_from(
                    machine,
                    *reg,
                    sp,
                    (saves_base + 8 * i as u32) as i64,
                )?));
            }
            if func.has_calls {
                let ra = cwvm.retaddr.ok_or_else(|| err("calls but no %retaddr"))?;
                epi.push(single(load_from(machine, ra, sp, ra_off as i64)?));
            }
            epi.push(single(addi(machine, sp, frame_size as i64)?));
            epi.extend(words);
            words = epi;
        }
        blocks.push(AsmBlock {
            words,
            est_cycles: schedule.length,
        });
    }
    Ok(AsmFunc {
        name: func.name.clone(),
        blocks,
        frame_size,
    })
}

fn single(inst: AsmInst) -> Word {
    Word { insts: vec![inst] }
}

fn used_callee_saves(machine: &Machine, func: &CodeFunc) -> Vec<PhysReg> {
    let mut out: Vec<PhysReg> = Vec::new();
    for block in &func.blocks {
        for inst in &block.insts {
            for op in inst.def_operands(machine) {
                if let Operand::Phys(p) = op {
                    for cs in &machine.cwvm().callee_save {
                        // The stack pointer is managed by the prologue
                        // itself; the return address has its own slot.
                        // The frame pointer is NOT exempt: machines
                        // that leave it allocable (TOYP) must preserve
                        // it like any other callee-save.
                        if Some(*cs) == machine.cwvm().sp {
                            continue;
                        }
                        if Some(*cs) == machine.cwvm().retaddr {
                            continue;
                        }
                        if machine.regs_overlap(*p, *cs) && !out.contains(cs) {
                            out.push(*cs);
                        }
                    }
                }
            }
        }
    }
    out.sort();
    out
}

/// Turns a block schedule into words, padding mandatory delay slots
/// with `nop`s.
fn linearize(
    machine: &Machine,
    block: &CodeBlock,
    schedule: &Schedule,
) -> Result<Vec<Word>, CodegenError> {
    let mut words: Vec<Word> = Vec::new();
    // Delay slots are architecturally executed: the `pending` counter
    // tracks how many words after a control transfer must exist. Empty
    // cycles inside that window become nops (never drop the cycle — a
    // following goto would otherwise land in the branch's delay slot
    // and hijack the redirect); empty cycles outside it are interlock
    // stalls and need no instruction.
    let mut pending = 0u32;
    for idxs in &schedule.cycles {
        if idxs.is_empty() {
            if pending > 0 {
                words.push(nop_word(machine)?);
                pending -= 1;
            }
            continue;
        }
        let mut word = Word::default();
        for &i in idxs {
            let inst = &block.insts[i];
            for op in &inst.ops {
                if matches!(op, Operand::Vreg(_) | Operand::VregHalf(..)) {
                    return Err(err(format!("virtual register {op} survived to emission")));
                }
            }
            word.insts.push(AsmInst {
                template: inst.template,
                ops: inst.ops.clone(),
            });
        }
        words.push(word);
        pending = pending.saturating_sub(1);
        let ctl_slots = word_slots(machine, words.last().unwrap());
        pending = pending.max(ctl_slots);
    }
    // Remaining delay slots after the final branch: filled with nops
    // ("Marion always fills branch delay slots with nops", §4.4).
    for _ in 0..pending {
        words.push(nop_word(machine)?);
    }
    Ok(words)
}

/// Fills branch delay slots with useful instructions (paper §4.4:
/// "Gross and Hennessy's algorithm for filling delay slots \[GH82\]
/// could be included in Marion as a separate intra-procedural pass
/// after instruction scheduling" — this is that pass, in its
/// conservative fill-from-above form).
///
/// Within each block, a `nop` in an *always-executed* delay slot
/// (positive `slots`) is replaced by hoisting the nearest preceding
/// word when it is safe: a single non-control instruction whose
/// results the branch does not read (the instruction still executes
/// exactly once, before the redirect takes effect, so every
/// downstream consumer still sees it). Annulled slots (negative
/// `slots`) are left as `nop`s. Returns one [`FillRecord`] per slot
/// filled, so the driver can trace which instruction moved where.
pub fn fill_delay_slots(machine: &Machine, func: &mut AsmFunc) -> Vec<FillRecord> {
    let nop = match machine.nop_template() {
        Some(t) => t,
        None => return Vec::new(),
    };
    let mut filled = Vec::new();
    for (bi, block) in func.blocks.iter_mut().enumerate() {
        // Locate control words with positive slots. (A fill mutates
        // the word list; the guard keeps indices valid and at most one
        // fill happens per block, matching the one branch a block
        // normally ends with.)
        let n = block.words.len();
        'block_scan: for ci in 0..n {
            if ci >= block.words.len() {
                break;
            }
            // Only plain branches: a call's delay slot may not touch
            // the argument registers and a return's may not touch the
            // result registers, and that information is no longer
            // attached at this level — leave their slots as nops.
            let Some(ctl) = block.words[ci].insts.iter().find(|i| {
                let t = machine.template(i.template);
                (t.effects.is_cond_branch || t.effects.is_goto) && t.slots > 0
            }) else {
                continue;
            };
            let branch_mnemonic = machine.template(ctl.template).mnemonic.clone();
            let slots = machine.template(ctl.template).slots as usize;
            // The branch's data uses (condition registers).
            let mut branch_uses: Vec<Operand> = Vec::new();
            for inst in &block.words[ci].insts {
                let t = machine.template(inst.template);
                for k in &t.effects.uses {
                    if let Some(op) = inst.ops.get((*k - 1) as usize) {
                        branch_uses.push(*op);
                    }
                }
            }
            for s in 1..=slots {
                let si = ci + s;
                if si >= block.words.len() {
                    break;
                }
                let is_nop =
                    block.words[si].insts.len() == 1 && block.words[si].insts[0].template == nop;
                if !is_nop {
                    continue;
                }
                // Find the nearest safe candidate above the branch.
                // Never look past another control transfer: an
                // instruction from before an earlier branch executes
                // on both of its paths, but the delay slot only runs
                // when control reaches this branch.
                let mut cand: Option<usize> = None;
                for wi in (0..ci).rev() {
                    let w = &block.words[wi];
                    if wi != ci
                        && w.insts
                            .iter()
                            .any(|i| machine.template(i.template).effects.is_control())
                    {
                        break;
                    }
                    if w.insts.len() != 1 {
                        continue;
                    }
                    let inst = &w.insts[0];
                    let t = machine.template(inst.template);
                    if t.effects.is_control() || inst.template == nop {
                        continue;
                    }
                    // Explicitly-advanced-pipeline sub-operations are
                    // position-sensitive (each issue ticks its clock);
                    // never move them.
                    if t.affects_clock.is_some()
                        || !t.effects.temporal_uses.is_empty()
                        || !t.effects.temporal_defs.is_empty()
                    {
                        continue;
                    }
                    // Its defs must not feed the branch condition, nor
                    // anything between it and the branch.
                    let defs: Vec<Operand> = t
                        .effects
                        .defs
                        .iter()
                        .filter_map(|k| inst.ops.get((*k - 1) as usize).copied())
                        .collect();
                    let feeds = |ops: &[Operand]| {
                        ops.iter().any(|u| {
                            defs.iter().any(|d| match (d, u) {
                                (Operand::Phys(a), Operand::Phys(b)) => {
                                    machine.regs_overlap(*a, *b)
                                }
                                _ => d == u,
                            })
                        })
                    };
                    let mut safe = !feeds(&branch_uses);
                    // Check every word strictly between: no reads of
                    // our defs, no writes to our uses or defs, and no
                    // memory op if we touch memory.
                    let we_touch_mem = t.effects.reads_mem || t.effects.writes_mem;
                    if safe {
                        for mid in wi + 1..=ci {
                            for minst in &block.words[mid].insts {
                                let mt = machine.template(minst.template);
                                let muses: Vec<Operand> = mt
                                    .effects
                                    .uses
                                    .iter()
                                    .filter_map(|k| minst.ops.get((*k - 1) as usize).copied())
                                    .collect();
                                let mdefs: Vec<Operand> = mt
                                    .effects
                                    .defs
                                    .iter()
                                    .filter_map(|k| minst.ops.get((*k - 1) as usize).copied())
                                    .collect();
                                let our_uses: Vec<Operand> = t
                                    .effects
                                    .uses
                                    .iter()
                                    .filter_map(|k| inst.ops.get((*k - 1) as usize).copied())
                                    .collect();
                                if feeds(&muses)
                                    || feeds(&mdefs)
                                    || our_uses.iter().any(|u| {
                                        mdefs.iter().any(|d| match (d, u) {
                                            (Operand::Phys(a), Operand::Phys(b)) => {
                                                machine.regs_overlap(*a, *b)
                                            }
                                            _ => d == u,
                                        })
                                    })
                                    || mt.effects.is_call
                                    || (we_touch_mem
                                        && (mt.effects.reads_mem
                                            || mt.effects.writes_mem
                                            || mt.effects.is_call))
                                {
                                    safe = false;
                                }
                            }
                            if !safe {
                                break;
                            }
                        }
                    }
                    if safe {
                        cand = Some(wi);
                        break;
                    }
                }
                if let Some(wi) = cand {
                    let word = block.words.remove(wi);
                    filled.push(FillRecord {
                        block: bi,
                        inst: machine.template(word.insts[0].template).mnemonic.clone(),
                        branch: branch_mnemonic.clone(),
                        slot: s,
                    });
                    // Removal shifts indices left by one.
                    block.words[si - 1] = word;
                    break 'block_scan; // indices moved
                }
            }
        }
    }
    filled
}

/// Provenance of one filled branch delay slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FillRecord {
    /// Block index within the function.
    pub block: usize,
    /// Mnemonic of the instruction hoisted into the slot.
    pub inst: String,
    /// Mnemonic of the branch whose slot was filled.
    pub branch: String,
    /// 1-based slot position behind the branch.
    pub slot: usize,
}

/// Delay slots demanded by the control transfers in a word.
fn word_slots(machine: &Machine, word: &Word) -> u32 {
    word.insts
        .iter()
        .filter(|i| machine.template(i.template).effects.is_control())
        .map(|i| machine.template(i.template).slots.unsigned_abs())
        .max()
        .unwrap_or(0)
}

fn nop_word(machine: &Machine) -> Result<Word, CodegenError> {
    let nop = machine
        .nop_template()
        .ok_or_else(|| err("machine has no `nop` (needed for delay slots)"))?;
    Ok(single(AsmInst {
        template: nop,
        ops: vec![],
    }))
}

/// Builds `reg = reg + value` from the machine's add-immediate
/// pattern.
fn addi(machine: &Machine, reg: PhysReg, value: i64) -> Result<AsmInst, CodegenError> {
    let (tid, reg_slot, imm_slot) = find_addi(machine, reg, value)
        .ok_or_else(|| err(format!("no add-immediate covers {value}")))?;
    let t = machine.template(tid);
    let mut ops = Vec::with_capacity(t.operands.len());
    for i in 0..t.operands.len() {
        let k = (i + 1) as u8;
        ops.push(if k == 1 || k == reg_slot {
            Operand::Phys(reg)
        } else if k == imm_slot {
            Operand::Imm(ImmVal::Const(value))
        } else if let OperandSpec::FixedReg(p) = t.operands[i] {
            Operand::Phys(p)
        } else {
            Operand::Imm(ImmVal::Const(0))
        });
    }
    Ok(AsmInst { template: tid, ops })
}

fn find_addi(machine: &Machine, reg: PhysReg, value: i64) -> Option<(TemplateId, u8, u8)> {
    machine.templates().iter().enumerate().find_map(|(i, t)| {
        if t.escape.is_some() || t.def_class() != Some(reg.class) {
            return None;
        }
        let [Stmt::Assign(LValue::Operand(1), Expr::Bin(BinOp::Add, a, b))] = t.sem.as_slice()
        else {
            return None;
        };
        let (Expr::Operand(x), Expr::Operand(y)) = (&**a, &**b) else {
            return None;
        };
        let x_spec = t.operands.get((*x - 1) as usize)?;
        let y_spec = t.operands.get((*y - 1) as usize)?;
        match (x_spec, y_spec) {
            (OperandSpec::Reg(c), OperandSpec::Imm(d))
                if *c == reg.class && machine.imm_def(*d).contains(value) =>
            {
                Some((TemplateId(i as u32), *x, *y))
            }
            _ => None,
        }
    })
}

fn save_to(
    machine: &Machine,
    reg: PhysReg,
    sp: PhysReg,
    offset: i64,
) -> Result<AsmInst, CodegenError> {
    let tid = machine.spill_store(reg.class).ok_or_else(|| {
        err(format!(
            "no store for class `{}`",
            machine.reg_class(reg.class).name
        ))
    })?;
    Ok(AsmInst {
        template: tid,
        ops: vec![
            Operand::Phys(reg),
            Operand::Phys(sp),
            Operand::Imm(ImmVal::Const(offset)),
        ],
    })
}

fn load_from(
    machine: &Machine,
    reg: PhysReg,
    sp: PhysReg,
    offset: i64,
) -> Result<AsmInst, CodegenError> {
    let tid = machine.spill_load(reg.class).ok_or_else(|| {
        err(format!(
            "no load for class `{}`",
            machine.reg_class(reg.class).name
        ))
    })?;
    Ok(AsmInst {
        template: tid,
        ops: vec![
            Operand::Phys(reg),
            Operand::Phys(sp),
            Operand::Imm(ImmVal::Const(offset)),
        ],
    })
}

/// Renders a program as human-readable assembly. `symbols` maps
/// [`marion_ir::SymbolId`] indices to names.
pub fn render_program(machine: &Machine, program: &AsmProgram, symbols: &[String]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for func in &program.funcs {
        let _ = writeln!(out, "{}:    # frame {} bytes", func.name, func.frame_size);
        for (bi, block) in func.blocks.iter().enumerate() {
            let _ = writeln!(out, ".L{}_{bi}:", func.name);
            for word in &block.words {
                let text = render_word(machine, word, symbols, &func.name);
                let _ = writeln!(out, "    {text}");
            }
        }
    }
    out
}

/// Renders one word. Packed words are shown joined with `;` and, when
/// every sub-operation carries a packing class, prefixed with the long
/// instruction word's element name.
pub fn render_word(machine: &Machine, word: &Word, symbols: &[String], func: &str) -> String {
    let parts: Vec<String> = word
        .insts
        .iter()
        .map(|inst| {
            let t = machine.template(inst.template);
            let ops: Vec<String> = inst
                .ops
                .iter()
                .map(|op| render_operand(machine, op, symbols, func))
                .collect();
            if ops.is_empty() {
                t.mnemonic.clone()
            } else {
                format!("{} {}", t.mnemonic, ops.join(", "))
            }
        })
        .collect();
    if word.insts.len() > 1 {
        // Name the long instruction word by the first common element.
        let mut common: Option<marion_maril::ResSet> = None;
        for inst in &word.insts {
            if let Some(cid) = machine.template(inst.template).class {
                let elems = machine.class(cid).elements;
                common = Some(match common {
                    None => elems,
                    Some(c) => c.intersection(&elems),
                });
            }
        }
        if let Some(c) = common {
            if let Some(eid) = c.iter().next() {
                return format!(
                    "[{}] {}",
                    machine.elements()[eid as usize],
                    parts.join(" ; ")
                );
            }
        }
        return parts.join(" ; ");
    }
    parts.join(" ; ")
}

fn render_operand(machine: &Machine, op: &Operand, symbols: &[String], func: &str) -> String {
    match op {
        Operand::Phys(p) => format!("{}{}", machine.reg_class(p.class).name, p.index),
        Operand::Imm(ImmVal::Const(v)) => v.to_string(),
        Operand::Imm(ImmVal::Sym(s, a)) => {
            let name = symbols.get(s.0 as usize).cloned().unwrap_or(s.to_string());
            if *a == 0 {
                name
            } else {
                format!("{name}+{a}")
            }
        }
        Operand::Imm(ImmVal::SymHigh(s, a)) => {
            let name = symbols.get(s.0 as usize).cloned().unwrap_or(s.to_string());
            format!("%hi({name}+{a})")
        }
        Operand::Imm(ImmVal::SymLow(s, a)) => {
            let name = symbols.get(s.0 as usize).cloned().unwrap_or(s.to_string());
            format!("%lo({name}+{a})")
        }
        Operand::Block(b) => format!(".L{func}_{}", b.0),
        Operand::Func(s) => symbols.get(s.0 as usize).cloned().unwrap_or(s.to_string()),
        other => other.to_string(),
    }
}
