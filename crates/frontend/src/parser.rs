//! Recursive-descent parser for the C subset.

use crate::ast::*;
use crate::lexer::{Tok, Token};
use crate::CError;
use marion_maril::Ty;

/// Parses tokens into a [`Program`].
///
/// # Errors
///
/// Returns the first grammar violation with its source line.
pub fn parse(tokens: &[Token]) -> Result<Program, CError> {
    let mut p = Parser { tokens, pos: 0 };
    let mut program = Program::default();
    while p.peek() != &Tok::Eof {
        program.items.extend(p.item()?);
    }
    Ok(program)
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].tok
    }

    fn peek_at(&self, ahead: usize) -> &Tok {
        &self.tokens[(self.pos + ahead).min(self.tokens.len() - 1)].tok
    }

    fn line(&self) -> usize {
        self.tokens[self.pos.min(self.tokens.len() - 1)].line
    }

    fn bump(&mut self) -> &'a Tok {
        let t = &self.tokens[self.pos.min(self.tokens.len() - 1)].tok;
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Tok) -> Result<(), CError> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(CError::new(
                self.line(),
                format!("expected {tok:?}, found {:?}", self.peek()),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<String, CError> {
        match self.peek().clone() {
            Tok::Ident(name) if !is_keyword(&name) => {
                self.bump();
                Ok(name)
            }
            other => Err(CError::new(
                self.line(),
                format!("expected identifier, found {other:?}"),
            )),
        }
    }

    fn base_type(&mut self) -> Result<Option<CTy>, CError> {
        let Tok::Ident(name) = self.peek() else {
            return Ok(None);
        };
        let ty = match name.as_str() {
            "void" => CTy::Void,
            "char" => CTy::Scalar(Ty::Char),
            "short" => CTy::Scalar(Ty::Short),
            "int" => CTy::Scalar(Ty::Int),
            "long" => CTy::Scalar(Ty::Long),
            "float" => CTy::Scalar(Ty::Float),
            "double" => CTy::Scalar(Ty::Double),
            "unsigned" | "signed" => {
                self.bump();
                // Optional following `int`/`char`/...; treat as signed.
                if let Some(t) = self.base_type()? {
                    return Ok(Some(t));
                }
                return Ok(Some(CTy::Scalar(Ty::Int)));
            }
            _ => return Ok(None),
        };
        self.bump();
        Ok(Some(ty))
    }

    /// Parses top-level items. A single `double x, *y, z[3];` yields
    /// multiple globals; a type followed by `name(` begins a function.
    fn item(&mut self) -> Result<Vec<Item>, CError> {
        let line = self.line();
        let Some(base) = self.base_type()? else {
            return Err(CError::new(
                line,
                format!("expected a declaration, found {:?}", self.peek()),
            ));
        };
        // Look ahead: `ident (` → function.
        let mut stars = 0;
        while matches!(self.peek_at(stars), Tok::Star) {
            stars += 1;
        }
        if matches!(self.peek_at(stars), Tok::Ident(_))
            && matches!(self.peek_at(stars + 1), Tok::LParen)
        {
            let mut ret = base;
            for _ in 0..stars {
                self.bump();
                ret = CTy::Ptr(Box::new(ret));
            }
            return Ok(vec![Item::Func(self.func_rest(ret, line)?)]);
        }
        let decls = self.var_decls(base, true)?;
        self.expect(&Tok::Semi)?;
        Ok(decls.into_iter().map(Item::Global).collect())
    }

    fn func_rest(&mut self, ret: CTy, line: usize) -> Result<FuncDecl, CError> {
        let name = self.expect_ident()?;
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&Tok::RParen) {
            // `(void)` means no parameters.
            if matches!(self.peek(), Tok::Ident(n) if n == "void")
                && matches!(self.peek_at(1), Tok::RParen)
            {
                self.bump();
                self.expect(&Tok::RParen)?;
            } else {
                loop {
                    let pline = self.line();
                    let Some(base) = self.base_type()? else {
                        return Err(CError::new(pline, "expected parameter type"));
                    };
                    let mut ty = base;
                    while self.eat(&Tok::Star) {
                        ty = CTy::Ptr(Box::new(ty));
                    }
                    let pname = self.expect_ident()?;
                    // `double a[]` or `double a[10]` decays to pointer.
                    while self.eat(&Tok::LBracket) {
                        if let Tok::Int(_) = self.peek() {
                            self.bump();
                        }
                        self.expect(&Tok::RBracket)?;
                        ty = CTy::Ptr(Box::new(ty));
                    }
                    params.push(Param { name: pname, ty });
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(&Tok::RParen)?;
            }
        }
        if self.eat(&Tok::Semi) {
            return Ok(FuncDecl {
                name,
                ret,
                params,
                body: None,
                line,
            });
        }
        self.expect(&Tok::LBrace)?;
        let mut body = Vec::new();
        while !self.eat(&Tok::RBrace) {
            body.push(self.stmt()?);
        }
        Ok(FuncDecl {
            name,
            ret,
            params,
            body: Some(body),
            line,
        })
    }

    /// Parses the declarators after a base type:
    /// `*x, y[10], z = 3` (initialiser lists only if `allow_lists`).
    fn var_decls(&mut self, base: CTy, allow_lists: bool) -> Result<Vec<VarDecl>, CError> {
        let mut out = Vec::new();
        loop {
            let line = self.line();
            let mut ty = base.clone();
            while self.eat(&Tok::Star) {
                ty = CTy::Ptr(Box::new(ty));
            }
            let name = self.expect_ident()?;
            let mut dims = Vec::new();
            while self.eat(&Tok::LBracket) {
                match self.bump() {
                    Tok::Int(n) => dims.push(*n as u32),
                    other => {
                        return Err(CError::new(
                            line,
                            format!("array dimension must be an integer literal, found {other:?}"),
                        ));
                    }
                }
                self.expect(&Tok::RBracket)?;
            }
            for d in dims.into_iter().rev() {
                ty = CTy::Array(Box::new(ty), d);
            }
            let mut init = None;
            let mut init_list = None;
            if self.eat(&Tok::Assign) {
                if self.eat(&Tok::LBrace) {
                    if !allow_lists {
                        return Err(CError::new(
                            line,
                            "initialiser lists only allowed on globals",
                        ));
                    }
                    let mut items = Vec::new();
                    loop {
                        items.push(self.expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                        if self.peek() == &Tok::RBrace {
                            break;
                        }
                    }
                    self.expect(&Tok::RBrace)?;
                    init_list = Some(items);
                } else {
                    init = Some(self.expr()?);
                }
            }
            out.push(VarDecl {
                name,
                ty,
                init,
                init_list,
                line,
            });
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, CError> {
        let line = self.line();
        match self.peek().clone() {
            Tok::Semi => {
                self.bump();
                Ok(Stmt::Empty)
            }
            Tok::LBrace => {
                self.bump();
                let mut stmts = Vec::new();
                while !self.eat(&Tok::RBrace) {
                    stmts.push(self.stmt()?);
                }
                Ok(Stmt::Block(stmts))
            }
            Tok::Ident(kw) if kw == "if" => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                let then_s = Box::new(self.stmt()?);
                let else_s = if matches!(self.peek(), Tok::Ident(k) if k == "else") {
                    self.bump();
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then_s,
                    else_s,
                })
            }
            Tok::Ident(kw) if kw == "while" => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::While { cond, body })
            }
            Tok::Ident(kw) if kw == "do" => {
                self.bump();
                let body = Box::new(self.stmt()?);
                match self.bump() {
                    Tok::Ident(k) if k == "while" => {}
                    other => {
                        return Err(CError::new(
                            line,
                            format!("expected `while`, found {other:?}"),
                        ));
                    }
                }
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::DoWhile { body, cond })
            }
            Tok::Ident(kw) if kw == "for" => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let init = if self.eat(&Tok::Semi) {
                    None
                } else if let Some(base) = self.base_type()? {
                    let decls = self.var_decls(base, false)?;
                    self.expect(&Tok::Semi)?;
                    Some(Box::new(Stmt::Decl(decls)))
                } else {
                    let e = self.expr()?;
                    self.expect(&Tok::Semi)?;
                    Some(Box::new(Stmt::Expr(e)))
                };
                let cond = if self.peek() == &Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::Semi)?;
                let step = if self.peek() == &Tok::RParen {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            Tok::Ident(kw) if kw == "return" => {
                self.bump();
                if self.eat(&Tok::Semi) {
                    Ok(Stmt::Return(None, line))
                } else {
                    let e = self.expr()?;
                    self.expect(&Tok::Semi)?;
                    Ok(Stmt::Return(Some(e), line))
                }
            }
            Tok::Ident(kw) if kw == "break" => {
                self.bump();
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Break(line))
            }
            Tok::Ident(kw) if kw == "continue" => {
                self.bump();
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Continue(line))
            }
            _ => {
                if let Some(base) = self.base_type()? {
                    let decls = self.var_decls(base, false)?;
                    self.expect(&Tok::Semi)?;
                    Ok(Stmt::Decl(decls))
                } else {
                    let e = self.expr()?;
                    self.expect(&Tok::Semi)?;
                    Ok(Stmt::Expr(e))
                }
            }
        }
    }

    fn expr(&mut self) -> Result<Expr, CError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, CError> {
        let lhs = self.binary(0)?;
        let line = self.line();
        match self.peek().clone() {
            Tok::Assign => {
                self.bump();
                let rhs = self.assignment()?;
                Ok(Expr {
                    kind: ExprKind::Assign(Box::new(lhs), Box::new(rhs)),
                    line,
                })
            }
            Tok::OpAssign(op) => {
                self.bump();
                let rhs = self.assignment()?;
                let bop = match op {
                    '+' => CBinOp::Add,
                    '-' => CBinOp::Sub,
                    '*' => CBinOp::Mul,
                    '/' => CBinOp::Div,
                    _ => CBinOp::Rem,
                };
                Ok(Expr {
                    kind: ExprKind::OpAssign(bop, Box::new(lhs), Box::new(rhs)),
                    line,
                })
            }
            _ => Ok(lhs),
        }
    }

    fn binary(&mut self, min_bp: u8) -> Result<Expr, CError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, bp) = match self.peek() {
                Tok::OrOr => (CBinOp::LOr, 1),
                Tok::AndAnd => (CBinOp::LAnd, 2),
                Tok::Pipe => (CBinOp::Or, 3),
                Tok::Caret => (CBinOp::Xor, 4),
                Tok::Amp => (CBinOp::And, 5),
                Tok::EqEq => (CBinOp::Eq, 6),
                Tok::Ne => (CBinOp::Ne, 6),
                Tok::Lt => (CBinOp::Lt, 7),
                Tok::Le => (CBinOp::Le, 7),
                Tok::Gt => (CBinOp::Gt, 7),
                Tok::Ge => (CBinOp::Ge, 7),
                Tok::Shl => (CBinOp::Shl, 8),
                Tok::Shr => (CBinOp::Shr, 8),
                Tok::Plus => (CBinOp::Add, 9),
                Tok::Minus => (CBinOp::Sub, 9),
                Tok::Star => (CBinOp::Mul, 10),
                Tok::Slash => (CBinOp::Div, 10),
                Tok::Percent => (CBinOp::Rem, 10),
                _ => break,
            };
            if bp < min_bp {
                break;
            }
            let line = self.line();
            self.bump();
            let rhs = self.binary(bp + 1)?;
            lhs = Expr {
                kind: ExprKind::Bin(op, Box::new(lhs), Box::new(rhs)),
                line,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CError> {
        let line = self.line();
        match self.peek().clone() {
            Tok::Minus => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr {
                    kind: ExprKind::Un(CUnOp::Neg, Box::new(e)),
                    line,
                })
            }
            Tok::Bang => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr {
                    kind: ExprKind::Un(CUnOp::LNot, Box::new(e)),
                    line,
                })
            }
            Tok::Tilde => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr {
                    kind: ExprKind::Un(CUnOp::BNot, Box::new(e)),
                    line,
                })
            }
            Tok::Star => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr {
                    kind: ExprKind::Deref(Box::new(e)),
                    line,
                })
            }
            Tok::Amp => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr {
                    kind: ExprKind::AddrOf(Box::new(e)),
                    line,
                })
            }
            Tok::Inc | Tok::Dec => {
                let delta = if self.bump() == &Tok::Inc { 1 } else { -1 };
                let e = self.unary()?;
                Ok(Expr {
                    kind: ExprKind::IncDec {
                        target: Box::new(e),
                        delta,
                        postfix: false,
                    },
                    line,
                })
            }
            Tok::LParen => {
                // Cast or parenthesised expression.
                if let Tok::Ident(name) = self.peek_at(1) {
                    if is_type_keyword(name) {
                        self.bump(); // (
                        let base = self.base_type()?.unwrap();
                        let mut ty = base;
                        while self.eat(&Tok::Star) {
                            ty = CTy::Ptr(Box::new(ty));
                        }
                        self.expect(&Tok::RParen)?;
                        let e = self.unary()?;
                        return Ok(Expr {
                            kind: ExprKind::Cast(ty, Box::new(e)),
                            line,
                        });
                    }
                }
                self.postfix()
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, CError> {
        let line = self.line();
        let mut e = match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Expr {
                    kind: ExprKind::IntLit(v),
                    line,
                }
            }
            Tok::Float(v) => {
                self.bump();
                Expr {
                    kind: ExprKind::FloatLit(v),
                    line,
                }
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                e
            }
            Tok::Ident(name) if !is_keyword(&name) => {
                self.bump();
                if self.eat(&Tok::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(&Tok::RParen)?;
                    }
                    Expr {
                        kind: ExprKind::Call(name, args),
                        line,
                    }
                } else {
                    Expr {
                        kind: ExprKind::Ident(name),
                        line,
                    }
                }
            }
            other => {
                return Err(CError::new(
                    line,
                    format!("expected expression, found {other:?}"),
                ));
            }
        };
        loop {
            match self.peek() {
                Tok::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(&Tok::RBracket)?;
                    e = Expr {
                        kind: ExprKind::Index(Box::new(e), Box::new(idx)),
                        line,
                    };
                }
                Tok::Inc | Tok::Dec => {
                    let delta = if self.bump() == &Tok::Inc { 1 } else { -1 };
                    e = Expr {
                        kind: ExprKind::IncDec {
                            target: Box::new(e),
                            delta,
                            postfix: true,
                        },
                        line,
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }
}

fn is_type_keyword(name: &str) -> bool {
    matches!(
        name,
        "void" | "char" | "short" | "int" | "long" | "float" | "double" | "unsigned" | "signed"
    )
}

fn is_keyword(name: &str) -> bool {
    is_type_keyword(name)
        || matches!(
            name,
            "if" | "else" | "while" | "for" | "do" | "return" | "break" | "continue"
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Program {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_function_with_params() {
        let p = parse_src("int add(int a, int b) { return a + b; }");
        let Item::Func(f) = &p.items[0] else { panic!() };
        assert_eq!(f.name, "add");
        assert_eq!(f.params.len(), 2);
        assert!(f.body.is_some());
        assert_eq!(f.ret, CTy::Scalar(Ty::Int));
    }

    #[test]
    fn parses_globals_with_arrays_and_lists() {
        let p = parse_src("double x[100]; int n = 3, m; double w[2] = {1.0, 2.0};");
        assert_eq!(p.items.len(), 4);
        let Item::Global(g) = &p.items[0] else {
            panic!()
        };
        assert_eq!(g.ty, CTy::Array(Box::new(CTy::Scalar(Ty::Double)), 100));
        let Item::Global(w) = &p.items[3] else {
            panic!()
        };
        assert_eq!(w.init_list.as_ref().unwrap().len(), 2);
    }

    #[test]
    fn parses_2d_array() {
        let p = parse_src("double u[5][22];");
        let Item::Global(g) = &p.items[0] else {
            panic!()
        };
        assert_eq!(
            g.ty,
            CTy::Array(
                Box::new(CTy::Array(Box::new(CTy::Scalar(Ty::Double)), 22)),
                5
            )
        );
    }

    #[test]
    fn parses_control_flow() {
        let p = parse_src(
            "void f(int n) {
                int i;
                for (i = 0; i < n; i++) {
                    if (i % 2 == 0) continue; else break;
                }
                while (n > 0) n--;
                do { n++; } while (n < 10);
            }",
        );
        let Item::Func(f) = &p.items[0] else { panic!() };
        assert_eq!(f.body.as_ref().unwrap().len(), 4);
    }

    #[test]
    fn parses_pointer_params_and_array_decay() {
        let p = parse_src("double sum(double *a, double b[], int n) { return 0.0; }");
        let Item::Func(f) = &p.items[0] else { panic!() };
        assert_eq!(f.params[0].ty, CTy::Ptr(Box::new(CTy::Scalar(Ty::Double))));
        assert_eq!(f.params[1].ty, CTy::Ptr(Box::new(CTy::Scalar(Ty::Double))));
    }

    #[test]
    fn parses_casts_and_unaries() {
        let p = parse_src("int f(double x) { return (int)x + -1 + !0 + ~5; }");
        let Item::Func(f) = &p.items[0] else { panic!() };
        assert!(matches!(
            f.body.as_ref().unwrap()[0],
            Stmt::Return(Some(_), _)
        ));
    }

    #[test]
    fn parses_prototypes() {
        let p = parse_src("double kernel(int n); int main(void) { return 0; }");
        let Item::Func(proto) = &p.items[0] else {
            panic!()
        };
        assert!(proto.body.is_none());
        let Item::Func(main) = &p.items[1] else {
            panic!()
        };
        assert!(main.params.is_empty());
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse_src("int f() { return 1 + 2 * 3; }");
        let Item::Func(f) = &p.items[0] else { panic!() };
        let Stmt::Return(Some(e), _) = &f.body.as_ref().unwrap()[0] else {
            panic!()
        };
        let ExprKind::Bin(CBinOp::Add, _, rhs) = &e.kind else {
            panic!("expected + at top: {e:?}")
        };
        assert!(matches!(rhs.kind, ExprKind::Bin(CBinOp::Mul, _, _)));
    }

    #[test]
    fn rejects_bad_syntax() {
        assert!(parse(&lex("int f( { }").unwrap()).is_err());
        assert!(parse(&lex("int x[n];").unwrap()).is_err());
    }

    #[test]
    fn parses_compound_assign_and_incdec() {
        let p = parse_src("void f() { int i; i += 2; i--; ++i; }");
        let Item::Func(f) = &p.items[0] else { panic!() };
        assert_eq!(f.body.as_ref().unwrap().len(), 4);
    }
}
