//! Lowering from the C AST to `marion-ir`, with type checking.
//!
//! Scalar variables whose address is never taken live in
//! pseudo-registers (the paper's "user variables that may reside in
//! registers"); arrays and address-taken scalars live in frame locals
//! or globals and are accessed with explicit loads and stores.
//! Short-circuit operators and comparisons used as values lower to
//! control flow, so the IR contains relational operators only in
//! branch terminators — machine-specific compare instructions are
//! introduced later by Maril glue transformations.

use crate::ast::*;
use crate::CError;
use marion_ir::{
    BinOp, FuncBuilder, Global, GlobalInit, Module, NodeId, SymbolId, Ty, UnOp, VregId,
};
use std::collections::HashMap;

/// Lowers a parsed program into an IR module.
///
/// # Errors
///
/// Returns the first type or name error with its source line.
pub fn lower(program: &Program) -> Result<Module, CError> {
    let mut lowerer = Lowerer::default();
    lowerer.run(program)
}

#[derive(Debug, Clone)]
enum VarInfo {
    Vreg(VregId, CTy),
    Frame(marion_ir::LocalId, CTy),
    Global(SymbolId, CTy),
}

#[derive(Debug, Clone)]
struct FuncSig {
    ret: CTy,
    params: Vec<CTy>,
}

#[derive(Default)]
struct Lowerer {
    module: Module,
    globals: HashMap<String, (SymbolId, CTy)>,
    funcs: HashMap<String, FuncSig>,
}

struct FnCtx<'l> {
    l: &'l mut Lowerer,
    b: FuncBuilder,
    scopes: Vec<HashMap<String, VarInfo>>,
    ret: CTy,
    // (break target, continue target) stack.
    loops: Vec<(marion_ir::BlockId, marion_ir::BlockId)>,
}

impl Lowerer {
    fn run(&mut self, program: &Program) -> Result<Module, CError> {
        // Pre-register all function signatures so forward calls type-check.
        for item in &program.items {
            if let Item::Func(f) = item {
                let sig = FuncSig {
                    ret: f.ret.clone(),
                    params: f.params.iter().map(|p| p.ty.clone()).collect(),
                };
                if let Some(existing) = self.funcs.get(&f.name) {
                    if existing.params != sig.params || existing.ret != sig.ret {
                        return Err(CError::new(
                            f.line,
                            format!("conflicting declarations of `{}`", f.name),
                        ));
                    }
                } else {
                    self.funcs.insert(f.name.clone(), sig);
                }
                self.module.declare(&f.name);
            }
        }
        for item in &program.items {
            match item {
                Item::Global(decl) => self.lower_global(decl)?,
                Item::Func(f) => {
                    if f.body.is_some() {
                        self.lower_func(f)?;
                    }
                }
            }
        }
        Ok(std::mem::take(&mut self.module))
    }

    fn lower_global(&mut self, decl: &VarDecl) -> Result<(), CError> {
        if self.globals.contains_key(&decl.name) {
            return Err(CError::new(
                decl.line,
                format!("duplicate global `{}`", decl.name),
            ));
        }
        let init = global_init(decl)?;
        let sym = self.module.add_global(Global {
            name: decl.name.clone(),
            init,
        });
        self.globals
            .insert(decl.name.clone(), (sym, decl.ty.clone()));
        Ok(())
    }

    fn lower_func(&mut self, f: &FuncDecl) -> Result<(), CError> {
        let ret_ty = match &f.ret {
            CTy::Void => None,
            other => Some(other.value_ty()),
        };
        let mut b = FuncBuilder::new(&f.name, ret_ty);
        let mut scope = HashMap::new();
        let body = f.body.as_ref().expect("definition");
        let addr_taken = collect_addr_taken(body);
        for p in &f.params {
            let v = b.param(p.ty.value_ty());
            if addr_taken.contains(&p.name) {
                // Spill the parameter to a frame slot so `&p` works.
                let local = b.new_local(&p.name, p.ty.size().max(4));
                let addr = b.local_addr(local);
                let val = b.read_vreg(v);
                b.store(addr, val, p.ty.value_ty());
                scope.insert(p.name.clone(), VarInfo::Frame(local, p.ty.clone()));
            } else {
                scope.insert(p.name.clone(), VarInfo::Vreg(v, p.ty.clone()));
            }
        }
        let mut ctx = FnCtx {
            l: self,
            b,
            scopes: vec![scope],
            ret: f.ret.clone(),
            loops: vec![],
        };
        for stmt in body {
            ctx.stmt(stmt, &addr_taken)?;
        }
        if !ctx.b.is_sealed() {
            if ctx.ret == CTy::Void {
                ctx.b.ret(None);
            } else {
                // C permits falling off the end; return zero.
                let zero = ctx.zero_of(&ctx.ret.clone());
                ctx.b.ret(Some(zero));
            }
        }
        let func = ctx.b.finish();
        self.module.add_func(func);
        Ok(())
    }
}

/// Names whose address is taken anywhere in the body.
fn collect_addr_taken(body: &[Stmt]) -> Vec<String> {
    let mut out = Vec::new();
    fn walk_expr(e: &Expr, out: &mut Vec<String>) {
        if let ExprKind::AddrOf(inner) = &e.kind {
            if let ExprKind::Ident(name) = &inner.kind {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
        }
        match &e.kind {
            ExprKind::Bin(_, a, b)
            | ExprKind::Assign(a, b)
            | ExprKind::OpAssign(_, a, b)
            | ExprKind::Index(a, b) => {
                walk_expr(a, out);
                walk_expr(b, out);
            }
            ExprKind::Un(_, a)
            | ExprKind::Deref(a)
            | ExprKind::AddrOf(a)
            | ExprKind::Cast(_, a) => walk_expr(a, out),
            ExprKind::IncDec { target, .. } => walk_expr(target, out),
            ExprKind::Call(_, args) => args.iter().for_each(|a| walk_expr(a, out)),
            _ => {}
        }
    }
    fn walk_stmt(s: &Stmt, out: &mut Vec<String>) {
        match s {
            Stmt::Expr(e) => walk_expr(e, out),
            Stmt::Decl(ds) => ds
                .iter()
                .filter_map(|d| d.init.as_ref())
                .for_each(|e| walk_expr(e, out)),
            Stmt::If {
                cond,
                then_s,
                else_s,
            } => {
                walk_expr(cond, out);
                walk_stmt(then_s, out);
                if let Some(e) = else_s {
                    walk_stmt(e, out);
                }
            }
            Stmt::While { cond, body } => {
                walk_expr(cond, out);
                walk_stmt(body, out);
            }
            Stmt::DoWhile { body, cond } => {
                walk_stmt(body, out);
                walk_expr(cond, out);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    walk_stmt(i, out);
                }
                if let Some(c) = cond {
                    walk_expr(c, out);
                }
                if let Some(s) = step {
                    walk_expr(s, out);
                }
                walk_stmt(body, out);
            }
            Stmt::Return(Some(e), _) => walk_expr(e, out),
            Stmt::Block(ss) => ss.iter().for_each(|s| walk_stmt(s, out)),
            _ => {}
        }
    }
    body.iter().for_each(|s| walk_stmt(s, &mut out));
    out
}

fn global_init(decl: &VarDecl) -> Result<GlobalInit, CError> {
    let elem_ty = |cty: &CTy| -> Ty {
        match cty {
            CTy::Array(el, _) => match &**el {
                CTy::Array(el2, _) => el2.value_ty(),
                other => other.value_ty(),
            },
            other => other.value_ty(),
        }
    };
    if let Some(list) = &decl.init_list {
        let ty = elem_ty(&decl.ty);
        let total = decl.ty.size();
        let mut bytes = Vec::with_capacity(total as usize);
        for e in list {
            let v = const_eval(e)?;
            match ty {
                Ty::Double => bytes.extend(v.to_bits().to_le_bytes()),
                Ty::Float => bytes.extend((v as f32).to_bits().to_le_bytes()),
                Ty::Char => bytes.push(v as i64 as u8),
                Ty::Short => bytes.extend((v as i64 as i16).to_le_bytes()),
                _ => bytes.extend((v as i64 as i32).to_le_bytes()),
            }
        }
        if (bytes.len() as u32) < total {
            bytes.resize(total as usize, 0);
        }
        return Ok(GlobalInit::Bytes(bytes));
    }
    if let Some(init) = &decl.init {
        let v = const_eval(init)?;
        let ty = decl.ty.value_ty();
        return Ok(match ty {
            Ty::Double => GlobalInit::Doubles(vec![v]),
            Ty::Float => GlobalInit::Words(vec![(v as f32).to_bits()]),
            Ty::Char => GlobalInit::Bytes(vec![v as i64 as u8]),
            Ty::Short => GlobalInit::Bytes((v as i64 as i16).to_le_bytes().to_vec()),
            _ => GlobalInit::Words(vec![v as i64 as u32]),
        });
    }
    Ok(GlobalInit::Zero(decl.ty.size().max(1)))
}

/// Constant-folds the tiny expression grammar allowed in global
/// initialisers.
fn const_eval(e: &Expr) -> Result<f64, CError> {
    match &e.kind {
        ExprKind::IntLit(v) => Ok(*v as f64),
        ExprKind::FloatLit(v) => Ok(*v),
        ExprKind::Un(CUnOp::Neg, inner) => Ok(-const_eval(inner)?),
        ExprKind::Bin(op, a, b) => {
            let (x, y) = (const_eval(a)?, const_eval(b)?);
            Ok(match op {
                CBinOp::Add => x + y,
                CBinOp::Sub => x - y,
                CBinOp::Mul => x * y,
                CBinOp::Div => x / y,
                _ => {
                    return Err(CError::new(
                        e.line,
                        "unsupported operator in constant initialiser",
                    ));
                }
            })
        }
        _ => Err(CError::new(e.line, "initialiser is not a constant")),
    }
}

/// Where an lvalue lives.
enum Place {
    Vreg(VregId, CTy),
    Mem(NodeId, CTy),
}

impl<'l> FnCtx<'l> {
    fn lookup(&self, name: &str) -> Option<VarInfo> {
        for scope in self.scopes.iter().rev() {
            if let Some(info) = scope.get(name) {
                return Some(info.clone());
            }
        }
        self.l
            .globals
            .get(name)
            .map(|(sym, ty)| VarInfo::Global(*sym, ty.clone()))
    }

    fn zero_of(&mut self, ty: &CTy) -> NodeId {
        match ty.value_ty() {
            t if t.is_float() => self.b.const_f(0.0, t),
            t => self.b.const_i(0, t),
        }
    }

    fn stmt(&mut self, s: &Stmt, addr_taken: &[String]) -> Result<(), CError> {
        if self.b.is_sealed() {
            // Unreachable code after return/break: skip it.
            return Ok(());
        }
        match s {
            Stmt::Empty => Ok(()),
            Stmt::Expr(e) => {
                self.expr(e)?;
                Ok(())
            }
            Stmt::Decl(decls) => {
                for d in decls {
                    self.local_decl(d, addr_taken)?;
                }
                Ok(())
            }
            Stmt::Block(stmts) => {
                self.scopes.push(HashMap::new());
                for s in stmts {
                    self.stmt(s, addr_taken)?;
                }
                self.scopes.pop();
                Ok(())
            }
            Stmt::If {
                cond,
                then_s,
                else_s,
            } => {
                let then_b = self.b.new_block();
                let else_b = self.b.new_block();
                let join = self.b.new_block();
                self.cond(cond, then_b, else_b)?;
                self.b.switch_to(then_b);
                self.stmt(then_s, addr_taken)?;
                if !self.b.is_sealed() {
                    self.b.jump(join);
                }
                self.b.switch_to(else_b);
                if let Some(e) = else_s {
                    self.stmt(e, addr_taken)?;
                }
                if !self.b.is_sealed() {
                    self.b.jump(join);
                }
                self.b.switch_to(join);
                Ok(())
            }
            Stmt::While { cond, body } => {
                let head = self.b.new_block();
                let body_b = self.b.new_block();
                let exit = self.b.new_block();
                self.b.jump(head);
                self.b.switch_to(head);
                self.cond(cond, body_b, exit)?;
                self.b.switch_to(body_b);
                self.loops.push((exit, head));
                self.stmt(body, addr_taken)?;
                self.loops.pop();
                if !self.b.is_sealed() {
                    self.b.jump(head);
                }
                self.b.switch_to(exit);
                Ok(())
            }
            Stmt::DoWhile { body, cond } => {
                let body_b = self.b.new_block();
                let head = self.b.new_block();
                let exit = self.b.new_block();
                self.b.jump(body_b);
                self.b.switch_to(body_b);
                self.loops.push((exit, head));
                self.stmt(body, addr_taken)?;
                self.loops.pop();
                if !self.b.is_sealed() {
                    self.b.jump(head);
                }
                self.b.switch_to(head);
                self.cond(cond, body_b, exit)?;
                self.b.switch_to(exit);
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.stmt(i, addr_taken)?;
                }
                let head = self.b.new_block();
                let body_b = self.b.new_block();
                let step_b = self.b.new_block();
                let exit = self.b.new_block();
                self.b.jump(head);
                self.b.switch_to(head);
                match cond {
                    Some(c) => self.cond(c, body_b, exit)?,
                    None => self.b.jump(body_b),
                }
                self.b.switch_to(body_b);
                self.loops.push((exit, step_b));
                self.stmt(body, addr_taken)?;
                self.loops.pop();
                if !self.b.is_sealed() {
                    self.b.jump(step_b);
                }
                self.b.switch_to(step_b);
                if let Some(s) = step {
                    self.expr(s)?;
                }
                self.b.jump(head);
                self.b.switch_to(exit);
                self.scopes.pop();
                Ok(())
            }
            Stmt::Return(value, line) => {
                match (value, &self.ret) {
                    (None, CTy::Void) => self.b.ret(None),
                    (None, _) => {
                        return Err(CError::new(*line, "missing return value"));
                    }
                    (Some(_), CTy::Void) => {
                        return Err(CError::new(*line, "value returned from void function"));
                    }
                    (Some(e), ret) => {
                        let ret = ret.clone();
                        let (n, ty) = self.expr(e)?;
                        let n = self.coerce(n, &ty, &ret, *line)?;
                        self.b.ret(Some(n));
                    }
                }
                Ok(())
            }
            Stmt::Break(line) => {
                let Some((brk, _)) = self.loops.last().copied() else {
                    return Err(CError::new(*line, "`break` outside a loop"));
                };
                self.b.jump(brk);
                Ok(())
            }
            Stmt::Continue(line) => {
                let Some((_, cont)) = self.loops.last().copied() else {
                    return Err(CError::new(*line, "`continue` outside a loop"));
                };
                self.b.jump(cont);
                Ok(())
            }
        }
    }

    fn local_decl(&mut self, d: &VarDecl, addr_taken: &[String]) -> Result<(), CError> {
        if d.init_list.is_some() {
            return Err(CError::new(
                d.line,
                "initialiser lists only allowed on globals",
            ));
        }
        let info = match &d.ty {
            CTy::Scalar(_) | CTy::Ptr(_) if !addr_taken.contains(&d.name) => {
                let v = self.b.new_vreg(d.ty.value_ty());
                VarInfo::Vreg(v, d.ty.clone())
            }
            CTy::Void => return Err(CError::new(d.line, "cannot declare a void variable")),
            _ => {
                let local = self.b.new_local(&d.name, d.ty.size().max(4));
                VarInfo::Frame(local, d.ty.clone())
            }
        };
        if let Some(init) = &d.init {
            let d_ty = d.ty.clone();
            let (n, ty) = self.expr(init)?;
            let n = self.coerce(n, &ty, &d_ty, d.line)?;
            match &info {
                VarInfo::Vreg(v, _) => self.b.set_vreg(*v, n),
                VarInfo::Frame(l, cty) => {
                    let addr = self.b.local_addr(*l);
                    self.b.store(addr, n, cty.value_ty());
                }
                VarInfo::Global(..) => unreachable!(),
            }
        }
        self.scopes
            .last_mut()
            .expect("scope")
            .insert(d.name.clone(), info);
        Ok(())
    }

    /// Lowers a condition directly to control flow.
    fn cond(
        &mut self,
        e: &Expr,
        then_b: marion_ir::BlockId,
        else_b: marion_ir::BlockId,
    ) -> Result<(), CError> {
        match &e.kind {
            ExprKind::Bin(op, a, c) if op.is_relational() => {
                let (mut l, lt) = self.expr(a)?;
                let (mut r, rt) = self.expr(c)?;
                let common = usual_arith(&lt, &rt);
                l = self.coerce(l, &lt, &common, e.line)?;
                r = self.coerce(r, &rt, &common, e.line)?;
                let rel = match op {
                    CBinOp::Eq => BinOp::Eq,
                    CBinOp::Ne => BinOp::Ne,
                    CBinOp::Lt => BinOp::Lt,
                    CBinOp::Le => BinOp::Le,
                    CBinOp::Gt => BinOp::Gt,
                    CBinOp::Ge => BinOp::Ge,
                    _ => unreachable!(),
                };
                self.b.cond_jump(rel, l, r, then_b, else_b);
                Ok(())
            }
            ExprKind::Bin(CBinOp::LAnd, a, c) => {
                let mid = self.b.new_block();
                self.cond(a, mid, else_b)?;
                self.b.switch_to(mid);
                self.cond(c, then_b, else_b)
            }
            ExprKind::Bin(CBinOp::LOr, a, c) => {
                let mid = self.b.new_block();
                self.cond(a, then_b, mid)?;
                self.b.switch_to(mid);
                self.cond(c, then_b, else_b)
            }
            ExprKind::Un(CUnOp::LNot, a) => self.cond(a, else_b, then_b),
            _ => {
                let (n, ty) = self.expr(e)?;
                let zero = match ty.value_ty() {
                    t if t.is_float() => self.b.const_f(0.0, t),
                    t => self.b.const_i(0, t),
                };
                self.b.cond_jump(BinOp::Ne, n, zero, then_b, else_b);
                Ok(())
            }
        }
    }

    /// Lowers an expression to a value node with its C type.
    fn expr(&mut self, e: &Expr) -> Result<(NodeId, CTy), CError> {
        match &e.kind {
            ExprKind::IntLit(v) => Ok((self.b.const_i(*v, Ty::Int), CTy::Scalar(Ty::Int))),
            ExprKind::FloatLit(v) => Ok((self.b.const_f(*v, Ty::Double), CTy::Scalar(Ty::Double))),
            ExprKind::Ident(_) | ExprKind::Index(..) | ExprKind::Deref(_) => {
                let place = self.place(e)?;
                self.read_place(&place)
            }
            ExprKind::AddrOf(inner) => {
                let place = self.place(inner)?;
                match place {
                    Place::Mem(addr, ty) => Ok((addr, CTy::Ptr(Box::new(ty)))),
                    Place::Vreg(..) => Err(CError::new(
                        e.line,
                        "cannot take the address of a register variable",
                    )),
                }
            }
            ExprKind::Cast(to, inner) => {
                let to = to.clone();
                let (n, from) = self.expr(inner)?;
                let n = self.coerce_cast(n, &from, &to);
                Ok((n, to))
            }
            ExprKind::Un(op, inner) => match op {
                CUnOp::Neg => {
                    let (n, ty) = self.expr(inner)?;
                    let ty = promote(&ty);
                    let n = self.coerce(n, &ty.clone(), &ty, e.line)?;
                    Ok((self.b.un(UnOp::Neg, n, ty.value_ty()), ty))
                }
                CUnOp::BNot => {
                    let (n, ty) = self.expr(inner)?;
                    if ty.value_ty().is_float() {
                        return Err(CError::new(e.line, "`~` on floating operand"));
                    }
                    let ty = promote(&ty);
                    Ok((self.b.un(UnOp::Not, n, ty.value_ty()), ty))
                }
                CUnOp::LNot => self.bool_value(e),
            },
            ExprKind::Bin(op, ..)
                if op.is_relational() || matches!(op, CBinOp::LAnd | CBinOp::LOr) =>
            {
                self.bool_value(e)
            }
            ExprKind::Bin(op, a, c) => {
                let (mut l, lt) = self.expr(a)?;
                let (mut r, rt) = self.expr(c)?;
                // Pointer arithmetic: p + i, i + p, p - i.
                if let Some(el) = lt.element() {
                    if matches!(op, CBinOp::Add | CBinOp::Sub) && rt.is_arith() {
                        let size = self.b.const_i(el.size() as i64, Ty::Int);
                        let scaled = self.b.bin(BinOp::Mul, r, size, Ty::Int);
                        let bop = if *op == CBinOp::Add {
                            BinOp::Add
                        } else {
                            BinOp::Sub
                        };
                        let ptr_ty = CTy::Ptr(Box::new(el.clone()));
                        return Ok((self.b.bin(bop, l, scaled, Ty::Ptr), ptr_ty));
                    }
                    return Err(CError::new(e.line, "unsupported pointer arithmetic"));
                }
                if rt.element().is_some() && *op == CBinOp::Add && lt.is_arith() {
                    // i + p
                    return self.expr(&Expr {
                        kind: ExprKind::Bin(CBinOp::Add, c.clone(), a.clone()),
                        line: e.line,
                    });
                }
                let common = usual_arith(&lt, &rt);
                l = self.coerce(l, &lt, &common, e.line)?;
                r = self.coerce(r, &rt, &common, e.line)?;
                let vt = common.value_ty();
                let bop = match op {
                    CBinOp::Add => BinOp::Add,
                    CBinOp::Sub => BinOp::Sub,
                    CBinOp::Mul => BinOp::Mul,
                    CBinOp::Div => BinOp::Div,
                    CBinOp::Rem => BinOp::Rem,
                    CBinOp::And => BinOp::And,
                    CBinOp::Or => BinOp::Or,
                    CBinOp::Xor => BinOp::Xor,
                    CBinOp::Shl => BinOp::Shl,
                    CBinOp::Shr => BinOp::Shr,
                    _ => unreachable!(),
                };
                if vt.is_float()
                    && matches!(
                        bop,
                        BinOp::Rem | BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr
                    )
                {
                    return Err(CError::new(e.line, "integer operator on floating operands"));
                }
                Ok((self.b.bin(bop, l, r, vt), common))
            }
            ExprKind::Assign(lhs, rhs) => {
                let place = self.place(lhs)?;
                let (n, ty) = self.expr(rhs)?;
                let target_ty = place_ty(&place);
                let n = self.coerce(n, &ty, &target_ty, e.line)?;
                self.write_place(&place, n);
                Ok((n, target_ty))
            }
            ExprKind::OpAssign(op, lhs, rhs) => {
                let desugared = Expr {
                    kind: ExprKind::Bin(*op, lhs.clone(), rhs.clone()),
                    line: e.line,
                };
                let place = self.place(lhs)?;
                let (n, ty) = self.expr(&desugared)?;
                let target_ty = place_ty(&place);
                let n = self.coerce(n, &ty, &target_ty, e.line)?;
                self.write_place(&place, n);
                Ok((n, target_ty))
            }
            ExprKind::IncDec {
                target,
                delta,
                postfix,
            } => {
                let place = self.place(target)?;
                let (old, ty) = self.read_place(&place)?;
                let step: i64 = if let Some(el) = ty.element() {
                    el.size() as i64 * *delta as i64
                } else {
                    *delta as i64
                };
                let vt = ty.value_ty();
                let new = if vt.is_float() {
                    let d = self.b.const_f(step as f64, vt);
                    self.b.bin(BinOp::Add, old, d, vt)
                } else {
                    let d = self.b.const_i(step, vt);
                    self.b.bin(BinOp::Add, old, d, vt)
                };
                self.write_place(&place, new);
                Ok((if *postfix { old } else { new }, ty))
            }
            ExprKind::Call(name, args) => {
                let sig = match self.l.funcs.get(name) {
                    Some(sig) => sig.clone(),
                    None => {
                        // Implicit declaration: int f(...).
                        FuncSig {
                            ret: CTy::Scalar(Ty::Int),
                            params: args.iter().map(|_| CTy::Scalar(Ty::Int)).collect(),
                        }
                    }
                };
                if sig.params.len() != args.len() {
                    return Err(CError::new(
                        e.line,
                        format!(
                            "`{name}` expects {} arguments, got {}",
                            sig.params.len(),
                            args.len()
                        ),
                    ));
                }
                let sym = self.l.module.declare(name);
                let mut arg_nodes = Vec::with_capacity(args.len());
                for (arg, pty) in args.iter().zip(&sig.params) {
                    let (n, ty) = self.expr(arg)?;
                    arg_nodes.push(self.coerce(n, &ty, pty, e.line)?);
                }
                let ret_vt = match &sig.ret {
                    CTy::Void => Ty::Int,
                    other => other.value_ty(),
                };
                let call = self.b.call(sym, arg_nodes, ret_vt);
                if sig.ret == CTy::Void {
                    self.b.call_stmt(call);
                    Ok((call, CTy::Scalar(Ty::Int)))
                } else {
                    // Pin the call's value into a fresh pseudo-register so
                    // the call executes exactly once, in statement order.
                    let v = self.b.new_vreg(ret_vt);
                    self.b.set_vreg(v, call);
                    Ok((self.b.read_vreg(v), sig.ret.clone()))
                }
            }
        }
    }

    /// Lowers `!e`, relationals and `&&`/`||` used as *values* via
    /// control flow into a fresh pseudo-register.
    fn bool_value(&mut self, e: &Expr) -> Result<(NodeId, CTy), CError> {
        let v = self.b.new_vreg(Ty::Int);
        let then_b = self.b.new_block();
        let else_b = self.b.new_block();
        let join = self.b.new_block();
        self.cond(e, then_b, else_b)?;
        self.b.switch_to(then_b);
        let one = self.b.const_i(1, Ty::Int);
        self.b.set_vreg(v, one);
        self.b.jump(join);
        self.b.switch_to(else_b);
        let zero = self.b.const_i(0, Ty::Int);
        self.b.set_vreg(v, zero);
        self.b.jump(join);
        self.b.switch_to(join);
        Ok((self.b.read_vreg(v), CTy::Scalar(Ty::Int)))
    }

    fn place(&mut self, e: &Expr) -> Result<Place, CError> {
        match &e.kind {
            ExprKind::Ident(name) => match self.lookup(name) {
                Some(VarInfo::Vreg(v, ty)) => Ok(Place::Vreg(v, ty)),
                Some(VarInfo::Frame(l, ty)) => {
                    let addr = self.b.local_addr(l);
                    Ok(Place::Mem(addr, ty))
                }
                Some(VarInfo::Global(sym, ty)) => {
                    let addr = self.b.global_addr(sym);
                    Ok(Place::Mem(addr, ty))
                }
                None => Err(CError::new(e.line, format!("unknown variable `{name}`"))),
            },
            ExprKind::Deref(inner) => {
                let (n, ty) = self.expr(inner)?;
                match ty.element() {
                    Some(el) => Ok(Place::Mem(n, el.clone())),
                    None => Err(CError::new(e.line, "dereference of a non-pointer")),
                }
            }
            ExprKind::Index(base, idx) => {
                // The base is itself a place (array) or a value (pointer).
                let (base_addr, el_ty) = match &base.kind {
                    ExprKind::Ident(_) | ExprKind::Index(..) | ExprKind::Deref(_) => {
                        let p = self.place(base)?;
                        match p {
                            Place::Mem(addr, CTy::Array(el, _)) => (addr, (*el).clone()),
                            Place::Mem(addr, CTy::Ptr(el)) => {
                                // Pointer stored in memory: load it.
                                let ptr = self.b.load(addr, Ty::Ptr);
                                (ptr, (*el).clone())
                            }
                            Place::Vreg(v, CTy::Ptr(el)) => (self.b.read_vreg(v), (*el).clone()),
                            _ => {
                                return Err(CError::new(e.line, "indexing a non-array"));
                            }
                        }
                    }
                    _ => {
                        let (n, ty) = self.expr(base)?;
                        match ty.element() {
                            Some(el) => (n, el.clone()),
                            None => return Err(CError::new(e.line, "indexing a non-array")),
                        }
                    }
                };
                let (mut i, ity) = self.expr(idx)?;
                if !ity.is_arith() {
                    return Err(CError::new(e.line, "array index is not arithmetic"));
                }
                i = self.coerce(i, &ity, &CTy::Scalar(Ty::Int), e.line)?;
                let size = self.b.const_i(el_ty.size() as i64, Ty::Int);
                let off = self.b.bin(BinOp::Mul, i, size, Ty::Int);
                let addr = self.b.bin(BinOp::Add, base_addr, off, Ty::Ptr);
                Ok(Place::Mem(addr, el_ty))
            }
            _ => Err(CError::new(e.line, "expression is not assignable")),
        }
    }

    fn read_place(&mut self, place: &Place) -> Result<(NodeId, CTy), CError> {
        match place {
            Place::Vreg(v, ty) => Ok((self.b.read_vreg(*v), ty.clone())),
            Place::Mem(addr, ty) => match ty {
                // Arrays decay to their address.
                CTy::Array(..) => Ok((*addr, ty.clone())),
                _ => Ok((self.b.load(*addr, ty.value_ty()), ty.clone())),
            },
        }
    }

    fn write_place(&mut self, place: &Place, value: NodeId) {
        match place {
            Place::Vreg(v, _) => self.b.set_vreg(*v, value),
            Place::Mem(addr, ty) => self.b.store(*addr, value, ty.value_ty()),
        }
    }

    fn coerce(&mut self, n: NodeId, from: &CTy, to: &CTy, line: usize) -> Result<NodeId, CError> {
        if from == to {
            return Ok(n);
        }
        match (from, to) {
            (CTy::Scalar(_), CTy::Scalar(t)) => Ok(self.b.cvt(n, *t)),
            // Array-to-pointer decay and pointer compatibility.
            (CTy::Array(a, _), CTy::Ptr(b)) if a == b => Ok(n),
            (CTy::Ptr(_), CTy::Ptr(_)) => Ok(n),
            (CTy::Scalar(Ty::Int), CTy::Ptr(_)) | (CTy::Ptr(_), CTy::Scalar(Ty::Int)) => {
                Ok(self.b.cvt(n, to.value_ty()))
            }
            _ => Err(CError::new(
                line,
                format!("cannot convert {from:?} to {to:?}"),
            )),
        }
    }

    fn coerce_cast(&mut self, n: NodeId, from: &CTy, to: &CTy) -> NodeId {
        if from.value_ty() == to.value_ty() {
            n
        } else {
            self.b.cvt(n, to.value_ty())
        }
    }
}

fn place_ty(place: &Place) -> CTy {
    match place {
        Place::Vreg(_, ty) | Place::Mem(_, ty) => ty.clone(),
    }
}

/// Integer promotion: char/short become int.
fn promote(ty: &CTy) -> CTy {
    match ty {
        CTy::Scalar(Ty::Char) | CTy::Scalar(Ty::Short) => CTy::Scalar(Ty::Int),
        other => other.clone(),
    }
}

/// The usual arithmetic conversions.
fn usual_arith(a: &CTy, b: &CTy) -> CTy {
    use Ty::*;
    let (ta, tb) = (a.value_ty(), b.value_ty());
    let t = match (ta, tb) {
        (Double, _) | (_, Double) => Double,
        (Float, _) | (_, Float) => Float,
        (Ptr, _) | (_, Ptr) => Ptr,
        (Long, _) | (_, Long) => Long,
        _ => Int,
    };
    CTy::Scalar(t)
}

#[cfg(test)]
mod tests {
    use crate::compile;
    use marion_ir::interp::{Interp, Value};

    fn run_main(src: &str) -> Value {
        let m = compile(src).unwrap();
        let mut i = Interp::new(&m, 1 << 20);
        i.call_by_name("main", &[]).unwrap().unwrap()
    }

    #[test]
    fn arithmetic_program() {
        assert_eq!(
            run_main("int main() { return (3 + 4) * 5 - 36 / 6; }"),
            Value::I(29)
        );
    }

    #[test]
    fn locals_and_loops() {
        let v = run_main(
            "int main() {
                int i, sum;
                sum = 0;
                for (i = 1; i <= 100; i++) sum += i;
                return sum;
            }",
        );
        assert_eq!(v, Value::I(5050));
    }

    #[test]
    fn while_and_break_continue() {
        let v = run_main(
            "int main() {
                int i = 0, s = 0;
                while (1) {
                    i++;
                    if (i > 10) break;
                    if (i % 2) continue;
                    s += i;
                }
                return s;
            }",
        );
        assert_eq!(v, Value::I(30));
    }

    #[test]
    fn global_arrays_and_functions() {
        let v = run_main(
            "double a[10];
             void fill(int n) {
                int i;
                for (i = 0; i < n; i++) a[i] = i * 1.5;
             }
             int main() {
                double s;
                int i;
                fill(10);
                s = 0.0;
                for (i = 0; i < 10; i++) s += a[i];
                return (int)s;
             }",
        );
        assert_eq!(v, Value::I(67)); // 1.5 * 45 = 67.5
    }

    #[test]
    fn two_d_arrays() {
        let v = run_main(
            "int g[3][4];
             int main() {
                int i, j, s = 0;
                for (i = 0; i < 3; i++)
                    for (j = 0; j < 4; j++)
                        g[i][j] = i * 10 + j;
                for (i = 0; i < 3; i++) s += g[i][3];
                return s;
             }",
        );
        assert_eq!(v, Value::I(3 + 13 + 23));
    }

    #[test]
    fn pointers_and_addr_of() {
        let v = run_main(
            "void inc(int *p) { *p = *p + 1; }
             int main() {
                int x = 41;
                inc(&x);
                return x;
             }",
        );
        assert_eq!(v, Value::I(42));
    }

    #[test]
    fn pointer_params_and_indexing() {
        let v = run_main(
            "double dot(double *x, double *y, int n) {
                int i; double s = 0.0;
                for (i = 0; i < n; i++) s += x[i] * y[i];
                return s;
             }
             double a[3] = {1.0, 2.0, 3.0};
             double b[3] = {4.0, 5.0, 6.0};
             int main() { return (int)dot(a, b, 3); }",
        );
        assert_eq!(v, Value::I(32));
    }

    #[test]
    fn short_circuit_evaluation() {
        let v = run_main(
            "int g = 0;
             int bump() { g = g + 1; return 0; }
             int main() {
                if (0 && bump()) g = 100;
                if (1 || bump()) g = g + 10;
                return g;
             }",
        );
        assert_eq!(v, Value::I(10));
    }

    #[test]
    fn bool_values_materialise() {
        assert_eq!(
            run_main("int main() { return (3 < 5) + (2 == 2) + !7; }"),
            Value::I(2)
        );
    }

    #[test]
    fn casts_and_conversions() {
        assert_eq!(
            run_main("int main() { return (int)3.9 + (int)(2.0 * 1.5); }"),
            Value::I(6)
        );
        assert_eq!(
            run_main("int main() { double d; d = 7; return (int)(d / 2); }"),
            Value::I(3)
        );
    }

    #[test]
    fn recursion() {
        let v = run_main(
            "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
             int main() { return fib(12); }",
        );
        assert_eq!(v, Value::I(144));
    }

    #[test]
    fn global_scalar_inits() {
        assert_eq!(
            run_main("int n = 25; double h = 0.5; int main() { return n + (int)(h * 4.0); }"),
            Value::I(27)
        );
    }

    #[test]
    fn incdec_semantics() {
        assert_eq!(
            run_main(
                "int main() { int i = 5; int a = i++; int b = ++i; return a * 100 + b * 10 + i; }"
            ),
            Value::I(5 * 100 + 7 * 10 + 7)
        );
    }

    #[test]
    fn errors_have_lines() {
        let e = compile("int main() {\n  return x;\n}").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unknown variable"));
    }

    #[test]
    fn rejects_break_outside_loop() {
        let e = compile("int main() { break; return 0; }").unwrap_err();
        assert!(e.message.contains("break"));
    }

    #[test]
    fn rejects_void_misuse() {
        assert!(compile("void f() { return 1; }").is_err());
        assert!(compile("int f() { void x; return 0; }").is_err());
    }

    #[test]
    fn do_while_runs_at_least_once() {
        assert_eq!(
            run_main("int main() { int i = 100, n = 0; do { n++; } while (i < 0); return n; }"),
            Value::I(1)
        );
    }

    #[test]
    fn float_arithmetic_rounds_like_f32() {
        let v = run_main(
            "float f(float a, float b) { return a / b; }
             int main() { return (int)(f(1.0, 3.0) * 3000000.0); }",
        );
        let expected = ((1.0f32 / 3.0f32) as f64 * 3000000.0) as i64;
        assert_eq!(v, Value::I(expected));
    }
}
