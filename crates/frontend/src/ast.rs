//! Abstract syntax for the C subset.

use marion_maril::Ty;

/// A C type in the subset: scalars, pointers, and (up to 2-D) arrays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CTy {
    /// `void` (function returns only).
    Void,
    /// A scalar machine type.
    Scalar(Ty),
    /// Pointer to an element type.
    Ptr(Box<CTy>),
    /// Array of `len` elements.
    Array(Box<CTy>, u32),
}

impl CTy {
    /// Size in bytes.
    pub fn size(&self) -> u32 {
        match self {
            CTy::Void => 0,
            CTy::Scalar(t) => t.size(),
            CTy::Ptr(_) => 4,
            CTy::Array(el, n) => el.size() * n,
        }
    }

    /// The scalar machine type of this C type when used as a value
    /// (arrays decay to pointers).
    pub fn value_ty(&self) -> Ty {
        match self {
            CTy::Scalar(t) => *t,
            CTy::Ptr(_) | CTy::Array(..) => Ty::Ptr,
            CTy::Void => Ty::Int,
        }
    }

    /// Whether this is an arithmetic (scalar) type.
    pub fn is_arith(&self) -> bool {
        matches!(self, CTy::Scalar(_))
    }

    /// The element type if this is a pointer or array.
    pub fn element(&self) -> Option<&CTy> {
        match self {
            CTy::Ptr(el) | CTy::Array(el, _) => Some(el),
            _ => None,
        }
    }
}

/// Binary operators as written in source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CBinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    LAnd,
    /// `||`
    LOr,
}

impl CBinOp {
    /// Whether this is a comparison producing 0/1.
    pub fn is_relational(self) -> bool {
        matches!(
            self,
            CBinOp::Eq | CBinOp::Ne | CBinOp::Lt | CBinOp::Le | CBinOp::Gt | CBinOp::Ge
        )
    }
}

/// An expression with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression itself.
    pub kind: ExprKind,
    /// 1-based source line (for diagnostics).
    pub line: usize,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Floating literal.
    FloatLit(f64),
    /// Variable reference.
    Ident(String),
    /// Binary operation.
    Bin(CBinOp, Box<Expr>, Box<Expr>),
    /// `-e`, `!e`, `~e`.
    Un(CUnOp, Box<Expr>),
    /// `lhs = rhs`.
    Assign(Box<Expr>, Box<Expr>),
    /// `lhs op= rhs`.
    OpAssign(CBinOp, Box<Expr>, Box<Expr>),
    /// `++e` / `--e` (prefix) and `e++` / `e--` (postfix).
    IncDec {
        /// The lvalue changed.
        target: Box<Expr>,
        /// +1 or -1.
        delta: i32,
        /// Whether the result is the old value.
        postfix: bool,
    },
    /// Function call.
    Call(String, Vec<Expr>),
    /// `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// `*e`.
    Deref(Box<Expr>),
    /// `&e`.
    AddrOf(Box<Expr>),
    /// `(type)e`.
    Cast(CTy, Box<Expr>),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CUnOp {
    /// `-`
    Neg,
    /// `!`
    LNot,
    /// `~`
    BNot,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Expression statement.
    Expr(Expr),
    /// Local declaration(s).
    Decl(Vec<VarDecl>),
    /// `if (cond) then else?`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_s: Box<Stmt>,
        /// Optional else branch.
        else_s: Option<Box<Stmt>>,
    },
    /// `while (cond) body`.
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `do body while (cond);`.
    DoWhile {
        /// Loop body.
        body: Box<Stmt>,
        /// Condition.
        cond: Expr,
    },
    /// `for (init; cond; step) body`.
    For {
        /// Optional initialiser expression or declaration.
        init: Option<Box<Stmt>>,
        /// Optional condition (absent = forever).
        cond: Option<Expr>,
        /// Optional step expression.
        step: Option<Expr>,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `return e?;`.
    Return(Option<Expr>, usize),
    /// `break;`
    Break(usize),
    /// `continue;`
    Continue(usize),
    /// `{ ... }`
    Block(Vec<Stmt>),
    /// `;`
    Empty,
}

/// One declared variable.
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// Its type.
    pub ty: CTy,
    /// Optional scalar initialiser.
    pub init: Option<Expr>,
    /// Optional aggregate initialiser (globals only).
    pub init_list: Option<Vec<Expr>>,
    /// Source line.
    pub line: usize,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Its type (arrays decay to pointers).
    pub ty: CTy,
}

/// A function definition or prototype.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: CTy,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body; `None` for a prototype.
    pub body: Option<Vec<Stmt>>,
    /// Source line.
    pub line: usize,
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A global variable declaration.
    Global(VarDecl),
    /// A function.
    Func(FuncDecl),
}

/// A whole translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Items in source order.
    pub items: Vec<Item>,
}
