//! # marion-frontend — a C-subset front end
//!
//! A stand-in for the lcc front end used by the paper: it consumes a
//! subset of ANSI C and produces `marion-ir` modules (typed low-level
//! operator DAGs, one region per basic block).
//!
//! ## Supported subset
//!
//! * Types: `void`, `char`, `short`, `int`, `long`, `float`, `double`,
//!   pointers, and one- or two-dimensional arrays of scalars.
//! * Declarations: globals (with `{...}` initialisers), locals,
//!   functions (definitions and prototypes).
//! * Statements: expression statements, `if`/`else`, `while`, `do`,
//!   `for`, `return`, `break`, `continue`, blocks.
//! * Expressions: the usual C operators including assignment and
//!   compound assignment, `++`/`--`, short-circuit `&&`/`||`, calls,
//!   indexing, `&`/`*`, casts, and the full arithmetic set with the
//!   usual arithmetic conversions.
//!
//! Not supported (the evaluation workloads do not need them): structs,
//! unions, enums, `switch`, function pointers, varargs, strings,
//! `goto`, `static`/`extern` storage classes, and the preprocessor.
//!
//! ```
//! let src = "int add(int a, int b) { return a + b; }";
//! let module = marion_frontend::compile(src).unwrap();
//! assert_eq!(module.funcs.len(), 1);
//! ```

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;

use std::error::Error;
use std::fmt;

/// A front-end diagnostic with a 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CError {
    /// 1-based line the error points at (0 when unknown).
    pub line: usize,
    /// The message.
    pub message: String,
}

impl CError {
    pub(crate) fn new(line: usize, message: impl Into<String>) -> CError {
        CError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for CError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for CError {}

/// Compiles a C-subset source into an IR module.
///
/// # Errors
///
/// Returns the first lexical, syntactic or type error with its line.
pub fn compile(src: &str) -> Result<marion_ir::Module, CError> {
    let tokens = lexer::lex(src)?;
    let program = parser::parse(&tokens)?;
    let module = lower::lower(&program)?;
    marion_ir::verify::verify_module(&module)
        .map_err(|e| CError::new(0, format!("internal: {e}")))?;
    Ok(module)
}
