//! Lexer for the C subset.

use crate::CError;

/// A C token kind.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (keywords are distinguished by the
    /// parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating literal.
    Float(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Assign,
    /// `+=` `-=` `*=` `/=` `%=` — the payload is the operator char.
    OpAssign(char),
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `++`
    Inc,
    /// `--`
    Dec,
    /// End of input.
    Eof,
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub tok: Tok,
    /// 1-based line number.
    pub line: usize,
}

/// Lexes C-subset source.
///
/// # Errors
///
/// Returns an error for unterminated comments and malformed literals.
pub fn lex(src: &str) -> Result<Vec<Token>, CError> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1;
    macro_rules! push {
        ($tok:expr) => {
            toks.push(Token { tok: $tok, line })
        };
    }
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start_line = line;
                i += 2;
                loop {
                    if i + 1 >= b.len() {
                        return Err(CError::new(start_line, "unterminated comment"));
                    }
                    if b[i] == b'*' && b[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                push!(Tok::Ident(src[start..i].to_owned()));
            }
            b'0'..=b'9' => {
                let start = i;
                if c == b'0' && i + 1 < b.len() && (b[i + 1] | 32) == b'x' {
                    i += 2;
                    while i < b.len() && b[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    let v = i64::from_str_radix(&src[start + 2..i], 16)
                        .map_err(|_| CError::new(line, "malformed hex literal"))?;
                    push!(Tok::Int(v));
                    continue;
                }
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < b.len() && b[i] == b'.' {
                    is_float = true;
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < b.len() && (b[i] | 32) == b'e' {
                    is_float = true;
                    i += 1;
                    if i < b.len() && (b[i] == b'+' || b[i] == b'-') {
                        i += 1;
                    }
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if is_float {
                    let v: f64 = src[start..i]
                        .parse()
                        .map_err(|_| CError::new(line, "malformed float literal"))?;
                    push!(Tok::Float(v));
                } else {
                    let v: i64 = src[start..i]
                        .parse()
                        .map_err(|_| CError::new(line, "malformed integer literal"))?;
                    push!(Tok::Int(v));
                }
            }
            b'\'' => {
                if i + 2 < b.len() && b[i + 2] == b'\'' {
                    push!(Tok::Int(b[i + 1] as i64));
                    i += 3;
                } else if i + 3 < b.len() && b[i + 1] == b'\\' && b[i + 3] == b'\'' {
                    let v = match b[i + 2] {
                        b'n' => b'\n',
                        b't' => b'\t',
                        b'0' => 0,
                        b'\\' => b'\\',
                        b'\'' => b'\'',
                        other => other,
                    };
                    push!(Tok::Int(v as i64));
                    i += 4;
                } else {
                    return Err(CError::new(line, "malformed character literal"));
                }
            }
            _ => {
                let two = src.get(i..i + 2);
                let (tok, len) = match two {
                    Some("==") => (Tok::EqEq, 2),
                    Some("!=") => (Tok::Ne, 2),
                    Some("<=") => (Tok::Le, 2),
                    Some(">=") => (Tok::Ge, 2),
                    Some("&&") => (Tok::AndAnd, 2),
                    Some("||") => (Tok::OrOr, 2),
                    Some("<<") => (Tok::Shl, 2),
                    Some(">>") => (Tok::Shr, 2),
                    Some("++") => (Tok::Inc, 2),
                    Some("--") => (Tok::Dec, 2),
                    Some("+=") => (Tok::OpAssign('+'), 2),
                    Some("-=") => (Tok::OpAssign('-'), 2),
                    Some("*=") => (Tok::OpAssign('*'), 2),
                    Some("/=") => (Tok::OpAssign('/'), 2),
                    Some("%=") => (Tok::OpAssign('%'), 2),
                    _ => {
                        let t = match c {
                            b'(' => Tok::LParen,
                            b')' => Tok::RParen,
                            b'{' => Tok::LBrace,
                            b'}' => Tok::RBrace,
                            b'[' => Tok::LBracket,
                            b']' => Tok::RBracket,
                            b';' => Tok::Semi,
                            b',' => Tok::Comma,
                            b'+' => Tok::Plus,
                            b'-' => Tok::Minus,
                            b'*' => Tok::Star,
                            b'/' => Tok::Slash,
                            b'%' => Tok::Percent,
                            b'=' => Tok::Assign,
                            b'<' => Tok::Lt,
                            b'>' => Tok::Gt,
                            b'!' => Tok::Bang,
                            b'&' => Tok::Amp,
                            b'|' => Tok::Pipe,
                            b'^' => Tok::Caret,
                            b'~' => Tok::Tilde,
                            other => {
                                return Err(CError::new(
                                    line,
                                    format!("unexpected character `{}`", other as char),
                                ));
                            }
                        };
                        (t, 1)
                    }
                };
                push!(tok);
                i += len;
            }
        }
    }
    toks.push(Token {
        tok: Tok::Eof,
        line,
    });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_idents_and_numbers() {
        assert_eq!(
            kinds("x y1 _z 42 0x2A 3.5 1e3 2.5e-2")[..8],
            [
                Tok::Ident("x".into()),
                Tok::Ident("y1".into()),
                Tok::Ident("_z".into()),
                Tok::Int(42),
                Tok::Int(42),
                Tok::Float(3.5),
                Tok::Float(1000.0),
                Tok::Float(0.025),
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        let k = kinds("a += b ++ -- && || << >> <= >= == !=");
        assert!(k.contains(&Tok::OpAssign('+')));
        assert!(k.contains(&Tok::Inc));
        assert!(k.contains(&Tok::Dec));
        assert!(k.contains(&Tok::AndAnd));
        assert!(k.contains(&Tok::Shl));
        assert!(k.contains(&Tok::Ge));
    }

    #[test]
    fn comments_and_lines() {
        let toks = lex("a // x\nb /* y\nz */ c").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn char_literals() {
        assert_eq!(kinds("'A' '\\n'")[..2], [Tok::Int(65), Tok::Int(10)]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("a @ b").is_err());
        assert!(lex("/* unterminated").is_err());
    }
}
