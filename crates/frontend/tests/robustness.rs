//! Front-end robustness: malformed C must produce diagnostics with
//! line numbers, never panics; fuzzed inputs never crash the
//! lexer/parser/lowerer.
//!
//! Fuzzing is driven by the workspace's shared SplitMix64 stream
//! (`marion-rng`, deterministic); each case can be reproduced from
//! its index.

use marion_frontend::compile;
use marion_rng::SplitMix64;

/// A small character-soup helper over the shared stream.
struct Rng(SplitMix64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(SplitMix64::new(seed))
    }

    fn below(&mut self, n: usize) -> usize {
        self.0.index(n)
    }

    fn string(&mut self, charset: &[u8], max_len: usize) -> String {
        let len = self.below(max_len + 1);
        (0..len)
            .map(|_| charset[self.below(charset.len())] as char)
            .collect()
    }
}

const BASE: &str = "
double a[8];
int helper(int x) { return x * 2 + 1; }
int main() {
    int i, s = 0;
    for (i = 0; i < 8; i++) {
        a[i] = i * 0.5;
        if (i % 2 == 0) s += helper(i); else s -= i;
    }
    while (s > 100) s /= 3;
    return s + (int)a[3];
}
";

/// Printable-ASCII noise charset (space through tilde).
fn printable() -> Vec<u8> {
    (b' '..=b'~').collect()
}

#[test]
fn truncations_never_panic() {
    // Every truncation point, not just a sample — BASE is small.
    for cut in 0..=BASE.len() {
        if !BASE.is_char_boundary(cut) {
            continue;
        }
        let _ = compile(&BASE[..cut]);
    }
}

#[test]
fn mutations_never_panic() {
    let charset = printable();
    let mut rng = Rng::new(0xF00D);
    for _ in 0..256 {
        let mut pos = rng.below(BASE.len());
        while !BASE.is_char_boundary(pos) {
            pos -= 1;
        }
        let mut noise = rng.string(&charset, 10);
        if noise.is_empty() {
            noise.push('!');
        }
        let mutated = format!("{}{}{}", &BASE[..pos], noise, &BASE[pos..]);
        let _ = compile(&mutated);
    }
}

#[test]
fn source_soup_never_panics() {
    let charset: Vec<u8> =
        b"abcdefghijklmnopqrstuvwxyz0123456789{}()[];,+*/%<>=!&|^~. \n-".to_vec();
    let mut rng = Rng::new(0x50FA);
    for _ in 0..256 {
        let src = rng.string(&charset, 300);
        let _ = compile(&src);
    }
}

#[test]
fn diagnostics_carry_lines_and_descriptions() {
    let cases: &[(&str, &str)] = &[
        ("int main() {\n  return x;\n}", "unknown variable"),
        ("int main() {\n  break;\n}", "break"),
        ("int main() {\n  continue;\n}", "continue"),
        ("void f() {\n  return 1;\n}", "void"),
        (
            "int f();\ndouble f();\nint main() { return 0; }",
            "conflicting",
        ),
        (
            "int main() {\n  int x[2] = {1, 2};\n  return 0;\n}",
            "initialiser",
        ),
        ("int main() {\n  return 1 +;\n}", "expected expression"),
        ("int main() {\n  5 = 3;\n  return 0;\n}", "not assignable"),
        ("int main() {\n  int v;\n  return *v;\n}", "non-pointer"),
        (
            "int main() {\n  double d;\n  return d & 1;\n}",
            "integer operator",
        ),
        ("int x = y;\nint main() { return 0; }", "constant"),
        (
            "int main(int a, int b) { return a; }\nint g() { return main(1); }",
            "arguments",
        ),
    ];
    for (src, needle) in cases {
        let err = compile(src).expect_err(src);
        assert!(
            err.message.contains(needle),
            "for {src:?}: expected {needle:?} in {:?}",
            err.message
        );
        assert!(err.line > 0, "no line for {src:?}");
    }
}

#[test]
fn subtle_but_legal_programs_compile() {
    for src in [
        // Dangling else binds to the nearest if.
        "int f(int a, int b) { if (a) if (b) return 1; else return 2; return 3; }",
        // Assignment as a value.
        "int main() { int a, b; a = b = 5; return a + b; }",
        // Unary chains.
        "int main() { return - - -5 + ~~7 + !!9; }",
        // Comparison chains via parens.
        "int main() { return (1 < 2) == (3 < 4); }",
        // Empty statements and blocks.
        "int main() { ;;; {} { ; } return 0; }",
        // Shadowing in nested scopes.
        "int main() { int x = 1; { int x = 2; { int x = 3; } } return x; }",
        // For-loop with declaration in the init clause.
        "int main() { int s = 0; for (int i = 0; i < 4; i++) s += i; return s; }",
        // Char arithmetic and promotions.
        "int main() { char c = 'A'; return c + 1; }",
        // Mixed int/double expressions everywhere.
        "int main() { double d = 1; int i = 2.5; return (int)(d + i); }",
        // Deeply nested calls.
        "int id(int x) { return x; } int main() { return id(id(id(id(4)))); }",
    ] {
        compile(src).unwrap_or_else(|e| panic!("{src}: {e}"));
    }
}

#[test]
fn shadowing_semantics_are_correct() {
    use marion_ir::interp::{Interp, Value};
    let module = compile(
        "int main() {
            int x = 1, s = 0;
            { int x = 10; s += x; }
            s += x;
            for (int x = 100; x < 102; x++) s += x;
            s += x;
            return s;
        }",
    )
    .unwrap();
    let mut i = Interp::new(&module, 1 << 16);
    assert_eq!(
        i.call_by_name("main", &[]).unwrap(),
        Some(Value::I(10 + 1 + 100 + 101 + 1))
    );
}
