//! A stable, process-independent 128-bit structural hash.
//!
//! `std::hash` deliberately refuses to promise a stable function (and
//! `SipHash` is seeded per process), so cache keys built on it could
//! never be written to disk. [`StableHasher`] is a defined function of
//! the written byte stream alone: two lanes of SplitMix64-style
//! mixing over 8-byte chunks, seeded with distinct constants, with
//! every variable-length write prefixed by its length so field
//! boundaries are part of the hash (`("ab","c")` ≠ `("a","bc")`).

use std::fmt;

/// A 128-bit content hash, the address of one cache entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(pub [u64; 2]);

impl CacheKey {
    /// Renders as 32 lowercase hex digits (high lane first).
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.0[0], self.0[1])
    }

    /// Parses the [`CacheKey::to_hex`] form. `None` on any deviation.
    pub fn from_hex(s: &str) -> Option<CacheKey> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(CacheKey([hi, lo]))
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// SplitMix64's finalizer: a full-avalanche 64-bit permutation. The
/// single implementation lives in `marion-rng`; on-disk cache keys are
/// a defined function of exactly this permutation, so sharing one copy
/// (rather than a drifting duplicate) is a correctness property.
use marion_rng::mix64;

/// The incremental hasher producing a [`CacheKey`].
///
/// Cloneable: hash the expensive shared prefix (the machine
/// description) once, clone, and finish each per-function key from the
/// clone.
#[derive(Debug, Clone)]
pub struct StableHasher {
    a: u64,
    b: u64,
}

impl Default for StableHasher {
    fn default() -> StableHasher {
        StableHasher::new()
    }
}

impl StableHasher {
    /// A fresh hasher with fixed seeds.
    pub fn new() -> StableHasher {
        StableHasher {
            a: 0x243F_6A88_85A3_08D3, // pi
            b: 0xB7E1_5162_8AED_2A6A, // e
        }
    }

    /// Absorb one 64-bit word.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.a = mix64(self.a ^ v);
        self.b = mix64(self.b ^ v.rotate_left(32) ^ 0x5851_F42D_4C95_7F2D);
    }

    /// Absorb a signed word (two's-complement bits).
    #[inline]
    pub fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    /// Absorb a byte string, length-prefixed.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    /// Absorb a string, length-prefixed.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// Finalize into a key. The hasher may keep absorbing afterwards;
    /// `finish` is a snapshot, not a terminator.
    pub fn finish(&self) -> CacheKey {
        // One extra round per lane, cross-feeding, so short inputs
        // still avalanche into both lanes.
        let a = mix64(self.a ^ self.b.rotate_left(17));
        let b = mix64(self.b ^ self.a.rotate_left(41));
        CacheKey([a, b])
    }
}
