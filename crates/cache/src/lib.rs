//! # marion-cache — content-addressed compile caching
//!
//! The storage layer of the compile service: the same IR function
//! compiled against the same Maril description under the same strategy
//! is fully deterministic (pinned by the parallel-determinism tests),
//! so compiled output is content-addressable. This crate provides the
//! three pieces that make that usable, with no policy of its own:
//!
//! * [`StableHasher`] / [`CacheKey`] — a stable, process-independent
//!   128-bit structural hash. Unlike `std::hash`, the result is a
//!   defined function of the written bytes alone, so keys can be
//!   persisted to disk and compared across runs and builds.
//! * [`ShardedCache`] — a mutex-sharded in-memory map with per-shard
//!   LRU eviction and atomic hit/miss/eviction accounting, safe to
//!   share across the scoped-thread compile pool.
//! * [`DiskStore`] — an append-only JSONL file of checksummed entries
//!   (reusing the trace crate's flat-JSON codec). Corrupted lines are
//!   detected at load and skipped, never served.
//!
//! What goes *into* the key (machine description, strategy, options,
//! function body) is the caller's business — see
//! `marion_core::fcache`.

pub mod disk;
pub mod hash;
pub mod lru;

pub use disk::{DiskLoad, DiskStore};
pub use hash::{CacheKey, StableHasher};
pub use lru::{CacheStats, ShardedCache};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_is_stable_across_hasher_instances() {
        let mut a = StableHasher::new();
        a.write_str("machine");
        a.write_u64(42);
        let mut b = StableHasher::new();
        b.write_str("machine");
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn key_hex_round_trips() {
        let mut h = StableHasher::new();
        h.write_bytes(b"roundtrip");
        let key = h.finish();
        let hex = key.to_string();
        assert_eq!(hex.len(), 32);
        assert_eq!(CacheKey::from_hex(&hex), Some(key));
        assert_eq!(CacheKey::from_hex("not hex"), None);
        assert_eq!(CacheKey::from_hex(&hex[..31]), None);
    }

    #[test]
    fn differing_writes_produce_differing_keys() {
        // Field boundaries matter: ("ab","c") must not collide with
        // ("a","bc"), and a trailing empty field must change the key.
        let mut h1 = StableHasher::new();
        h1.write_str("ab");
        h1.write_str("c");
        let mut h2 = StableHasher::new();
        h2.write_str("a");
        h2.write_str("bc");
        assert_ne!(h1.finish(), h2.finish());
        let mut h3 = StableHasher::new();
        h3.write_str("ab");
        h3.write_str("c");
        h3.write_str("");
        assert_ne!(h1.finish(), h3.finish());
    }

    #[test]
    fn cache_get_insert_and_stats() {
        let cache: ShardedCache<String> = ShardedCache::new(64);
        let key = CacheKey([1, 2]);
        assert_eq!(cache.get(key), None);
        cache.insert(key, "hello".to_string());
        assert_eq!(cache.get(key), Some("hello".to_string()));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        // Capacity 16 over 16 shards = 1 slot per shard: two keys in
        // the same shard must evict the older one.
        let cache: ShardedCache<u32> = ShardedCache::new(16);
        let k1 = CacheKey([0, 1]);
        let k2 = CacheKey([0, 2]); // same shard (shard index from key.0[0])
        cache.insert(k1, 1);
        let evicted = cache.insert(k2, 2);
        assert_eq!(evicted, 1);
        assert_eq!(cache.get(k1), None);
        assert_eq!(cache.get(k2), Some(2));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn get_refreshes_recency() {
        let cache: ShardedCache<u32> = ShardedCache::with_shards(3, 1);
        let (k1, k2, k3) = (CacheKey([0, 1]), CacheKey([0, 2]), CacheKey([0, 3]));
        cache.insert(k1, 1);
        cache.insert(k2, 2);
        cache.insert(k3, 3);
        // Touch k1 so k2 is now the coldest.
        assert_eq!(cache.get(k1), Some(1));
        let k4 = CacheKey([0, 4]);
        cache.insert(k4, 4);
        assert_eq!(cache.get(k2), None, "k2 was coldest");
        assert_eq!(cache.get(k1), Some(1));
    }

    #[test]
    fn disk_store_round_trips_and_detects_corruption() {
        let dir = std::env::temp_dir().join(format!("marion-cache-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.jsonl");
        let _ = std::fs::remove_file(&path);

        let key1 = CacheKey([7, 9]);
        let key2 = CacheKey([8, 10]);
        {
            let (store, load) = DiskStore::open(&path).unwrap();
            assert_eq!(load.entries.len(), 0);
            store.append(key1, "payload one").unwrap();
            store.append(key2, "payload \"two\"\nwith newline").unwrap();
        }
        let (_store, load) = DiskStore::open(&path).unwrap();
        assert_eq!(load.corrupt, 0);
        assert_eq!(load.entries.len(), 2);
        assert_eq!(load.entries[0], (key1, "payload one".to_string()));
        assert_eq!(
            load.entries[1],
            (key2, "payload \"two\"\nwith newline".to_string())
        );

        // Flip one byte inside the first entry's payload: its checksum
        // no longer matches, so it must be skipped — not served.
        let text = std::fs::read_to_string(&path).unwrap();
        let corrupted = text.replacen("payload one", "payload 0ne", 1);
        assert_ne!(text, corrupted);
        std::fs::write(&path, corrupted).unwrap();
        let (_store, load) = DiskStore::open(&path).unwrap();
        assert_eq!(load.corrupt, 1);
        assert_eq!(load.entries.len(), 1);
        assert_eq!(load.entries[0].0, key2);

        // Truncated garbage line: also skipped.
        std::fs::write(&path, "{\"key\":\"zz\"\n").unwrap();
        let (_store, load) = DiskStore::open(&path).unwrap();
        assert_eq!(load.corrupt, 1);
        assert!(load.entries.is_empty());
        let _ = std::fs::remove_file(&path);
    }
}
