//! The optional on-disk store: an append-only JSONL file of
//! checksummed entries.
//!
//! One line per entry, in the workspace's flat-JSON dialect
//! (`marion_trace::json` — scalar values only):
//!
//! ```text
//! {"key":"<32 hex digits>","sum":"<16 hex digits>","payload":"..."}
//! ```
//!
//! `sum` is a [`StableHasher`] checksum of the payload string. A line
//! that fails to parse, carries an unparsable key, or whose checksum
//! does not match its payload is *corrupt*: it is counted and skipped
//! at load, never served — the caller simply recompiles and appends a
//! fresh entry. Appends are whole-line writes under a mutex, so
//! concurrent compile workers cannot interleave partial lines.

use crate::hash::{CacheKey, StableHasher};
use marion_trace::json::{self, ObjWriter};
use marion_trace::Value;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// What [`DiskStore::open`] found in an existing file.
#[derive(Debug, Default)]
pub struct DiskLoad {
    /// Verified entries, in file order (later duplicates of a key
    /// should win — replay them in order).
    pub entries: Vec<(CacheKey, String)>,
    /// Lines that failed parsing or checksum verification.
    pub corrupt: usize,
}

/// The append-only store.
pub struct DiskStore {
    path: PathBuf,
    file: Mutex<std::fs::File>,
}

/// Checksum of a payload string, rendered into `sum`.
pub fn checksum(payload: &str) -> u64 {
    let mut h = StableHasher::new();
    h.write_str(payload);
    h.finish().0[0]
}

impl DiskStore {
    /// Opens (creating if absent) the store at `path` and verifies
    /// every existing entry.
    ///
    /// # Errors
    ///
    /// I/O failures opening or reading the file. Corrupt *entries* are
    /// not errors; they are reported in [`DiskLoad::corrupt`].
    pub fn open(path: impl AsRef<Path>) -> io::Result<(DiskStore, DiskLoad)> {
        let path = path.as_ref().to_path_buf();
        let mut load = DiskLoad::default();
        if path.exists() {
            let text = std::fs::read_to_string(&path)?;
            for line in text.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                match parse_entry(line) {
                    Some(entry) => load.entries.push(entry),
                    None => load.corrupt += 1,
                }
            }
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        Ok((
            DiskStore {
                path,
                file: Mutex::new(file),
            },
            load,
        ))
    }

    /// The store's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one checksummed entry and flushes it.
    ///
    /// # Errors
    ///
    /// I/O failures writing the line.
    pub fn append(&self, key: CacheKey, payload: &str) -> io::Result<()> {
        let mut obj = ObjWriter::new();
        obj.str("key", &key.to_hex());
        obj.str("sum", &format!("{:016x}", checksum(payload)));
        obj.str("payload", payload);
        let mut line = obj.finish();
        line.push('\n');
        let mut file = self.file.lock().unwrap();
        file.write_all(line.as_bytes())?;
        file.flush()
    }
}

fn parse_entry(line: &str) -> Option<(CacheKey, String)> {
    let fields = json::parse_flat(line).ok()?;
    let get = |name: &str| -> Option<&str> {
        fields.iter().find(|(k, _)| k == name).and_then(|(_, v)| {
            if let Value::Str(s) = v {
                Some(s.as_str())
            } else {
                None
            }
        })
    };
    let key = CacheKey::from_hex(get("key")?)?;
    let sum = u64::from_str_radix(get("sum")?, 16).ok()?;
    let payload = get("payload")?;
    if checksum(payload) != sum {
        return None;
    }
    Some((key, payload.to_string()))
}
