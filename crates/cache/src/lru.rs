//! A mutex-sharded in-memory cache with per-shard LRU eviction.
//!
//! Shards bound lock contention when the compile pool's worker threads
//! look up functions concurrently: a key maps to one shard by its high
//! hash bits, and each shard is an independent `HashMap` behind its
//! own mutex. Recency is a per-shard logical tick bumped on every get
//! and insert; eviction removes the minimum-tick entry, which is
//! deterministic because ticks are unique within a shard.

use crate::hash::CacheKey;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Counters accumulated over the cache's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries removed to make room.
    pub evictions: u64,
    /// Entries stored (including overwrites of the same key).
    pub insertions: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Shard<V> {
    map: HashMap<CacheKey, (V, u64)>,
    tick: u64,
}

impl<V> Shard<V> {
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

/// The sharded LRU map. Values are cloned out on hit, so `V` should be
/// cheap to clone or internally shared.
pub struct ShardedCache<V> {
    shards: Vec<Mutex<Shard<V>>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    insertions: AtomicU64,
}

const DEFAULT_SHARDS: usize = 16;

impl<V: Clone> ShardedCache<V> {
    /// A cache holding at most `capacity` entries across
    /// [`DEFAULT_SHARDS`] shards (per-shard capacity rounds up, so the
    /// effective total may slightly exceed `capacity`).
    pub fn new(capacity: usize) -> ShardedCache<V> {
        ShardedCache::with_shards(capacity, DEFAULT_SHARDS)
    }

    /// A cache with an explicit shard count (tests use 1 to force
    /// eviction order).
    pub fn with_shards(capacity: usize, shards: usize) -> ShardedCache<V> {
        let shards = shards.max(1);
        let per_shard_capacity = capacity.div_ceil(shards).max(1);
        ShardedCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        tick: 0,
                    })
                })
                .collect(),
            per_shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: CacheKey) -> &Mutex<Shard<V>> {
        &self.shards[(key.0[0] % self.shards.len() as u64) as usize]
    }

    /// Looks up `key`, refreshing its recency on hit.
    pub fn get(&self, key: CacheKey) -> Option<V> {
        let mut shard = self.shard(key).lock().unwrap();
        let tick = shard.next_tick();
        match shard.map.get_mut(&key) {
            Some((value, at)) => {
                *at = tick;
                let value = value.clone();
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `value` under `key`, evicting least-recently-used
    /// entries if the shard is full. Returns how many entries were
    /// evicted (0 or 1 in practice).
    pub fn insert(&self, key: CacheKey, value: V) -> usize {
        let mut shard = self.shard(key).lock().unwrap();
        let mut evicted = 0;
        while !shard.map.contains_key(&key) && shard.map.len() >= self.per_shard_capacity {
            // Min tick is unique within the shard, so the victim does
            // not depend on HashMap iteration order.
            let victim = shard
                .map
                .iter()
                .min_by_key(|(_, (_, at))| *at)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    shard.map.remove(&k);
                    evicted += 1;
                }
                None => break,
            }
        }
        let tick = shard.next_tick();
        shard.map.insert(key, (value, tick));
        self.insertions.fetch_add(1, Ordering::Relaxed);
        self.evictions.fetch_add(evicted as u64, Ordering::Relaxed);
        evicted
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().map.len())
            .sum()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the lifetime counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
        }
    }
}
