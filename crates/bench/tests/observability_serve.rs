//! End-to-end acceptance test for the marion-serve observability
//! layer: a service under concurrent load must produce exactly one
//! access-log line per request with matching request ids, windowed
//! percentiles within the documented 2x bound of the per-request log,
//! a tail-sampled exemplar whose flamegraph renders in the dashboard,
//! working SLO verdicts — and byte-identical warm output throughout.

use marion_bench::serve::{
    check_slo_fields, parse_slos, run_stream, ServeConfig, Service, SLO_RECENT_WINDOWS,
};
use marion_trace::json::parse_flat;
use marion_trace::Value;

fn get(fields: &[(String, Value)], name: &str) -> Option<Value> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.clone())
}

fn get_str(fields: &[(String, Value)], name: &str) -> Option<String> {
    get(fields, name).and_then(|v| v.as_str().map(str::to_string))
}

fn get_int(fields: &[(String, Value)], name: &str) -> Option<i64> {
    get(fields, name).and_then(|v| v.as_int())
}

#[test]
fn observability_end_to_end_under_concurrent_load() {
    let dir = std::env::temp_dir().join(format!("marion-e2e-obs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log_path = dir.join("access.jsonl");
    let service = Service::new(&ServeConfig {
        access_log: Some(log_path.clone()),
        // p99_ms=0 cannot be met by any real request; error_rate=50%
        // is met by an all-ok run — so exactly one SLO must trip.
        slos: parse_slos("p99_ms=0,error_rate=50%").unwrap(),
        // Wide windows so the whole (debug-build) run fits inside the
        // recent horizon the metrics response reports over.
        window_ms: 10_000,
        ..ServeConfig::default()
    })
    .unwrap();

    // Stream 1: concurrent compile load (4 workers), with a repeated
    // emit_asm pair so the warm response can be compared byte-wise
    // against the cold one.
    let mut requests = String::new();
    let machines = ["toyp", "r2000", "i860", "toyp", "r2000", "i860"];
    for (i, machine) in machines.iter().enumerate() {
        requests.push_str(&format!(
            "{{\"id\":{i},\"machine\":\"{machine}\",\"strategy\":\"Postpass\",\"source\":\"int main() {{ int a; int b; a = {i}; b = a + 2; return a * b; }}\"}}\n"
        ));
    }
    let asm_req = |id: usize| {
        format!(
            "{{\"id\":{id},\"machine\":\"r2000\",\"strategy\":\"IPS\",\"source\":\"int main() {{ return 40 + 2; }}\",\"emit_asm\":1}}\n"
        )
    };
    requests.push_str(&asm_req(6)); // cold; repeated warm in stream 2
    requests.push_str(&asm_req(7)); // concurrent duplicate
    for i in 8..12 {
        requests.push_str(&format!(
            "{{\"id\":{i},\"machine\":\"toyp\",\"strategy\":\"Rase\",\"workload\":\"livermore\"}}\n"
        ));
    }
    let mut out1: Vec<u8> = Vec::new();
    let stats1 = run_stream(&service, requests.as_bytes(), &mut out1, 4, 8).unwrap();
    assert_eq!(stats1.requests, 12);
    assert_eq!(stats1.failures, 0);
    let lines1: Vec<Vec<(String, Value)>> = String::from_utf8(out1)
        .unwrap()
        .lines()
        .map(|l| parse_flat(l).unwrap())
        .collect();

    // The concurrent duplicates (6 and 7 may race to compile the same
    // function on different workers) still agree byte-for-byte.
    let cold = lines1.iter().find(|f| get_int(f, "id") == Some(6)).unwrap();
    let dup = lines1.iter().find(|f| get_int(f, "id") == Some(7)).unwrap();
    let asm_cold = get_str(cold, "asm").expect("cold asm");
    assert_eq!(Some(asm_cold.clone()), get_str(dup, "asm"));

    // Stream 2 on the same service, one worker: a guaranteed-warm
    // repeat of the asm request, then metrics, dashboard, shutdown.
    // All 12 stream-1 requests completed before the stream started.
    let admin = format!(
        "{}{{\"id\":100,\"cmd\":\"metrics\"}}\n{{\"id\":101,\"cmd\":\"dashboard\"}}\n{{\"id\":102,\"cmd\":\"shutdown\"}}\n",
        asm_req(99)
    );
    let mut out2: Vec<u8> = Vec::new();
    let stats2 = run_stream(&service, admin.as_bytes(), &mut out2, 1, 8).unwrap();
    assert_eq!(stats2.requests, 4);
    let out2 = String::from_utf8(out2).unwrap();
    let lines2: Vec<Vec<(String, Value)>> = out2.lines().map(|l| parse_flat(l).unwrap()).collect();
    let warm = &lines2[0];
    let metrics = &lines2[1];
    let dashboard = &lines2[2];

    // Warm output is byte-identical to cold: same asm, same structural
    // counters, despite tracing/observability being on.
    assert_eq!(Some(asm_cold), get_str(warm, "asm"), "warm == cold asm");
    for key in ["insts", "spills", "est_cycles", "funcs", "ok"] {
        assert_eq!(get(cold, key), get(warm, key), "field `{key}` warm == cold");
    }
    assert!(get_int(warm, "cache_hits").unwrap() > 0, "warm repeat hit");

    // ---- access-log exactness ----
    // One line per request served: 12 stream-1 compiles + 4 stream-2
    // requests, read after both streams drained.
    let log = std::fs::read_to_string(&log_path).unwrap();
    let log_fields: Vec<Vec<(String, Value)>> =
        log.lines().map(|l| parse_flat(l).unwrap()).collect();
    assert_eq!(log_fields.len(), 16, "access-log lines == requests served");
    // Every response's request_id appears in exactly one log line.
    for fields in lines1.iter().chain(lines2.iter()) {
        let rid = get_str(fields, "request_id").expect("response request_id");
        let matches = log_fields
            .iter()
            .filter(|lf| get_str(lf, "request_id").as_deref() == Some(&rid))
            .count();
        assert_eq!(matches, 1, "request {rid} logged exactly once");
    }

    // ---- windowed p99 vs the per-request log ----
    // The true p99 over compile service times, from the access log;
    // the serve estimate, from the rolling windows. The histogram
    // bucket bound guarantees true <= estimate < 2 * true.
    let mut compile_us: Vec<i64> = log_fields
        .iter()
        .filter(|lf| get_str(lf, "cmd").as_deref() == Some("compile"))
        .map(|lf| get_int(lf, "service_us").unwrap())
        .collect();
    assert_eq!(compile_us.len(), 13);
    // The metrics snapshot saw the first 13 requests (12 compiles +
    // the warm repeat); admin requests after it are excluded. The
    // true p99 over those 13 compile service times comes from the
    // access log; the estimate from the rolling windows.
    compile_us.sort_unstable();
    let rank = ((0.99 * compile_us.len() as f64).ceil() as usize).clamp(1, compile_us.len());
    let true_p99 = compile_us[rank - 1] as u64;
    let win_requests = get_int(metrics, "win_requests").unwrap();
    assert_eq!(win_requests, 13, "rolling windows cover the full run");
    let est = get_int(metrics, "win_p99_us").expect("windowed p99") as u64;
    assert!(est >= true_p99, "estimate {est} below true p99 {true_p99}");
    assert!(
        est - true_p99 < true_p99.max(1),
        "estimate {est} not within 2x of true p99 {true_p99}"
    );
    let _ = SLO_RECENT_WINDOWS; // burn-rate window constant is public API

    // ---- metrics invariants ----
    assert_eq!(get_int(metrics, "requests"), Some(13));
    assert_eq!(get_int(metrics, "started_requests"), Some(14));
    assert_eq!(get_int(metrics, "in_flight"), Some(1));
    assert_eq!(get_int(metrics, "format_version"), Some(2));
    assert_eq!(get_int(metrics, "service_count"), Some(13));

    // ---- SLO verdicts, server-side and CI-side ----
    assert_eq!(get_int(metrics, "slo_count"), Some(2));
    assert_eq!(get_int(metrics, "slo_p99_ms_violated"), Some(1));
    assert_eq!(get_int(metrics, "slo_error_rate_violated"), Some(0));
    assert_eq!(get_int(metrics, "slo_violations"), Some(1));
    assert_eq!(check_slo_fields(metrics).unwrap(), vec!["p99_ms"]);

    // ---- dashboard: self-contained, with an exemplar flamegraph ----
    let html = get_str(dashboard, "html").expect("dashboard html");
    assert!(html.starts_with("<!DOCTYPE html>"));
    assert!(!html.contains("http:") && !html.contains("https:"));
    assert!(!html.contains("src=") && !html.contains("href="));
    assert!(html.contains("<style>") && html.contains("<svg"));
    assert!(html.contains("Slowest requests"), "tail exemplars section");
    assert!(
        html.contains("wall-clock attribution"),
        "at least one tail-sampled exemplar renders a flamegraph"
    );

    std::fs::remove_dir_all(&dir).ok();
}
