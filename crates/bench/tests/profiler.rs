//! End-to-end checks on the self-profiler: the flame tree built from a
//! compile trace must be structurally identical at any `jobs` count,
//! its self-times must telescope exactly to the enclosing `strategy`
//! span, the micro-spans must account for nearly all of the strategy's
//! wall time on a real workload, and timing rows must never leak into
//! (or out of) the compile cache.

use marion_bench::flame::flame_tree;
use marion_core::{CompileOptions, CompiledProgram, Compiler, FuncCache, StrategyKind};
use marion_trace::{Record, TraceConfig};
use std::num::NonZeroUsize;
use std::sync::Arc;

fn compile_livermore(
    strategy: StrategyKind,
    jobs: usize,
    cache: Option<Arc<FuncCache>>,
) -> CompiledProgram {
    let spec = marion_machines::load("r2000");
    let compiler = Compiler::with_options(
        spec.machine.clone(),
        spec.escapes,
        strategy,
        CompileOptions {
            trace: Some(TraceConfig::default()),
            jobs: NonZeroUsize::new(jobs),
            cache,
            ..CompileOptions::default()
        },
    );
    let module = marion_workloads::multi::combined_livermore();
    compiler
        .compile_module(&module)
        .unwrap_or_else(|e| panic!("r2000/{strategy:?}: {e}"))
}

fn tree_of(program: &CompiledProgram) -> marion_bench::flame::FlameNode {
    flame_tree(program.trace.as_ref().expect("tracing was on"))
}

/// The flame tree's *structure* (paths and call counts, no timing) is
/// a pure function of the input module — serial and 8-way parallel
/// compiles must agree node for node.
#[test]
fn flame_tree_structure_is_identical_across_jobs_counts() {
    for strategy in [StrategyKind::Postpass, StrategyKind::Ips] {
        let serial = tree_of(&compile_livermore(strategy, 1, None));
        let parallel = tree_of(&compile_livermore(strategy, 8, None));
        assert!(
            !serial.children.is_empty(),
            "{strategy:?}: profiler produced an empty flame tree"
        );
        assert_eq!(
            serial.structure(),
            parallel.structure(),
            "{strategy:?}: flame tree differs between jobs=1 and jobs=8"
        );
    }
}

/// Per-node self-times telescope: summing `self` over the whole
/// `strategy` subtree reproduces the enclosing span's total exactly
/// (no double counting, nothing lost).
#[test]
fn strategy_subtree_self_times_sum_to_span_total() {
    let program = compile_livermore(StrategyKind::Rase, 1, None);
    let tree = tree_of(&program);
    let strategy = tree
        .find("compile_func/strategy")
        .expect("strategy span in flame tree");
    assert!(strategy.total_us > 0, "strategy span recorded no time");
    assert_eq!(
        strategy.self_sum(),
        strategy.total_us,
        "self-times must telescope to the span total"
    );
}

/// The micro-spans inside `strategy` attribute at least 90% of its
/// wall time on the combined Livermore module — the profiler is dense
/// enough that "where does the time go" has a real answer.
#[test]
fn micro_spans_attribute_at_least_90_percent_of_strategy_time() {
    for strategy in [
        StrategyKind::Postpass,
        StrategyKind::Ips,
        StrategyKind::Rase,
    ] {
        let program = compile_livermore(strategy, 1, None);
        let tree = tree_of(&program);
        let node = tree
            .find("compile_func/strategy")
            .expect("strategy span in flame tree");
        let attributed: u64 = node.children.iter().map(|c| c.total_us).sum();
        assert!(
            attributed * 10 >= node.total_us * 9,
            "{strategy:?}: micro-spans cover {attributed} of {} us (< 90%)",
            node.total_us
        );
    }
}

/// Timing rows stay out of the cache in both directions: a cold
/// compile records profile rows but strips them from the entries it
/// inserts, so a warm compile — which replays cached traces instead of
/// running the back end — sees none below `compile_func`. (The bare
/// `compile_module` row survives: that is the driver's own live wall
/// time, re-measured on every run, not a replayed timing.)
#[test]
fn profile_rows_never_round_trip_through_the_cache() {
    let cache = Arc::new(FuncCache::in_memory(1024));
    let count_profs = |p: &CompiledProgram| {
        p.trace
            .as_ref()
            .expect("tracing was on")
            .records
            .iter()
            .filter(|r| matches!(r, Record::Prof { path, .. } if path.contains("compile_func")))
            .count()
    };
    let cold = compile_livermore(StrategyKind::Ips, 1, Some(cache.clone()));
    assert!(count_profs(&cold) > 0, "cold compile should self-profile");
    let warm = compile_livermore(StrategyKind::Ips, 1, Some(cache));
    let hits: i64 = warm
        .trace
        .as_ref()
        .unwrap()
        .records
        .iter()
        .filter_map(|r| match r {
            Record::Counter { name, value, .. } if name == "cache_hit" => Some(*value),
            _ => None,
        })
        .sum();
    assert!(hits > 0, "second compile should hit the cache");
    assert_eq!(
        count_profs(&warm),
        0,
        "cached traces must carry no timing rows"
    );
    // And the cache stayed invisible where it matters: the output.
    let machine = marion_machines::load("r2000").machine;
    assert_eq!(cold.render(&machine), warm.render(&machine));
}
