//! `marion-bench diff` — the perf-regression comparator.
//!
//! Compares two `BENCH_*.json` files (the baseline committed to the
//! repo and a freshly measured one) metric by metric and decides
//! whether the new numbers regress past a tolerance. The bench files
//! nest (`runs[]` arrays of per-machine objects with a `phase_ms`
//! map), which the trace crate's flat-object parser refuses by
//! design, so this module carries its own small recursive JSON reader
//! — still zero dependencies.
//!
//! Direction is inferred from the metric name: `*_ms` / `*_us` are
//! wall-clock times and `*_cycles` are simulated schedule lengths
//! (bigger is worse); names containing `per_sec` or `speedup` are
//! rates (smaller is worse). Everything else
//! (`functions`, `iterations`, hit counts…) is context, compared for
//! identity-matching only, never gated. Array elements are matched by
//! their string-valued identity fields (`machine`, `workload`,
//! `strategy`…), so reordering runs between files is not a diff.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Concatenated string-valued fields: the identity of one `runs[]`
    /// element (machine/workload/strategy and the like).
    fn identity(&self) -> String {
        match self {
            Json::Obj(fields) => {
                let mut parts: Vec<&str> = fields
                    .iter()
                    .filter_map(|(_, v)| match v {
                        Json::Str(s) => Some(s.as_str()),
                        _ => None,
                    })
                    .collect();
                if parts.is_empty() {
                    parts.push("");
                }
                parts.join("/")
            }
            _ => String::new(),
        }
    }
}

/// Parses a complete JSON document (any nesting).
///
/// # Errors
///
/// Describes the first syntax error with its byte offset.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = P {
        b: text.as_bytes(),
        i: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing bytes at offset {}", p.i));
    }
    Ok(v)
}

struct P<'a> {
    b: &'a [u8],
    i: usize,
}

impl P<'_> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, want: u8) -> Result<(), String> {
        match self.peek() {
            Some(c) if c == want => {
                self.i += 1;
                Ok(())
            }
            other => Err(format!(
                "expected {:?} at offset {}, got {other:?}",
                want as char, self.i
            )),
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            fields.push((key, self.value()?));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                self.i += 1;
                                let d = self.peek().ok_or("truncated \\u escape")?;
                                code =
                                    code * 16 + (d as char).to_digit(16).ok_or("bad hex digit")?;
                            }
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.i += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.i += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole sequence.
                    let start = self.i;
                    let s = std::str::from_utf8(&self.b[start..])
                        .map_err(|_| "invalid utf-8 in string")?;
                    let c = s.chars().next().ok_or("truncated utf-8")?;
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?}"))
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("expected {word:?} at offset {}", self.i))
        }
    }
}

/// Which way a metric regresses, by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// Wall-clock time: new > old is worse.
    HigherWorse,
    /// Throughput/speedup rate: new < old is worse.
    LowerWorse,
    /// Context only — never gated.
    Info,
}

fn direction(key: &str) -> Direction {
    if key.contains("per_sec") || key.contains("speedup") {
        Direction::LowerWorse
    } else if key.ends_with("_ms") || key.ends_with("_us") || key.ends_with("_cycles") {
        Direction::HigherWorse
    } else {
        Direction::Info
    }
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct Delta {
    /// Slash-joined location (`runs/r2000/livermore_combined/phase_ms/strategy`).
    pub path: String,
    pub old: f64,
    pub new: f64,
    /// Signed percent change, `(new − old) / old × 100`.
    pub pct: f64,
    /// Past tolerance in the metric's worse direction.
    pub regressed: bool,
}

/// The full comparison result.
#[derive(Debug, Default)]
pub struct Report {
    pub deltas: Vec<Delta>,
    /// Structural mismatches: keys or runs present on one side only.
    pub warnings: Vec<String>,
}

impl Report {
    pub fn regressions(&self) -> Vec<&Delta> {
        self.deltas.iter().filter(|d| d.regressed).collect()
    }

    /// Human-readable rendering: every gated metric with its delta,
    /// regressions flagged, warnings at the end.
    pub fn render(&self, tolerance_pct: f64) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} metric(s) compared, tolerance {tolerance_pct}%",
            self.deltas.len()
        );
        for d in &self.deltas {
            let flag = if d.regressed {
                "REGRESSED"
            } else if d.pct.abs() < f64::EPSILON {
                "="
            } else {
                "ok"
            };
            let _ = writeln!(
                out,
                "  {:9} {}: {} -> {} ({:+.1}%)",
                flag, d.path, d.old, d.new, d.pct
            );
        }
        for w in &self.warnings {
            let _ = writeln!(out, "  warning: {w}");
        }
        let n = self.regressions().len();
        if n > 0 {
            let _ = writeln!(out, "{n} regression(s) past tolerance");
        } else {
            let _ = writeln!(out, "no regressions past tolerance");
        }
        out
    }
}

/// Compares two parsed bench documents.
pub fn compare(old: &Json, new: &Json, tolerance_pct: f64) -> Report {
    let mut report = Report::default();
    walk(old, new, "", tolerance_pct, &mut report);
    report
}

fn walk(old: &Json, new: &Json, path: &str, tol: f64, report: &mut Report) {
    match (old, new) {
        (Json::Obj(of), Json::Obj(_)) => {
            for (key, ov) in of {
                let sub = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}/{key}")
                };
                match new.get(key) {
                    Some(nv) => walk(ov, nv, &sub, tol, report),
                    None => report.warnings.push(format!("{sub}: missing in NEW")),
                }
            }
            if let Json::Obj(nf) = new {
                for (key, _) in nf {
                    if old.get(key).is_none() {
                        report
                            .warnings
                            .push(format!("{path}/{key}: missing in OLD"));
                    }
                }
            }
        }
        (Json::Arr(oa), Json::Arr(na)) => {
            for ov in oa {
                let id = ov.identity();
                let sub = if id.is_empty() {
                    path.to_string()
                } else {
                    format!("{path}/{id}")
                };
                match na.iter().find(|nv| nv.identity() == id) {
                    Some(nv) => walk(ov, nv, &sub, tol, report),
                    None => report.warnings.push(format!("{sub}: run missing in NEW")),
                }
            }
            for nv in na {
                let id = nv.identity();
                if !oa.iter().any(|ov| ov.identity() == id) {
                    report
                        .warnings
                        .push(format!("{path}/{id}: run missing in OLD"));
                }
            }
        }
        (Json::Num(o), Json::Num(n)) => {
            let mut segs = path.rsplit('/');
            let key = segs.next().unwrap_or(path);
            let mut dir = direction(key);
            // Phase maps name their unit on the *map* key
            // (`phase_ms: {strategy: …}`): inherit the parent's
            // direction for plain-named leaves.
            if dir == Direction::Info {
                if let Some(parent) = segs.next() {
                    if parent.ends_with("_ms") || parent.ends_with("_us") {
                        dir = Direction::HigherWorse;
                    }
                }
            }
            if dir == Direction::Info {
                return;
            }
            let pct = if *o != 0.0 {
                (n - o) / o * 100.0
            } else if *n == 0.0 {
                0.0
            } else {
                100.0
            };
            let regressed = match dir {
                Direction::HigherWorse => pct > tol,
                Direction::LowerWorse => pct < -tol,
                Direction::Info => false,
            };
            report.deltas.push(Delta {
                path: path.to_string(),
                old: *o,
                new: *n,
                pct,
                regressed,
            });
        }
        // Strings/bools/nulls are identity context; a changed machine
        // list or strategy label is a warning, not a perf delta.
        (o, n) if o != n => report
            .warnings
            .push(format!("{path}: value changed between files")),
        _ => {}
    }
}

/// Parses and compares two bench documents; the string is the printed
/// report. Exit-code contract: `Ok((report, 0))` within tolerance,
/// `Ok((report, 1))` when any metric regressed.
///
/// # Errors
///
/// Unparseable input (the caller exits 2).
pub fn run_diff(
    old_text: &str,
    new_text: &str,
    tolerance_pct: f64,
) -> Result<(String, i32), String> {
    let old = parse(old_text).map_err(|e| format!("OLD: {e}"))?;
    let new = parse(new_text).map_err(|e| format!("NEW: {e}"))?;
    let report = compare(&old, &new, tolerance_pct);
    let code = if report.regressions().is_empty() {
        0
    } else {
        1
    };
    Ok((report.render(tolerance_pct), code))
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{
      "bench": "compile",
      "runs": [
        {"machine": "r2000", "workload": "ll", "functions": 15,
         "functions_per_sec": 200.0,
         "phase_ms": {"select": 1.0, "strategy": 60.0}},
        {"machine": "i860", "workload": "ll", "functions": 15,
         "functions_per_sec": 100.0,
         "phase_ms": {"select": 2.0, "strategy": 90.0}}
      ]
    }"#;

    #[test]
    fn identical_files_exit_zero() {
        let (report, code) = run_diff(BASE, BASE, 5.0).unwrap();
        assert_eq!(code, 0);
        assert!(report.contains("no regressions"));
    }

    #[test]
    fn a_2x_time_regression_exits_nonzero() {
        let worse = BASE.replace("\"strategy\": 60.0", "\"strategy\": 120.0");
        let (report, code) = run_diff(BASE, &worse, 25.0).unwrap();
        assert_eq!(code, 1);
        assert!(report.contains("REGRESSED"));
        assert!(report.contains("r2000/ll/phase_ms/strategy"));
    }

    #[test]
    fn improvements_and_within_tolerance_changes_pass() {
        // Faster time and a small rate wobble inside tolerance.
        let better = BASE
            .replace("\"strategy\": 60.0", "\"strategy\": 30.0")
            .replace(
                "\"functions_per_sec\": 100.0",
                "\"functions_per_sec\": 98.0",
            );
        let (report, code) = run_diff(BASE, &better, 5.0).unwrap();
        assert_eq!(code, 0, "{report}");
    }

    #[test]
    fn a_rate_drop_past_tolerance_regresses() {
        let slower = BASE.replace(
            "\"functions_per_sec\": 200.0",
            "\"functions_per_sec\": 150.0",
        );
        let (_, code) = run_diff(BASE, &slower, 10.0).unwrap();
        assert_eq!(code, 1);
    }

    #[test]
    fn cycle_counts_gate_higher_is_worse() {
        // Quality-matrix keys: sim/est cycles gate exactly, while the
        // diagnostic columns (stalls, drift, utilization) stay Info.
        let base = r#"{
          "bench": "quality",
          "runs": [
            {"machine": "r2000", "strategy": "rase", "workload": "LL3",
             "sim_cycles": 1000, "est_cycles": 900, "critical_path": 700,
             "stall_total": 40, "drift_pct": 11.11}
          ]
        }"#;
        let worse = base.replace("\"sim_cycles\": 1000", "\"sim_cycles\": 1001");
        let (report, code) = run_diff(base, &worse, 0.0).unwrap();
        assert_eq!(code, 1, "{report}");
        assert!(report.contains("r2000/rase/LL3/sim_cycles"));
        // Non-cycle quality columns never gate, even at tolerance 0.
        let noisy = base
            .replace("\"stall_total\": 40", "\"stall_total\": 90")
            .replace("\"drift_pct\": 11.11", "\"drift_pct\": 44.44")
            .replace("\"critical_path\": 700", "\"critical_path\": 800");
        let (report, code) = run_diff(base, &noisy, 0.0).unwrap();
        assert_eq!(code, 0, "{report}");
        // A cycle improvement passes.
        let better = base.replace("\"est_cycles\": 900", "\"est_cycles\": 850");
        let (_, code) = run_diff(base, &better, 0.0).unwrap();
        assert_eq!(code, 0);
    }

    #[test]
    fn runs_match_by_identity_not_order() {
        let old = parse(BASE).unwrap();
        let swapped = r#"{
          "bench": "compile",
          "runs": [
            {"machine": "i860", "workload": "ll", "functions": 15,
             "functions_per_sec": 100.0,
             "phase_ms": {"select": 2.0, "strategy": 90.0}},
            {"machine": "r2000", "workload": "ll", "functions": 15,
             "functions_per_sec": 200.0,
             "phase_ms": {"select": 1.0, "strategy": 60.0}}
          ]
        }"#;
        let new = parse(swapped).unwrap();
        let report = compare(&old, &new, 5.0);
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);
        assert!(report.regressions().is_empty());
    }

    #[test]
    fn missing_runs_and_keys_warn() {
        let old = parse(BASE).unwrap();
        let trimmed = r#"{
          "bench": "compile",
          "runs": [
            {"machine": "r2000", "workload": "ll", "functions": 15,
             "functions_per_sec": 200.0,
             "phase_ms": {"select": 1.0}}
          ]
        }"#;
        let new = parse(trimmed).unwrap();
        let report = compare(&old, &new, 5.0);
        assert!(report
            .warnings
            .iter()
            .any(|w| w.contains("i860/ll") && w.contains("missing in NEW")));
        assert!(report
            .warnings
            .iter()
            .any(|w| w.contains("strategy") && w.contains("missing in NEW")));
    }

    #[test]
    fn malformed_input_is_an_error() {
        assert!(run_diff("{", BASE, 5.0).is_err());
        assert!(run_diff(BASE, "[1,", 5.0).is_err());
        assert!(parse("{\"a\":1} junk").is_err());
    }

    #[test]
    fn parser_handles_nesting_and_escapes() {
        let v = parse(r#"{"a":[1,2,{"b":"x\ny"}],"c":null,"d":true}"#).unwrap();
        let Json::Obj(fields) = &v else { panic!() };
        assert_eq!(fields.len(), 3);
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
    }
}
