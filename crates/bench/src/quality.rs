//! The codegen-quality matrix behind `marion-bench quality`.
//!
//! Sweeps every bundled machine × strategy × workload, assembling one
//! [`ProgramQuality`] per cell from a single compile-and-simulate
//! ([`crate::measure`]), and renders the matrix as
//! `BENCH_quality.json`. Cycle counts are deterministic — the
//! simulator has no noise sources — so the committed matrix is gated
//! *exactly* (`marion-bench diff --tolerance 0`): any kernel whose
//! sim-measured or estimated cycles regress fails CI.
//!
//! The same JSON feeds the `speedup` paper-table binary (per-machine
//! strategy speedups without re-measuring) and the HTML report's
//! "quality observatory" section.

use marion_core::quality::ProgramQuality;
use marion_core::StrategyKind;
use marion_sim::SimConfig;
use marion_workloads::Workload;
use std::fmt::Write as _;

/// One swept cell: the quality record plus its derived aggregates.
pub struct QualityRun {
    /// The assembled program-level record.
    pub quality: ProgramQuality,
}

/// The workloads of the full quality matrix: all fourteen Livermore
/// kernels plus the compute-intensive suite programs (everything but
/// the integer-branchy `lcc` stand-in) — the same set the paper's §5
/// speedup headline measures.
pub fn full_workloads() -> Vec<Workload> {
    let mut all = marion_workloads::livermore::kernels();
    all.extend(
        marion_workloads::suite::programs()
            .into_iter()
            .filter(|w| w.name != "lcc"),
    );
    all
}

/// The smoke subset (CI): the same four workloads the retargeting
/// fuzzer smokes with — `sphot` plus three short Livermore kernels.
pub fn smoke_workloads() -> Vec<Workload> {
    let keep = ["sphot", "LL1", "LL3", "LL5"];
    full_workloads()
        .into_iter()
        .filter(|w| keep.contains(&w.name.as_str()))
        .collect()
}

/// Sweeps `machines` × `StrategyKind::ALL` × `workloads` and returns
/// one verified run per cell, in deterministic order.
///
/// # Panics
///
/// Panics when a cell miscompiles, its checksum diverges from the IR
/// interpreter, or a quality invariant fails — the bench must never
/// write a matrix describing wrong code.
pub fn sweep(machines: &[&str], workloads: &[Workload]) -> Vec<QualityRun> {
    let config = SimConfig::default();
    let mut runs = Vec::new();
    for &machine in machines {
        let spec = marion_machines::load(machine);
        for w in workloads {
            for &strategy in &StrategyKind::ALL {
                let m = crate::measure(&spec, strategy, w, &config);
                crate::verify_against_interp(w, &m);
                let quality = ProgramQuality::assemble(
                    &m.program,
                    &w.name,
                    m.run.cycles,
                    m.run.nops_retired,
                    &m.run.block_counts,
                );
                // The record's weighted estimate must agree with the
                // simulator's own estimate accounting.
                assert_eq!(
                    quality.total().est_cycles,
                    m.estimated_cycles,
                    "{machine}/{}/{}: quality estimate disagrees with the simulator's",
                    strategy.name(),
                    w.name
                );
                quality
                    .validate()
                    .unwrap_or_else(|e| panic!("quality invariant: {e}"));
                runs.push(QualityRun { quality });
            }
        }
    }
    runs
}

/// Renders the matrix as the `BENCH_quality.json` document.
pub fn render_json(smoke: bool, machines: usize, workloads: usize, runs: &[QualityRun]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"quality\",");
    let _ = writeln!(s, "  \"smoke\": {smoke},");
    let _ = writeln!(s, "  \"machines\": {machines},");
    let _ = writeln!(s, "  \"strategies\": {},", StrategyKind::ALL.len());
    let _ = writeln!(s, "  \"workloads\": {workloads},");
    s.push_str("  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        let q = &run.quality;
        let t = q.total();
        s.push_str("    {");
        let _ = write!(
            s,
            "\"machine\": \"{}\", \"strategy\": \"{}\", \"workload\": \"{}\", ",
            q.machine, q.strategy, q.workload
        );
        let _ = write!(
            s,
            "\"sim_cycles\": {}, \"est_cycles\": {}, \"critical_path\": {}, ",
            q.sim_cycles, t.est_cycles, t.critical_path_cycles
        );
        let _ = write!(s, "\"drift_pct\": {:.2}, ", q.drift_pct());
        for (key, cycles) in t.stalls.as_pairs() {
            let _ = write!(s, "\"stall_{key}\": {cycles}, ");
        }
        let _ = write!(s, "\"stall_total\": {}, ", t.stalls.total());
        let _ = write!(
            s,
            "\"issue_utilization\": {:.4}, \"spills\": {}, \"nops_emitted\": {}, \
             \"nops_retired\": {}, \"delay_slots_filled\": {}, \"delay_slot_fill_rate\": {:.4}",
            t.issue_utilization(),
            t.spills,
            t.nops_emitted,
            q.nops_retired,
            t.delay_slots_filled,
            t.delay_slot_fill_rate()
        );
        s.push_str(if i + 1 < runs.len() { "},\n" } else { "}\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_on_toyp_is_valid_and_deterministic() {
        let workloads: Vec<Workload> = smoke_workloads()
            .into_iter()
            .filter(|w| w.name == "LL5")
            .collect();
        let a = sweep(&["toyp"], &workloads);
        let b = sweep(&["toyp"], &workloads);
        assert_eq!(a.len(), StrategyKind::ALL.len());
        let ja = render_json(true, 1, 1, &a);
        let jb = render_json(true, 1, 1, &b);
        assert_eq!(ja, jb, "quality matrix must be byte-deterministic");
        // The document parses with the diff reader and carries the
        // gated keys.
        let doc = crate::diff::parse(&ja).expect("valid json");
        let text = format!("{doc:?}");
        assert!(text.contains("sim_cycles"));
        assert!(text.contains("est_cycles"));
    }
}
