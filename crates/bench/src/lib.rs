//! # marion-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (§5):
//!
//! | binary   | reproduces |
//! |----------|------------|
//! | `table1` | Table 1 — Maril machine description statistics |
//! | `table2` | Table 2 — system source size by component |
//! | `table3` | Table 3 — compile time per strategy/target + dilation |
//! | `table4` | Table 4 — Livermore loops: exec time and actual/estimated |
//! | `fig7`   | Figure 7 — i860 dual-operation schedule for the sample fragment |
//! | `speedup`| §5 headline — RASE/IPS vs Postpass on compute-intensive code |
//!
//! This library holds the shared plumbing: compile a workload for a
//! machine/strategy pair, run it on the simulator, and lay out rows.

pub mod dagviz;
pub mod diff;
pub mod flame;
pub mod html;
pub mod quality;
pub mod serve;

use marion_core::{CompiledProgram, Compiler, StrategyKind};
use marion_machines::MachineSpec;
use marion_sim::{run_program, RunResult, SimConfig, Value};
use marion_workloads::Workload;
use std::time::{Duration, Instant};

/// A compiled-and-measured workload.
pub struct Measurement {
    /// The compiled program.
    pub program: CompiledProgram,
    /// Wall-clock time the back end took.
    pub compile_time: Duration,
    /// Simulation outcome.
    pub run: RunResult,
    /// Scheduler-estimated cycles for the same execution profile.
    pub estimated_cycles: u64,
}

/// Compiles `workload` for `spec` under `strategy` and runs it on the
/// simulator.
///
/// # Panics
///
/// Panics on compilation or simulation failure (bench binaries are
/// expected to run on the bundled, tested workloads).
pub fn measure(
    spec: &MachineSpec,
    strategy: StrategyKind,
    workload: &Workload,
    config: &SimConfig,
) -> Measurement {
    let module = workload.module();
    let compiler = Compiler::new(spec.machine.clone(), spec.escapes.clone(), strategy);
    let start = Instant::now();
    let program = compiler
        .compile_module(&module)
        .unwrap_or_else(|e| panic!("{} on {}: {e}", workload.name, spec.machine.name()));
    let compile_time = start.elapsed();
    let run = run_program(
        &spec.machine,
        &program,
        "main",
        &[],
        Some(marion_maril::Ty::Int),
        config,
    )
    .unwrap_or_else(|e| panic!("{} on {}: {e}", workload.name, spec.machine.name()));
    let estimated_cycles = marion_sim::run::estimated_cycles(&program, &run.block_counts);
    Measurement {
        program,
        compile_time,
        run,
        estimated_cycles,
    }
}

/// Verifies a measurement's checksum against the IR interpreter.
///
/// # Panics
///
/// Panics on a mismatch — a bench must never report timings for wrong
/// code.
pub fn verify_against_interp(workload: &Workload, m: &Measurement) {
    let module = workload.module();
    let mut interp = marion_ir::interp::Interp::new(&module, 1 << 22).with_budget(400_000_000);
    let expected = interp
        .call_by_name("main", &[])
        .unwrap_or_else(|e| panic!("{}: {e}", workload.name))
        .unwrap();
    let got = m.run.result.expect("result");
    match (expected, got) {
        (Value::I(a), Value::I(b)) if a == b => {}
        _ => panic!(
            "{}: checksum mismatch interp {expected:?} vs sim {got:?}",
            workload.name
        ),
    }
}

/// Geometric mean of a slice of positive numbers.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Prints a row of right-aligned columns under a fixed layout.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = *w))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn measure_small_kernel_on_r2000() {
        let spec = marion_machines::load("r2000");
        let kernels = marion_workloads::livermore::kernels();
        let ll12 = kernels.iter().find(|k| k.name == "LL12").unwrap();
        let m = measure(&spec, StrategyKind::Postpass, ll12, &SimConfig::default());
        verify_against_interp(ll12, &m);
        assert!(m.run.cycles > 0);
        assert!(m.estimated_cycles > 0);
        // Actual (with caches) must not be below the cache-free
        // schedule estimate by more than slack from optimistic block
        // estimates.
        let ratio = m.run.cycles as f64 / m.estimated_cycles as f64;
        assert!(ratio > 0.5 && ratio < 10.0, "implausible ratio {ratio}");
    }
}
