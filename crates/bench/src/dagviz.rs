//! Native layered SVG rendering of annotated code DAGs.
//!
//! The HTML report embeds per-block dependence DAGs without shelling
//! out to graphviz: nodes are layered by earliest start (the same
//! longest-path depth `dag_to_dot` annotates), laid out left-to-right
//! within a layer, and edges are drawn as straight lines styled by
//! dependence kind (solid true, thick temporal, dashed anti/output,
//! dotted memory/order) with the critical path in red — mirroring the
//! dot rendering's conventions. Pure markup only: `<rect>`, `<line>`,
//! `<polygon>` arrowheads, `<text>`, `<title>` tooltips; no scripts,
//! no links, no external assets.

use marion_core::dag::{CodeDag, EdgeKind};
use marion_core::explain::inst_label;
use marion_core::sched::Schedule;
use marion_core::CodeBlock;
use marion_maril::Machine;

fn esc(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

const NODE_W: f64 = 150.0;
const NODE_H: f64 = 34.0;
const H_GAP: f64 = 18.0;
const V_GAP: f64 = 46.0;
const MARGIN: f64 = 10.0;

/// Renders the DAG as a standalone inline SVG with schedule
/// annotations. Layering is by earliest start cycle (dependence
/// depth), so an edge always points downward or sideways-down.
pub fn dag_to_svg(
    machine: &Machine,
    block: &CodeBlock,
    dag: &CodeDag,
    schedule: &Schedule,
    title: &str,
) -> String {
    let ex = &schedule.explanation;
    let on_path = |i: usize| ex.slack.get(i).copied() == Some(0);
    // Layer by dependence depth: longest incoming path in edges (not
    // cycles), so layers are compact and arrows never point up.
    let mut layer = vec![0usize; dag.n];
    for i in topo(dag) {
        for &ei in &dag.succs[i] {
            let e = dag.edges[ei];
            layer[e.to] = layer[e.to].max(layer[i] + 1);
        }
    }
    let n_layers = layer.iter().copied().max().map_or(0, |m| m + 1);
    let mut rows: Vec<Vec<usize>> = vec![Vec::new(); n_layers];
    for (i, &l) in layer.iter().enumerate() {
        rows[l].push(i);
    }
    let widest = rows.iter().map(Vec::len).max().unwrap_or(0);
    let width = MARGIN * 2.0 + widest as f64 * (NODE_W + H_GAP) - H_GAP.min(1.0);
    let height = MARGIN * 2.0 + 20.0 + n_layers as f64 * (NODE_H + V_GAP) - V_GAP.min(1.0);

    // Node centers.
    let mut pos = vec![(0.0f64, 0.0f64); dag.n];
    for (l, row) in rows.iter().enumerate() {
        let row_w = row.len() as f64 * (NODE_W + H_GAP) - H_GAP;
        let x0 = (width - row_w) / 2.0;
        for (k, &i) in row.iter().enumerate() {
            pos[i] = (
                x0 + k as f64 * (NODE_W + H_GAP) + NODE_W / 2.0,
                MARGIN + 20.0 + l as f64 * (NODE_H + V_GAP) + NODE_H / 2.0,
            );
        }
    }

    let mut out = String::with_capacity(4 * 1024);
    out.push_str(&format!(
        "<svg viewBox=\"0 0 {width:.0} {height:.0}\" width=\"100%\" role=\"img\" \
         aria-label=\"{}\">\n",
        esc(title)
    ));
    out.push_str(
        "<defs><marker id=\"dagarrow\" viewBox=\"0 0 8 8\" refX=\"7\" refY=\"4\" \
         markerWidth=\"6\" markerHeight=\"6\" orient=\"auto\">\
         <path d=\"M0,0 L8,4 L0,8 z\" fill=\"#81a1c1\"/></marker>\
         <marker id=\"dagarrowcrit\" viewBox=\"0 0 8 8\" refX=\"7\" refY=\"4\" \
         markerWidth=\"6\" markerHeight=\"6\" orient=\"auto\">\
         <path d=\"M0,0 L8,4 L0,8 z\" fill=\"#bf616a\"/></marker></defs>\n",
    );
    out.push_str(&format!(
        "<text x=\"{MARGIN}\" y=\"16\" font-size=\"12\" fill=\"#d8dee9\" \
         font-family=\"monospace\">{}</text>\n",
        esc(title)
    ));

    // Edges first so nodes draw on top of line ends.
    for e in &dag.edges {
        let (x1, y1) = pos[e.from];
        let (x2, y2) = pos[e.to];
        let (y1, y2) = (y1 + NODE_H / 2.0, y2 - NODE_H / 2.0);
        let critical = on_path(e.from)
            && on_path(e.to)
            && ex
                .critical_path
                .windows(2)
                .any(|w| w[0] == e.from && w[1] == e.to);
        let (stroke, sw) = if critical {
            ("#bf616a", 2.0)
        } else {
            ("#81a1c1", 1.0)
        };
        let dash = match e.kind {
            EdgeKind::True | EdgeKind::TrueTemporal(_) => "",
            EdgeKind::Anti | EdgeKind::Output => " stroke-dasharray=\"6,3\"",
            EdgeKind::Mem | EdgeKind::Order => " stroke-dasharray=\"2,3\"",
        };
        let sw = if matches!(e.kind, EdgeKind::TrueTemporal(_)) {
            sw + 1.0
        } else {
            sw
        };
        let marker = if critical { "dagarrowcrit" } else { "dagarrow" };
        let kind = match e.kind {
            EdgeKind::True => "true".to_string(),
            EdgeKind::TrueTemporal(k) => format!(
                "temporal({})",
                machine
                    .clocks()
                    .get(k.0 as usize)
                    .map(String::as_str)
                    .unwrap_or("?")
            ),
            EdgeKind::Anti => "anti".to_string(),
            EdgeKind::Output => "output".to_string(),
            EdgeKind::Mem => "mem".to_string(),
            EdgeKind::Order => "order".to_string(),
        };
        out.push_str(&format!(
            "<line x1=\"{x1:.1}\" y1=\"{y1:.1}\" x2=\"{x2:.1}\" y2=\"{y2:.1}\" \
             stroke=\"{stroke}\" stroke-width=\"{sw}\"{dash} \
             marker-end=\"url(#{marker})\"><title>{} latency {}</title></line>\n",
            esc(&kind),
            e.latency
        ));
        if e.latency > 0 {
            out.push_str(&format!(
                "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"9\" fill=\"#616e88\" \
                 font-family=\"monospace\">{}</text>\n",
                (x1 + x2) / 2.0 + 3.0,
                (y1 + y2) / 2.0,
                e.latency
            ));
        }
    }

    for (i, &(cx, cy)) in pos.iter().enumerate().take(dag.n) {
        let (x, y) = (cx - NODE_W / 2.0, cy - NODE_H / 2.0);
        let cycle = schedule.inst_cycle.get(i).copied().unwrap_or(0);
        let (ready, slack) = (
            ex.records.get(i).map(|r| r.ready_cycle).unwrap_or(0),
            ex.slack.get(i).copied().unwrap_or(0),
        );
        let stalled = ex.records.get(i).is_some_and(|r| r.stall_cycles() > 0);
        let stroke = if on_path(i) { "#bf616a" } else { "#3b4252" };
        let sw = if on_path(i) { 2.0 } else { 1.0 };
        let fill = if stalled { "#4c3f2a" } else { "#242933" };
        let tooltip = match ex.records.get(i) {
            Some(r) if !r.stalls.is_empty() => r
                .stalls
                .iter()
                .map(|s| {
                    format!(
                        "{} cycle(s): {}",
                        s.cycles,
                        s.reason.describe(machine, block)
                    )
                })
                .collect::<Vec<_>>()
                .join("; "),
            _ => "no stalls".to_string(),
        };
        let label = inst_label(machine, block, i);
        let max_chars = (NODE_W / 6.2) as usize;
        let shown: String = label.chars().take(max_chars).collect();
        out.push_str(&format!(
            "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{NODE_W}\" height=\"{NODE_H}\" rx=\"4\" \
             fill=\"{fill}\" stroke=\"{stroke}\" stroke-width=\"{sw}\">\
             <title>[{i}] {}: {}</title></rect>\n",
            esc(&label),
            esc(&tooltip)
        ));
        out.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"10\" fill=\"#d8dee9\" \
             font-family=\"monospace\">[{i}] {}</text>\n",
            x + 5.0,
            y + 14.0,
            esc(&shown)
        ));
        out.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"9\" fill=\"#81a1c1\" \
             font-family=\"monospace\">@{cycle} ready {ready} slack {slack}</text>\n",
            x + 5.0,
            y + 27.0,
        ));
    }
    out.push_str("</svg>\n");
    out
}

/// Kahn topological order over the DAG (block DAGs are acyclic by
/// construction; ties resolve in node order, deterministically).
fn topo(dag: &CodeDag) -> Vec<usize> {
    let mut indeg: Vec<usize> = dag.preds.iter().map(Vec::len).collect();
    let mut order = Vec::with_capacity(dag.n);
    let mut ready: Vec<usize> = (0..dag.n).filter(|&i| indeg[i] == 0).collect();
    while let Some(i) = ready.pop() {
        order.push(i);
        for &ei in &dag.succs[i] {
            let to = dag.edges[ei].to;
            indeg[to] -= 1;
            if indeg[to] == 0 {
                ready.push(to);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use marion_core::dag::build_dag;
    use marion_core::sched::{schedule_block, SchedOptions};

    fn demo_pieces() -> (Machine, marion_core::CodeFunc) {
        let spec = marion_machines::load("r2000");
        let src = "int a[64]; int b[64];\n\
                   int main() {\n\
                   int i; int s = 0;\n\
                   for (i = 0; i < 64; i++) s = s + a[i] * b[i];\n\
                   return s;\n}\n";
        let mut module = marion_frontend::compile(src).expect("demo source compiles");
        marion_core::driver::materialize_float_constants(&mut module);
        let mut func = module.funcs[0].clone();
        marion_core::glue::apply_glue(&spec.machine, &mut func).unwrap();
        let mut code = marion_core::select_func(&spec.machine, &spec.escapes, &module, &func)
            .expect("selects");
        marion_core::regalloc::allocate(
            &spec.machine,
            &mut code,
            &std::collections::HashMap::new(),
        )
        .expect("allocates");
        (spec.machine, code)
    }

    #[test]
    fn svg_renders_every_node_and_edge_self_contained() {
        let (machine, code) = demo_pieces();
        let block = code
            .blocks
            .iter()
            .max_by_key(|b| b.insts.len())
            .expect("has blocks");
        let dag = build_dag(&machine, block, true);
        let schedule =
            schedule_block(&machine, &code, block, &dag, &SchedOptions::default()).unwrap();
        let svg = dag_to_svg(&machine, block, &dag, &schedule, "demo block");
        assert!(svg.starts_with("<svg ") && svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<rect ").count(), dag.n, "one rect per node");
        assert_eq!(
            svg.matches("<line ").count(),
            dag.edges.len(),
            "one line per edge"
        );
        assert!(!svg.contains("http:") && !svg.contains("https:"));
        assert!(!svg.contains("src=") && !svg.contains("href="));
        assert!(!svg.contains("<script"));
    }
}
