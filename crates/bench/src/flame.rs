//! Flame tree aggregation and pure-SVG flamegraph rendering.
//!
//! [`flame_tree`] folds the `prof` records of a merged [`TraceData`]
//! (emitted by `Tracer::mspan` / `Tracer::span` aggregation) into one
//! deterministic tree: paths are normalized (a leading
//! `compile_module` segment is dropped, so serial and parallel runs —
//! whose span nesting differs only by that module-level wrapper —
//! produce the same tree), duplicates are summed, and children are
//! kept name-sorted. Self time is computed structurally:
//! `self = total − Σ direct children totals`, which telescopes so the
//! self times of a subtree sum *exactly* to the subtree root's total.
//!
//! [`render_svg`] draws the tree as a self-contained SVG: `<rect>`,
//! `<text>` and `<title>` only — no JavaScript, no links, no external
//! assets — safe to inline into the HTML report.

use marion_trace::TraceData;

/// One node of the aggregated flame tree. Children are sorted by name.
#[derive(Debug, Clone, Default)]
pub struct FlameNode {
    pub name: String,
    pub count: u64,
    pub total_us: u64,
    pub children: Vec<FlameNode>,
}

impl FlameNode {
    /// Wall-clock microseconds not attributed to any child:
    /// `total − Σ direct children totals` (saturating; child totals
    /// can exceed the parent's by at most clock rounding).
    pub fn self_us(&self) -> u64 {
        let child: u64 = self.children.iter().map(|c| c.total_us).sum();
        self.total_us.saturating_sub(child)
    }

    /// Sum of [`FlameNode::self_us`] over this whole subtree. By the
    /// telescoping identity this equals `min(total_us, …)` — exactly
    /// `total_us` when no child over-reports its parent.
    pub fn self_sum(&self) -> u64 {
        self.self_us() + self.children.iter().map(|c| c.self_sum()).sum::<u64>()
    }

    /// Looks up a descendant by `/`-joined path relative to this node.
    pub fn find(&self, path: &str) -> Option<&FlameNode> {
        let mut cur = self;
        for seg in path.split('/') {
            cur = cur.children.iter().find(|c| c.name == seg)?;
        }
        Some(cur)
    }

    /// Deepest tree level, counting this node as 1.
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(|c| c.depth()).max().unwrap_or(0)
    }

    /// Canonical structural rendering: one `path count` line per node,
    /// depth-first. Timings are deliberately excluded — two runs of
    /// the same workload compare equal on this even though their
    /// microsecond figures differ.
    pub fn structure(&self) -> String {
        let mut out = String::new();
        for child in &self.children {
            child.structure_into("", &mut out);
        }
        out
    }

    fn structure_into(&self, prefix: &str, out: &mut String) {
        let path = if prefix.is_empty() {
            self.name.clone()
        } else {
            format!("{prefix}/{}", self.name)
        };
        out.push_str(&format!("{path} {}\n", self.count));
        for child in &self.children {
            child.structure_into(&path, out);
        }
    }

    fn insert(&mut self, segs: &[&str], count: u64, total_us: u64) {
        let Some((head, rest)) = segs.split_first() else {
            self.count += count;
            self.total_us += total_us;
            return;
        };
        let pos = match self
            .children
            .binary_search_by(|c| c.name.as_str().cmp(head))
        {
            Ok(i) => i,
            Err(i) => {
                self.children.insert(
                    i,
                    FlameNode {
                        name: (*head).to_string(),
                        ..FlameNode::default()
                    },
                );
                i
            }
        };
        self.children[pos].insert(rest, count, total_us);
    }
}

/// Builds the flame tree from a trace's `prof` records. The returned
/// root is synthetic (empty name); its `total_us` is the sum of the
/// top-level nodes so bar widths normalize against it.
pub fn flame_tree(data: &TraceData) -> FlameNode {
    let mut root = FlameNode::default();
    for (path, count, total_us, _child_us) in data.profs() {
        let mut segs: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        // Serial runs nest everything under the module-level span;
        // parallel runs trace functions on per-shard tracers without
        // it. Drop the wrapper so both shapes aggregate identically.
        if segs.first() == Some(&"compile_module") {
            segs.remove(0);
        }
        if segs.is_empty() {
            continue;
        }
        root.insert(&segs, count, total_us);
    }
    root.total_us = root.children.iter().map(|c| c.total_us).sum();
    root.count = root.children.iter().map(|c| c.count).sum();
    root
}

const ROW_H: u32 = 18;
const WIDTH: u32 = 1000;
const MIN_W: f64 = 0.5;

fn esc(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Deterministic warm hue per frame name (FNV-1a over the bytes).
fn hue(name: &str) -> u32 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    // Warm band: 0..60 degrees (red..yellow), like classic flamegraphs.
    (h % 60) as u32
}

/// Renders the flame tree as a standalone inline SVG. Pure markup:
/// rects, clipped labels and `<title>` tooltips; nothing that could
/// reference an external asset.
pub fn render_svg(root: &FlameNode, title: &str) -> String {
    let depth = root.depth().saturating_sub(1).max(1) as u32;
    let height = depth * ROW_H + 24;
    let mut out = String::with_capacity(8 * 1024);
    // No xmlns: the graphic is inlined into HTML, where the parser
    // namespaces `<svg>` automatically — and the namespace URI would
    // trip the report's "no http(s) tokens" self-containment check.
    out.push_str(&format!(
        "<svg viewBox=\"0 0 {WIDTH} {height}\" width=\"100%\" role=\"img\" aria-label=\"{}\">\n",
        esc(title)
    ));
    out.push_str(&format!(
        "<text x=\"4\" y=\"14\" font-size=\"12\" fill=\"#d8dee9\" \
         font-family=\"monospace\">{}</text>\n",
        esc(title)
    ));
    let grand = root.total_us.max(1) as f64;
    let mut x = 0.0f64;
    for child in &root.children {
        let w = child.total_us as f64 / grand * WIDTH as f64;
        render_node(&mut out, child, x, w, 0, grand);
        x += w;
    }
    out.push_str("</svg>\n");
    out
}

fn render_node(out: &mut String, node: &FlameNode, x: f64, w: f64, level: u32, grand: f64) {
    if w < MIN_W {
        return;
    }
    let y = 24 + level * ROW_H;
    let pct = node.total_us as f64 / grand * 100.0;
    out.push_str(&format!(
        "<rect x=\"{x:.2}\" y=\"{y}\" width=\"{w:.2}\" height=\"{}\" rx=\"1\" \
         fill=\"hsl({},70%,55%)\" stroke=\"#16181d\" stroke-width=\"0.5\">\
         <title>{}: {} us total, {} us self, {} call(s), {pct:.1}%</title></rect>\n",
        ROW_H - 1,
        hue(&node.name),
        esc(&node.name),
        node.total_us,
        node.self_us(),
        node.count,
    ));
    // Label only when the box can hold at least a few characters.
    if w >= 40.0 {
        let max_chars = (w / 6.5) as usize;
        let label: String = node.name.chars().take(max_chars).collect();
        out.push_str(&format!(
            "<text x=\"{:.2}\" y=\"{}\" font-size=\"10\" fill=\"#16181d\" \
             font-family=\"monospace\">{}</text>\n",
            x + 3.0,
            y + 13,
            esc(&label)
        ));
    }
    let mut cx = x;
    for child in &node.children {
        let cw = child.total_us as f64 / node.total_us.max(1) as f64 * w;
        render_node(out, child, cx, cw, level + 1, grand);
        cx += cw;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marion_trace::Record;

    fn data(rows: &[(&str, u64, u64, u64)]) -> TraceData {
        let mut d = TraceData::default();
        for (path, count, total_us, child_us) in rows {
            d.records.push(Record::Prof {
                path: (*path).to_string(),
                count: *count,
                total_us: *total_us,
                child_us: *child_us,
            });
        }
        d
    }

    #[test]
    fn tree_builds_with_exact_self_time_telescoping() {
        let d = data(&[
            ("compile_func", 2, 100, 90),
            ("compile_func/strategy", 2, 90, 65),
            ("compile_func/strategy/regalloc", 2, 40, 0),
            ("compile_func/strategy/sched:postpass", 2, 25, 0),
        ]);
        let tree = flame_tree(&d);
        let strategy = tree.find("compile_func/strategy").unwrap();
        assert_eq!(strategy.total_us, 90);
        assert_eq!(strategy.self_us(), 90 - 65);
        // Telescoping: subtree self times sum exactly to the root.
        assert_eq!(strategy.self_sum(), strategy.total_us);
        assert_eq!(tree.find("compile_func").unwrap().self_sum(), 100);
    }

    #[test]
    fn module_wrapper_is_normalized_away() {
        let serial = data(&[
            ("compile_module", 1, 500, 400),
            ("compile_module/compile_func", 3, 400, 0),
        ]);
        let parallel = data(&[("compile_module", 1, 500, 0), ("compile_func", 3, 400, 0)]);
        assert_eq!(
            flame_tree(&serial).structure(),
            flame_tree(&parallel).structure()
        );
        assert_eq!(flame_tree(&serial).structure(), "compile_func 3\n");
    }

    #[test]
    fn duplicate_paths_sum() {
        let d = data(&[("compile_func", 1, 10, 0), ("compile_func", 2, 30, 0)]);
        let tree = flame_tree(&d);
        let f = tree.find("compile_func").unwrap();
        assert_eq!((f.count, f.total_us), (3, 40));
    }

    #[test]
    fn svg_is_self_contained() {
        let d = data(&[
            ("compile_func", 2, 100, 90),
            ("compile_func/strategy", 2, 90, 0),
            ("compile_func/strategy/<evil> & \"co\"", 2, 60, 0),
        ]);
        let svg = render_svg(&flame_tree(&d), "flame <&>");
        assert!(svg.starts_with("<svg "));
        assert!(svg.ends_with("</svg>\n"));
        assert!(!svg.contains("http:") && !svg.contains("https:"));
        assert!(!svg.contains("src=") && !svg.contains("href="));
        assert!(!svg.contains("<script"));
        assert!(svg.contains("&lt;evil&gt; &amp; &quot;co&quot;"));
    }

    #[test]
    fn empty_trace_renders_an_empty_svg() {
        let tree = flame_tree(&TraceData::default());
        assert_eq!(tree.children.len(), 0);
        let svg = render_svg(&tree, "empty");
        assert!(svg.starts_with("<svg ") && svg.ends_with("</svg>\n"));
    }
}
