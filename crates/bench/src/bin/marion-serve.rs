//! `marion-serve` — the compile-service daemon.
//!
//! Accepts JSONL compile requests (see `marion_bench::serve` for the
//! protocol) on stdin, or on a TCP listener with `--listen`, and
//! streams JSONL responses back in request order. All modes share one
//! content-addressed compile cache, so repeated requests for the same
//! function are served without recompiling.
//!
//! ```text
//! echo '{"id":1,"machine":"r2000","strategy":"IPS","workload":"livermore"}' | marion-serve
//! marion-serve --listen 127.0.0.1:7777 --cache-disk /tmp/marion-cache.jsonl
//! ```

use marion_bench::serve::{parse_slos, run_stream, ServeConfig, Service};
use std::io::{BufReader, Write as _};
use std::num::NonZeroUsize;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "\
marion-serve — compile-service daemon (JSONL on stdin, or TCP with --listen)

USAGE:
    marion-serve [OPTIONS]

OPTIONS:
    --listen ADDR         serve TCP connections on ADDR instead of stdin
    --workers N           request worker threads        [default: available cores]
    --queue N             bounded request queue depth   [default: 64]
    --jobs N              per-compile worker threads    [default: 1]
    --cache-capacity N    max cached functions          [default: 4096]
    --cache-disk PATH     write-through JSONL cache store
    --no-cache            disable the compile cache

OBSERVABILITY:
    --access-log PATH     structured JSONL access log, one line per request
    --access-log-max-bytes N
                          rotate the access log to PATH.1 past N bytes
                                                        [default: 4194304]
    --slo SPEC            comma-separated objectives over the rolling
                          windows, e.g. p99_ms=50,error_rate=0.1%
    --tail N              keep the N slowest requests per window as
                          exemplar traces                [default: 4]
    --window-ms N         rolling time-series window width [default: 1000]
    --windows N           rolling windows retained         [default: 60]
    --no-exemplars        disable request tracing / tail sampling
    -h, --help            print this help

Request lines look like:
    {\"id\":1,\"machine\":\"r2000\",\"strategy\":\"IPS\",\"workload\":\"livermore\"}
    {\"id\":2,\"machine\":\"toyp\",\"strategy\":\"Postpass\",\"source\":\"int main(){return 7;}\",\"emit_asm\":1}
    {\"id\":3,\"cmd\":\"stats\"}      cache counters (hits/misses/evictions/disk load)
    {\"id\":4,\"cmd\":\"metrics\"}    latency histograms, windowed rates, SLO burn
    {\"id\":5,\"cmd\":\"machines\"}   machines, strategies, protocol/format versions
    {\"id\":6,\"cmd\":\"dashboard\"}  self-contained HTML dashboard in the response
    {\"id\":7,\"cmd\":\"shutdown\"}

Every response echoes a stable request_id (\"r1\", \"r2\", ...) that also
keys the access-log line for the same request.
";

struct Args {
    listen: Option<String>,
    workers: usize,
    queue: usize,
    config: ServeConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: None,
        workers: std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(4),
        queue: 64,
        config: ServeConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value (see --help)"))
        };
        match arg.as_str() {
            "--listen" => args.listen = Some(value("--listen")?),
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--queue" => {
                args.queue = value("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?
            }
            "--jobs" => {
                let n: usize = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                args.config.jobs = NonZeroUsize::new(n.max(1));
            }
            "--cache-capacity" => {
                args.config.cache_capacity = value("--cache-capacity")?
                    .parse()
                    .map_err(|e| format!("--cache-capacity: {e}"))?
            }
            "--cache-disk" => args.config.cache_disk = Some(value("--cache-disk")?.into()),
            "--no-cache" => args.config.cache = false,
            "--access-log" => args.config.access_log = Some(value("--access-log")?.into()),
            "--access-log-max-bytes" => {
                args.config.access_log_max_bytes = value("--access-log-max-bytes")?
                    .parse()
                    .map_err(|e| format!("--access-log-max-bytes: {e}"))?
            }
            "--slo" => {
                args.config.slos =
                    parse_slos(&value("--slo")?).map_err(|e| format!("--slo: {e}"))?
            }
            "--tail" => {
                args.config.tail_k = value("--tail")?
                    .parse()
                    .map_err(|e| format!("--tail: {e}"))?
            }
            "--window-ms" => {
                args.config.window_ms = value("--window-ms")?
                    .parse()
                    .map_err(|e| format!("--window-ms: {e}"))?
            }
            "--windows" => {
                args.config.windows = value("--windows")?
                    .parse()
                    .map_err(|e| format!("--windows: {e}"))?
            }
            "--no-exemplars" => args.config.exemplars = false,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("marion-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let service = match Service::new(&args.config) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("marion-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    match args.listen {
        None => {
            // Stdin mode: serve until EOF or a shutdown request,
            // draining everything queued before exiting.
            let stdin = std::io::stdin();
            match run_stream(
                &service,
                stdin.lock(),
                std::io::stdout(),
                args.workers,
                args.queue,
            ) {
                Ok(stats) => {
                    eprintln!(
                        "marion-serve: {} request(s), {} failure(s), cache {} hit(s) / {} miss(es)",
                        stats.requests, stats.failures, stats.cache_hits, stats.cache_misses
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("marion-serve: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some(addr) => {
            let listener = match std::net::TcpListener::bind(&addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("marion-serve: bind {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!("marion-serve: listening on {addr}");
            // One thread per connection; each connection gets the full
            // worker pool semantics over the shared service (and thus
            // the shared cache). A `shutdown` request ends only its
            // own connection.
            for stream in listener.incoming() {
                let stream = match stream {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("marion-serve: accept: {e}");
                        continue;
                    }
                };
                let service = service.clone();
                let workers = args.workers;
                let queue = args.queue;
                std::thread::spawn(move || {
                    let peer = stream
                        .peer_addr()
                        .map(|a| a.to_string())
                        .unwrap_or_else(|_| "?".to_string());
                    let reader = match stream.try_clone() {
                        Ok(r) => BufReader::new(r),
                        Err(e) => {
                            eprintln!("marion-serve: {peer}: {e}");
                            return;
                        }
                    };
                    let mut writer = stream;
                    match run_stream(&service, reader, &mut writer, workers, queue) {
                        Ok(stats) => eprintln!(
                            "marion-serve: {peer}: {} request(s), cache {} hit(s) / {} miss(es)",
                            stats.requests, stats.cache_hits, stats.cache_misses
                        ),
                        Err(e) => eprintln!("marion-serve: {peer}: {e}"),
                    }
                    let _ = writer.flush();
                });
            }
            ExitCode::SUCCESS
        }
    }
}
