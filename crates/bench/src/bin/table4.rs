//! Table 4 — Livermore Loops: execution time per strategy and the
//! ratio of actual to estimated execution time.
//!
//! The paper ran the Marion-compiled kernels on a 25 MHz DECstation
//! 5000 and compared against the schedulers' per-block cycle
//! estimates (which ignore cache misses). Here "actual" is the
//! pipeline simulator with its I/D caches enabled and "estimated" is
//! Σ block-estimate × execution count, exactly the paper's
//! construction. Expected shape: ratios slightly above 1.0 and
//! consistent across strategies for each loop; per-strategy times
//! close, with IPS/RASE never slower than Postpass on the FP-heavy
//! kernels.

use marion_bench::{geomean, measure, row, verify_against_interp};
use marion_core::StrategyKind;
use marion_sim::SimConfig;

fn main() {
    let machine = std::env::args().nth(1).unwrap_or_else(|| "r2000".into());
    let spec = marion_machines::load(&machine);
    let config = SimConfig::default();
    println!("Table 4: Livermore loops on {machine} — cycles per strategy and actual/estimated");
    println!("(paper: R2000 at 25MHz; ratios 0.99-1.15, consistent across strategies per loop)");
    println!();
    let widths = [5usize, 11, 11, 11, 7, 7, 7];
    println!(
        "{}",
        row(
            &[
                "Ker".into(),
                "Postp cyc".into(),
                "IPS cyc".into(),
                "RASE cyc".into(),
                "P a/e".into(),
                "I a/e".into(),
                "R a/e".into(),
            ],
            &widths
        )
    );
    let mut cyc = [Vec::new(), Vec::new(), Vec::new()];
    let mut ratios = [Vec::new(), Vec::new(), Vec::new()];
    for kernel in marion_workloads::livermore::kernels() {
        let mut cells = vec![kernel.name.clone()];
        let mut rcells = Vec::new();
        for (si, strategy) in StrategyKind::ALL.iter().enumerate() {
            let m = measure(&spec, *strategy, &kernel, &config);
            verify_against_interp(&kernel, &m);
            let ratio = m.run.cycles as f64 / m.estimated_cycles.max(1) as f64;
            cyc[si].push(m.run.cycles as f64);
            ratios[si].push(ratio);
            cells.push(m.run.cycles.to_string());
            rcells.push(format!("{ratio:.2}"));
        }
        cells.extend(rcells);
        println!("{}", row(&cells, &widths));
    }
    let mut mean = vec!["mean".to_string()];
    let mut rmean = Vec::new();
    for si in 0..3 {
        mean.push(format!("{:.0}", geomean(&cyc[si])));
        rmean.push(format!("{:.2}", geomean(&ratios[si])));
    }
    mean.extend(rmean);
    println!("{}", row(&mean, &widths));
}
