//! `marion-fuzz` — the retargeting fuzzer.
//!
//! Generates seeded machine descriptions with `marion-mdgen`, pushes
//! each through the real Maril front door, and runs the differential
//! audit: every workload × strategy is compiled with per-block
//! legality/provenance auditing, executed on the pipeline simulator,
//! and cross-checked against the IR reference interpreter, with one
//! rotating (workload, strategy) pair per machine double-compiled for
//! byte-identical reproducibility. Every passing run also records its
//! sim-measured and estimated cycles, and cross-strategy comparison
//! flags quality anomalies — a strategy drastically worse than the
//! best on the same workload, or estimate drift beyond any plausible
//! cache effect (`quality_anomalies` in the JSON; CI expects zero).
//!
//! ```text
//! marion-fuzz [--seed S] [--count N] [--smoke] [--out PATH] [--corpus DIR]
//! ```
//!
//! * `--seed S` base seed (default 0); machine k uses seed S+k.
//! * `--count N` machines to generate and audit (default 200).
//! * `--smoke` CI mode: 4 machines over the reduced workload subset,
//!   writing `BENCH_retarget_smoke.json`.
//! * `--out PATH` where the JSON record lands (default
//!   `BENCH_retarget.json`).
//! * `--corpus DIR` where minimised reproducers land (default
//!   `corpus/`).
//!
//! Any failure is minimised (machine knobs shrunk, then the workload
//! swapped for the simplest reproducing probe) and written into the
//! corpus directory as a replayable entry; the binary then exits 1.
//! Duplicate machine texts across seeds also fail the run — the
//! generator's value is breadth, and silent collapse would fake it.

use marion_mdgen::audit::{prepare_full_suite, prepare_smoke_suite};
use marion_mdgen::corpus::{write_entry, CorpusEntry};
use marion_mdgen::minimize::minimize;
use std::collections::HashSet;
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed: u64 = 0;
    let mut count: usize = 200;
    let mut count_given = false;
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut corpus_dir = "corpus".to_string();
    let mut i = 0;
    let value = |args: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("marion-fuzz: {flag} needs a value");
            std::process::exit(2);
        })
    };
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                let v = value(&args, &mut i, "--seed");
                seed = v.parse().unwrap_or_else(|e| {
                    eprintln!("marion-fuzz: bad --seed `{v}`: {e}");
                    std::process::exit(2);
                });
            }
            "--count" => {
                let v = value(&args, &mut i, "--count");
                count = v.parse().unwrap_or_else(|e| {
                    eprintln!("marion-fuzz: bad --count `{v}`: {e}");
                    std::process::exit(2);
                });
                count_given = true;
            }
            "--smoke" => smoke = true,
            "--out" => out = Some(value(&args, &mut i, "--out")),
            "--corpus" => corpus_dir = value(&args, &mut i, "--corpus"),
            "--help" | "-h" => {
                eprintln!(
                    "usage: marion-fuzz [--seed S] [--count N] [--smoke] \
                     [--out PATH] [--corpus DIR]"
                );
                std::process::exit(2);
            }
            other => {
                eprintln!("marion-fuzz: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if smoke && !count_given {
        count = 4;
    }
    let out = out.unwrap_or_else(|| {
        if smoke {
            "BENCH_retarget_smoke.json".to_string()
        } else {
            "BENCH_retarget.json".to_string()
        }
    });

    eprintln!(
        "marion-fuzz: {count} machines from seed {seed} ({} suite)",
        if smoke { "smoke" } else { "full" }
    );
    let workloads = if smoke {
        prepare_smoke_suite()
    } else {
        prepare_full_suite()
    };
    let escapes = marion_machines::toyp::escapes();

    let t0 = Instant::now();
    let mut distinct: HashSet<String> = HashSet::new();
    let mut blocks_audited = 0usize;
    let mut compilations = 0usize;
    let mut failing_machines = 0usize;
    let mut duplicate_machines = 0usize;
    let mut quality_runs = 0usize;
    let mut quality_anomalies = 0usize;
    let mut runs = String::new();
    for k in 0..count {
        let s = seed + k as u64;
        let gen = match marion_mdgen::generate(s) {
            Ok(g) => g,
            Err(e) => {
                // The generator's contract is that every seed emits a
                // description the front door accepts; a rejection is
                // itself a finding.
                eprintln!("seed {s}: front door rejected generated text: {e}");
                failing_machines += 1;
                continue;
            }
        };
        let is_new = distinct.insert(gen.text.clone());
        if !is_new {
            eprintln!(
                "seed {s}: duplicate of an earlier machine ({})",
                gen.config.summary()
            );
            duplicate_machines += 1;
        }
        let machine = match gen.machine() {
            Ok(m) => m,
            Err(e) => {
                eprintln!("seed {s}: canonical text failed to re-parse: {e}");
                failing_machines += 1;
                continue;
            }
        };
        let audit = marion_mdgen::audit_machine(&machine, &escapes, &workloads, k);
        blocks_audited += audit.blocks_audited;
        compilations += audit.compilations;
        // Cross-strategy quality differentials: correct-but-terrible
        // code (one strategy far worse than the best, or an estimate
        // implausibly far from the simulator) is a finding the
        // checksum can't see. Anomalies are reported, not failures:
        // they flag schedules for a human, the gate greps the count.
        let anomalies = audit.quality_anomalies();
        for a in &anomalies {
            eprintln!(
                "seed {s}: QUALITY {} {}: {}",
                a.workload,
                a.strategy.name(),
                a.detail
            );
        }
        quality_anomalies += anomalies.len();
        quality_runs += audit.quality.len();
        let status = if audit.passed() { "ok" } else { "fail" };
        if !runs.is_empty() {
            runs.push_str(",\n");
        }
        let _ = write!(
            runs,
            "    {{\"seed\": {s}, \"summary\": \"{}\", \"blocks_audited\": {}, \
             \"quality_runs\": {}, \"quality_anomalies\": {}, \"status\": \"{status}\"}}",
            gen.config.summary(),
            audit.blocks_audited,
            audit.quality.len(),
            anomalies.len()
        );
        if audit.passed() {
            if (k + 1) % 10 == 0 || k + 1 == count {
                eprintln!(
                    "  {}/{count} audited ({} blocks, {:.1}s)",
                    k + 1,
                    blocks_audited,
                    t0.elapsed().as_secs_f64()
                );
            }
            continue;
        }
        failing_machines += 1;
        for f in &audit.failures {
            eprintln!(
                "seed {s}: FAIL {} {} {}: {}",
                f.kind.tag(),
                f.workload,
                f.strategy.name(),
                f.detail
            );
        }
        // Minimise the first failure and drop it into the corpus.
        let f = &audit.failures[0];
        let entry = match workloads.iter().find(|w| w.name == f.workload) {
            Some(w) => {
                eprintln!("seed {s}: minimising…");
                let min = minimize(&gen, &escapes, w, f);
                eprintln!(
                    "seed {s}: minimised to `{}` on {} (steps: {:?})",
                    min.machine.config.summary(),
                    min.workload_name,
                    min.steps_applied
                );
                CorpusEntry::from_minimized(&min)
            }
            None => CorpusEntry {
                seed: s,
                kind: f.kind,
                strategy: f.strategy,
                workload: f.workload.clone(),
                summary: gen.config.summary(),
                detail: f.detail.replace('\n', " "),
                machine_text: gen.text.clone(),
                program: String::new(),
            },
        };
        match write_entry(Path::new(&corpus_dir), &entry) {
            Ok(path) => eprintln!("seed {s}: reproducer written to {}", path.display()),
            Err(e) => eprintln!("seed {s}: could not write reproducer: {e}"),
        }
    }

    let elapsed = t0.elapsed().as_secs_f64();
    let machines_per_sec = if elapsed > 0.0 {
        count as f64 / elapsed
    } else {
        0.0
    };
    let json = format!(
        "{{\n  \"bench\": \"retarget\",\n  \"seed\": {seed},\n  \"count\": {count},\n  \
         \"distinct_machines\": {},\n  \"duplicate_machines\": {duplicate_machines},\n  \
         \"workloads\": {},\n  \"strategies\": {},\n  \"compilations\": {compilations},\n  \
         \"blocks_audited\": {blocks_audited},\n  \"failing_machines\": {failing_machines},\n  \
         \"quality_runs\": {quality_runs},\n  \"quality_anomalies\": {quality_anomalies},\n  \
         \"elapsed_sec\": {elapsed:.1},\n  \"machines_per_sec\": {machines_per_sec:.3},\n  \
         \"runs\": [\n{runs}\n  ]\n}}\n",
        distinct.len(),
        workloads.len(),
        marion_core::StrategyKind::ALL.len(),
    );
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("marion-fuzz: cannot write {out}: {e}");
        std::process::exit(2);
    }
    eprintln!(
        "marion-fuzz: {} distinct machines, {compilations} compilations, \
         {blocks_audited} blocks audited in {elapsed:.1}s ({machines_per_sec:.3} machines/sec) -> {out}",
        distinct.len()
    );
    eprintln!(
        "marion-fuzz: {quality_runs} quality observations, \
         {quality_anomalies} cross-strategy anomalies"
    );
    if failing_machines > 0 || duplicate_machines > 0 {
        eprintln!(
            "marion-fuzz: {failing_machines} failing, {duplicate_machines} duplicate — \
             see {corpus_dir}/"
        );
        std::process::exit(1);
    }
    eprintln!("marion-fuzz: all machines passed the differential audit");
}
