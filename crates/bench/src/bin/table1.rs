//! Table 1 — Maril machine description statistics.
//!
//! The paper reports section sizes (in lines) and item counts for the
//! 88000, R2000 and i860 descriptions; TOYP is added for reference.
//! Shape to expect: only the i860 needs clocks, elements and classes;
//! the R2000 needs no auxiliary latencies; the i860's declare section
//! dwarfs the others.

use marion_machines::{load, ALL};

type StatRow = (
    &'static str,
    Box<dyn Fn(&marion_maril::DescriptionStats) -> usize>,
);

fn main() {
    println!("Table 1: Maril machine description statistics");
    println!("(paper reported 88000/R2000/i860: clocks 0/0/4, classes 0/0/67, aux 6/0/12)");
    println!();
    let specs: Vec<_> = ALL.iter().map(|n| load(n)).collect();
    let name_row: Vec<String> = std::iter::once("".to_string())
        .chain(specs.iter().map(|s| s.machine.name().to_string()))
        .collect();
    let widths = [16usize, 8, 8, 8, 8];
    println!("{}", marion_bench::row(&name_row, &widths));
    let rows: Vec<StatRow> = vec![
        ("Declare lines", Box::new(|s| s.declare_lines)),
        ("Cwvm lines", Box::new(|s| s.cwvm_lines)),
        ("Instr lines", Box::new(|s| s.instr_lines)),
        ("Instr dirs", Box::new(|s| s.instr_directives)),
        ("Clocks", Box::new(|s| s.clocks)),
        ("Elements", Box::new(|s| s.elements)),
        ("Classes", Box::new(|s| s.classes)),
        ("Aux lats", Box::new(|s| s.aux_lats)),
        ("Glue xforms", Box::new(|s| s.glue_xforms)),
        ("funcs", Box::new(|s| s.funcs)),
    ];
    for (label, get) in rows {
        let cells: Vec<String> = std::iter::once(label.to_string())
            .chain(specs.iter().map(|s| get(s.machine.stats()).to_string()))
            .collect();
        println!("{}", marion_bench::row(&cells, &widths));
    }
}
