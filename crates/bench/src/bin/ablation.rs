//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. **Scheduling itself** — Postpass vs the NoSched baseline
//!    (allocation + code-thread order). The gap is what list
//!    scheduling buys on each machine.
//! 2. **Auxiliary latencies** — compile with the `%aux` table removed
//!    and watch the actual/estimated ratio drift: the scheduler
//!    under-spaces producer/consumer pairs and the hardware stalls.
//! 3. **Caches** — run with caches disabled: actual cycles collapse
//!    toward the estimates, confirming where the Table 4 ratios above
//!    1.0 come from.

use marion_bench::{geomean, measure, row};
use marion_core::{
    dag::build_dag, regalloc::allocate, sched, select::select_func, Compiler, StrategyKind,
};
use marion_sim::{run_program, SimConfig};

fn main() {
    let kernels = marion_workloads::livermore::kernels();
    let subset: Vec<_> = kernels
        .iter()
        .filter(|k| {
            matches!(
                k.name.as_str(),
                "LL1" | "LL3" | "LL5" | "LL7" | "LL12" | "LL14"
            )
        })
        .cloned()
        .collect();
    let config = SimConfig::default();

    println!("Ablation 1: what does list scheduling buy? (geomean cycles, 6 kernels)");
    println!();
    let widths = [8usize, 12, 12, 12];
    println!(
        "{}",
        row(
            &[
                "machine".into(),
                "NoSched".into(),
                "Postpass".into(),
                "sched gain".into()
            ],
            &widths
        )
    );
    for machine in marion_machines::EXTENDED {
        let spec = marion_machines::load(machine);
        let mut unsched = Vec::new();
        let mut post = Vec::new();
        for k in &subset {
            unsched.push(
                measure(&spec, StrategyKind::NoSchedule, k, &config)
                    .run
                    .cycles as f64,
            );
            post.push(
                measure(&spec, StrategyKind::Postpass, k, &config)
                    .run
                    .cycles as f64,
            );
        }
        let (u, p) = (geomean(&unsched), geomean(&post));
        println!(
            "{}",
            row(
                &[
                    machine.into(),
                    format!("{u:.0}"),
                    format!("{p:.0}"),
                    format!("{:+.1}%", (u / p - 1.0) * 100.0),
                ],
                &widths
            )
        );
    }

    println!();
    println!("Ablation 2: %aux latencies on the 88000");
    println!("(compile blind to the pair latencies, run on hardware that has them;");
    println!(" on an interlocked in-order machine stalls can substitute for schedule");
    println!(" gaps, so the honest signal is the estimate drifting away from actual)");
    println!();
    let spec = marion_machines::load("m88k");
    let blind = spec.machine.without_aux();
    println!(
        "{}",
        row(
            &[
                "kernel".into(),
                "cycles Δ".into(),
                "a/e aware".into(),
                "a/e blind".into(),
            ],
            &[8, 10, 11, 11]
        )
    );
    for k in &subset {
        let aware = measure(&spec, StrategyKind::Postpass, k, &config);
        // Compile against the aux-less description, but execute on the
        // full machine (the template tables are identical, so the
        // program is portable between the two).
        let module = k.module();
        let compiler = Compiler::new(blind.clone(), spec.escapes.clone(), StrategyKind::Postpass);
        let program = compiler.compile_module(&module).unwrap();
        let run = run_program(
            &spec.machine,
            &program,
            "main",
            &[],
            Some(marion_maril::Ty::Int),
            &config,
        )
        .unwrap();
        let est_blind = marion_sim::run::estimated_cycles(&program, &run.block_counts);
        println!(
            "{}",
            row(
                &[
                    k.name.clone(),
                    format!(
                        "{:+.2}%",
                        (run.cycles as f64 / aware.run.cycles as f64 - 1.0) * 100.0
                    ),
                    format!(
                        "{:.3}",
                        aware.run.cycles as f64 / aware.estimated_cycles.max(1) as f64
                    ),
                    format!("{:.3}", run.cycles as f64 / est_blind.max(1) as f64),
                ],
                &[8, 10, 11, 11]
            )
        );
    }

    println!();
    println!("Ablation 3: caches and the Table 4 ratio (r2000, Postpass)");
    println!();
    let spec = marion_machines::load("r2000");
    println!(
        "{}",
        row(
            &["kernel".into(), "a/e cached".into(), "a/e no-cache".into()],
            &[8, 12, 14]
        )
    );
    for k in &subset {
        let cached = measure(&spec, StrategyKind::Postpass, k, &config);
        let module = k.module();
        let compiler = Compiler::new(
            spec.machine.clone(),
            spec.escapes.clone(),
            StrategyKind::Postpass,
        );
        let program = compiler.compile_module(&module).unwrap();
        let bare = run_program(
            &spec.machine,
            &program,
            "main",
            &[],
            Some(marion_maril::Ty::Int),
            &SimConfig::no_caches(),
        )
        .unwrap();
        let est_bare = marion_sim::run::estimated_cycles(&program, &bare.block_counts);
        println!(
            "{}",
            row(
                &[
                    k.name.clone(),
                    format!(
                        "{:.3}",
                        cached.run.cycles as f64 / cached.estimated_cycles.max(1) as f64
                    ),
                    format!("{:.3}", bare.cycles as f64 / est_bare.max(1) as f64),
                ],
                &[8, 12, 14]
            )
        );
    }
    println!();
    println!("Ablation 4: the IPS local-register limit (r2000, LL7)");
    println!("(the scheduling/allocation tension RASE exists to balance: a low");
    println!(" limit wastes parallelism, a high one inflates pressure and spills)");
    println!();
    let spec = marion_machines::load("r2000");
    let kernels = marion_workloads::livermore::kernels();
    let ll7 = kernels.iter().find(|k| k.name == "LL7").unwrap();
    println!(
        "{}",
        row(
            &["limit".into(), "prepass est".into(), "peak live".into()],
            &[6, 12, 10]
        )
    );
    let mut module = ll7.module();
    marion_core::driver::materialize_float_constants(&mut module);
    let f = module
        .funcs
        .iter()
        .find(|f| f.name == "main")
        .unwrap()
        .clone();
    let mut f = f;
    marion_core::glue::apply_glue(&spec.machine, &mut f).unwrap();
    let code = select_func(&spec.machine, &spec.escapes, &module, &f).unwrap();
    let _ = allocate; // (allocation not needed for the prepass sweep)
    for limit in [2usize, 4, 6, 8, 12, 16, 24] {
        let mut est = 0u64;
        let mut peak = 0usize;
        for block in &code.blocks {
            let dag = build_dag(&spec.machine, block, true);
            let s = sched::schedule_block(
                &spec.machine,
                &code,
                block,
                &dag,
                &sched::SchedOptions {
                    local_reg_limit: Some(limit),
                    ..Default::default()
                },
            )
            .unwrap();
            est += s.length as u64;
            peak = peak.max(s.peak_local_pressure);
        }
        println!(
            "{}",
            row(
                &[limit.to_string(), est.to_string(), peak.to_string()],
                &[6, 12, 10]
            )
        );
    }
}
