//! marion-report — aggregates JSONL pipeline traces (see
//! `marion_trace`) into the paper-style summary tables:
//!
//! * a per-phase wall-clock table (where compile time goes, Table 3's
//!   "Marion compilers are not fast" breakdown);
//! * a per-function summary of the static counters (instructions
//!   generated, spills, estimated cycles, delay slots, stalls — the
//!   Table 1 / Table 2 shape);
//! * every per-block reservation table (cycles × resource vector)
//!   recorded in the trace, with the scheduler's cycle-by-cycle
//!   stall narrative (`sched_explain`, when `TraceConfig::explanations`
//!   was on) rendered next to its table;
//! * compile-cache effectiveness (hits, misses, evictions) when the
//!   trace came from a cached compile.
//!
//! Usage:
//!
//! ```text
//! marion-report TRACE.jsonl [MORE.jsonl ...]
//! marion-report --demo [--jsonl OUT.jsonl]
//! marion-report --html [--out REPORT.html] [--serve METRICS.json] TRACE.jsonl ...
//! ```
//!
//! `--demo` compiles a Livermore kernel for the R2000 (IPS) and the
//! dual-issue i860 (Postpass) with tracing and reservation tables
//! enabled, then reports on the result; `--jsonl` additionally writes
//! the merged trace for re-aggregation. `--html` renders the same
//! aggregation as one self-contained HTML page (inline CSS, no
//! external assets — it opens offline from a `file:` URL) to stdout or
//! to `--out`; `--serve` folds one `metrics` response line from
//! `marion-serve` into the page as a request-latency section.

use marion_bench::{html::render_html, row};
use marion_core::{CompileOptions, Compiler, StrategyKind};
use marion_trace::json::parse_flat;
use marion_trace::{Record, TraceConfig, TraceData, Value};
use std::collections::BTreeMap;

fn usage() -> ! {
    eprintln!("usage: marion-report TRACE.jsonl [MORE.jsonl ...]");
    eprintln!("       marion-report --demo [--jsonl OUT.jsonl]");
    eprintln!("       marion-report --html [--out REPORT.html] [--serve METRICS.json] [--demo | TRACE.jsonl ...]");
    std::process::exit(2);
}

fn main() {
    let mut html = false;
    let mut demo_mode = false;
    let mut jsonl_out: Option<String> = None;
    let mut html_out: Option<String> = None;
    let mut serve_path: Option<String> = None;
    let mut traces: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("marion-report: {name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--html" => html = true,
            "--demo" => demo_mode = true,
            "--jsonl" => jsonl_out = Some(value("--jsonl")),
            "--out" => html_out = Some(value("--out")),
            "--serve" => serve_path = Some(value("--serve")),
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("marion-report: unknown flag `{other}`");
                usage()
            }
            path => traces.push(path.to_string()),
        }
    }
    if !demo_mode && traces.is_empty() {
        usage();
    }
    let data = if demo_mode {
        let data = demo();
        if let Some(path) = &jsonl_out {
            std::fs::write(path, data.to_jsonl()).unwrap_or_else(|e| {
                eprintln!("marion-report: cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {path}");
        }
        data
    } else {
        let parts: Vec<TraceData> = traces
            .iter()
            .map(|path| {
                let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                    eprintln!("marion-report: cannot read {path}: {e}");
                    std::process::exit(1);
                });
                TraceData::parse_jsonl(&text).unwrap_or_else(|e| {
                    eprintln!("marion-report: {path}: {e}");
                    std::process::exit(1);
                })
            })
            .collect();
        merge_traces(parts)
    };
    if !html {
        print!("{}", report(&data));
        return;
    }
    // `--serve` points at a file holding one `metrics` response line
    // (extra lines — e.g. a whole response stream — are scanned for
    // the first line carrying `service_buckets`).
    let serve_fields: Option<Vec<(String, Value)>> = serve_path.map(|path| {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("marion-report: cannot read {path}: {e}");
            std::process::exit(1);
        });
        text.lines()
            .filter_map(|line| parse_flat(line).ok())
            .find(|fields| fields.iter().any(|(k, _)| k == "service_buckets"))
            .unwrap_or_else(|| {
                eprintln!("marion-report: {path}: no `metrics` response line found");
                std::process::exit(1);
            })
    });
    let page = render_html(&data, serve_fields.as_deref());
    match html_out {
        Some(path) => {
            std::fs::write(&path, &page).unwrap_or_else(|e| {
                eprintln!("marion-report: cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {path}");
        }
        None => print!("{page}"),
    }
}

/// Merges any number of parsed trace files into one [`TraceData`].
/// Counters with the same `(ctx, name)` sum across files (per-file
/// runs over the same function accumulate, rather than the first
/// file's value shadowing the rest).
fn merge_traces(parts: Vec<TraceData>) -> TraceData {
    let mut data = TraceData::default();
    for part in parts {
        data.merge(part);
    }
    data
}

/// Compiles a kernel on a scalar and a dual-issue machine with full
/// tracing and returns the merged trace.
fn demo() -> TraceData {
    let kernels = marion_workloads::livermore::kernels();
    let ll7 = kernels
        .iter()
        .find(|k| k.name == "LL7")
        .expect("LL7 kernel");
    let module = ll7.module();
    let options = CompileOptions {
        trace: Some(TraceConfig {
            reservation_tables: true,
            explanations: true,
        }),
        ..CompileOptions::default()
    };
    let mut data = TraceData::default();
    for (machine, strategy) in [
        ("r2000", StrategyKind::Ips),
        ("i860", StrategyKind::Postpass),
    ] {
        let spec = marion_machines::load(machine);
        let compiler = Compiler::with_options(
            spec.machine.clone(),
            spec.escapes.clone(),
            strategy,
            options.clone(),
        );
        let program = compiler
            .compile_module(&module)
            .unwrap_or_else(|e| panic!("LL7 on {machine}: {e}"));
        data.merge(program.trace.expect("tracing was enabled"));
    }
    data
}

/// Renders the three summary tables from an aggregated trace.
fn report(data: &TraceData) -> String {
    let mut out = String::new();

    // ---- per-phase wall-clock ----
    let mut phases: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for r in &data.records {
        if let Record::Span { name, dur_us, .. } = r {
            let slot = phases.entry(name).or_insert((0, 0));
            slot.0 += dur_us;
            slot.1 += 1;
        }
    }
    if !phases.is_empty() {
        let widths = [24, 12, 8, 10];
        out.push_str("phase timing (wall clock)\n");
        out.push_str(&row(
            &[
                "phase".into(),
                "total us".into(),
                "spans".into(),
                "mean us".into(),
            ],
            &widths,
        ));
        out.push('\n');
        let mut rows: Vec<(&str, u64, u64)> =
            phases.into_iter().map(|(n, (t, c))| (n, t, c)).collect();
        rows.sort_by_key(|(_, t, _)| std::cmp::Reverse(*t));
        for (name, total, count) in rows {
            out.push_str(&row(
                &[
                    name.into(),
                    total.to_string(),
                    count.to_string(),
                    format!("{:.1}", total as f64 / count.max(1) as f64),
                ],
                &widths,
            ));
            out.push('\n');
        }
        out.push('\n');
    }

    // ---- per-function static counters ----
    let mut funcs: BTreeMap<&str, BTreeMap<&str, i64>> = BTreeMap::new();
    for r in &data.records {
        if let Record::Counter { name, ctx, value } = r {
            *funcs.entry(ctx).or_default().entry(name).or_insert(0) += value;
        }
    }
    if !funcs.is_empty() {
        let cols = [
            ("insts_generated", "insts"),
            ("spills", "spills"),
            ("estimated_cycles", "est cyc"),
            ("delay_slots_filled", "filled"),
            ("nops_emitted", "nops"),
            ("sched_stall_cycles", "stalls"),
            ("packed_words", "packed"),
            ("ra_rounds", "ra rnd"),
        ];
        let mut widths = vec![28usize];
        widths.extend(cols.iter().map(|(_, h)| h.len().max(7)));
        out.push_str("per-function summary\n");
        let mut header: Vec<String> = vec!["machine/function".into()];
        header.extend(cols.iter().map(|(_, h)| h.to_string()));
        out.push_str(&row(&header, &widths));
        out.push('\n');
        for (ctx, counters) in &funcs {
            let mut cells: Vec<String> = vec![(*ctx).into()];
            cells.extend(
                cols.iter()
                    .map(|(key, _)| counters.get(key).copied().unwrap_or(0).to_string()),
            );
            out.push_str(&row(&cells, &widths));
            out.push('\n');
        }
        out.push('\n');
    }

    // ---- issue-slot utilization (multi-issue machines) ----
    let mut any_util = false;
    for (ctx, counters) in &funcs {
        let slots = counters.get("issue_slots_used").copied().unwrap_or(0);
        let cycles = counters.get("issue_cycles").copied().unwrap_or(0);
        if cycles > 0 && slots > cycles {
            if !any_util {
                out.push_str("issue-slot utilization\n");
                any_util = true;
            }
            out.push_str(&format!(
                "  {ctx:<28} {:.2} sub-ops/word ({slots} ops in {cycles} words)\n",
                slots as f64 / cycles as f64
            ));
        }
    }
    if any_util {
        out.push('\n');
    }

    // ---- stall attribution (scheduler provenance histograms) ----
    let stall_cols = [
        ("stall_dependence", "depend"),
        ("stall_resource", "resrc"),
        ("stall_class", "class"),
        ("stall_temporal", "tempo"),
        ("stall_pressure", "press"),
        ("stall_order", "order"),
    ];
    let any_stalls = funcs.iter().any(|(_, counters)| {
        stall_cols
            .iter()
            .any(|(key, _)| counters.get(key).copied().unwrap_or(0) > 0)
    });
    if any_stalls {
        let mut widths = vec![28usize];
        widths.extend(stall_cols.iter().map(|(_, h)| h.len().max(7)));
        out.push_str("stall attribution (cycles waited, by reason)\n");
        let mut header: Vec<String> = vec!["machine/function".into()];
        header.extend(stall_cols.iter().map(|(_, h)| h.to_string()));
        out.push_str(&row(&header, &widths));
        out.push('\n');
        for (ctx, counters) in &funcs {
            if !stall_cols
                .iter()
                .any(|(key, _)| counters.get(key).copied().unwrap_or(0) > 0)
            {
                continue;
            }
            let mut cells: Vec<String> = vec![(*ctx).into()];
            cells.extend(
                stall_cols
                    .iter()
                    .map(|(key, _)| counters.get(key).copied().unwrap_or(0).to_string()),
            );
            out.push_str(&row(&cells, &widths));
            out.push('\n');
        }
        out.push('\n');
    }

    // ---- sample distributions + gauges ----
    let mut any_hist = false;
    for r in &data.records {
        if let Record::Hist { name, ctx, hist } = r {
            if !any_hist {
                out.push_str("sample distributions (log2 buckets)\n");
                any_hist = true;
            }
            out.push_str(&format!("  {ctx} \u{2014} {name}: {}\n", hist.summarize()));
        }
    }
    if any_hist {
        out.push('\n');
    }
    let mut any_gauge = false;
    for r in &data.records {
        if let Record::Gauge { name, ctx, value } = r {
            if !any_gauge {
                out.push_str("gauges (high-water)\n");
                any_gauge = true;
            }
            out.push_str(&format!("  {ctx} \u{2014} {name}: {value}\n"));
        }
    }
    if any_gauge {
        out.push('\n');
    }

    // ---- compile-cache effectiveness ----
    let cache_cols = [
        ("cache_hit", "hits"),
        ("cache_miss", "misses"),
        ("cache_evict", "evicted"),
    ];
    let mut cache_totals = [0i64; 3];
    for counters in funcs.values() {
        for (i, (key, _)) in cache_cols.iter().enumerate() {
            cache_totals[i] += counters.get(key).copied().unwrap_or(0);
        }
    }
    if cache_totals.iter().any(|&t| t > 0) {
        let mut widths = vec![28usize];
        widths.extend(cache_cols.iter().map(|(_, h)| h.len().max(7)));
        out.push_str("compile-cache effectiveness\n");
        let mut header: Vec<String> = vec!["machine/function".into()];
        header.extend(cache_cols.iter().map(|(_, h)| h.to_string()));
        out.push_str(&row(&header, &widths));
        out.push('\n');
        for (ctx, counters) in &funcs {
            if !cache_cols
                .iter()
                .any(|(key, _)| counters.get(key).copied().unwrap_or(0) > 0)
            {
                continue;
            }
            let mut cells: Vec<String> = vec![(*ctx).into()];
            cells.extend(
                cache_cols
                    .iter()
                    .map(|(key, _)| counters.get(key).copied().unwrap_or(0).to_string()),
            );
            out.push_str(&row(&cells, &widths));
            out.push('\n');
        }
        let lookups = cache_totals[0] + cache_totals[1];
        out.push_str(&format!(
            "  total: {} hit(s), {} miss(es), {} eviction(s) — {:.0}% hit rate\n\n",
            cache_totals[0],
            cache_totals[1],
            cache_totals[2],
            if lookups > 0 {
                cache_totals[0] as f64 * 100.0 / lookups as f64
            } else {
                0.0
            }
        ));
    }

    // ---- reservation tables, with scheduler narratives alongside ----
    let event_field = |fields: &[(String, marion_trace::Value)], name: &str| -> Option<String> {
        fields
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_str())
            .map(str::to_string)
    };
    // `(ctx, pass) -> narratives`, drained as tables consume them so
    // leftovers (explanations on, tables off) still render below.
    let mut narratives: BTreeMap<(String, String), Vec<String>> = BTreeMap::new();
    for (ctx, fields) in data.events_named("sched_explain") {
        let pass = event_field(fields, "pass").unwrap_or_else(|| "?".to_string());
        if let Some(text) = event_field(fields, "narrative") {
            narratives
                .entry((ctx.to_string(), pass))
                .or_default()
                .push(text);
        }
    }
    let indent = |out: &mut String, text: &str| {
        for line in text.lines() {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
    };
    let tables = data.events_named("reservation_table");
    if !tables.is_empty() {
        out.push_str("reservation tables (cycle x resource)\n");
        for (ctx, fields) in tables {
            let pass = event_field(fields, "pass").unwrap_or_else(|| "?".to_string());
            out.push_str(&format!("\n{ctx} [{pass}]\n"));
            if let Some(table) = event_field(fields, "table") {
                indent(&mut out, &table);
            }
            if let Some(texts) = narratives.remove(&(ctx.to_string(), pass)) {
                for text in texts {
                    out.push_str("  narrative:\n");
                    indent(&mut out, &text);
                }
            }
        }
        out.push('\n');
    }
    if !narratives.is_empty() {
        out.push_str("scheduler narratives\n");
        for ((ctx, pass), texts) in narratives {
            out.push_str(&format!("\n{ctx} [{pass}]\n"));
            for text in texts {
                indent(&mut out, &text);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use marion_trace::Tracer;

    fn trace_with(ctx: &str, insts: i64, stalls: i64) -> TraceData {
        let t = Tracer::new(TraceConfig::default());
        t.add(ctx, "insts_generated", insts);
        t.add(ctx, "stall_resource", stalls);
        t.finish().unwrap()
    }

    #[test]
    fn multiple_jsonl_files_merge_counters() {
        // Two trace files for the same machine/function, round-tripped
        // through JSONL exactly as main() does.
        let a = TraceData::parse_jsonl(&trace_with("m/f", 10, 2).to_jsonl()).unwrap();
        let b = TraceData::parse_jsonl(&trace_with("m/f", 5, 3).to_jsonl()).unwrap();
        let merged = merge_traces(vec![a, b]);
        // Before the merge fix, the first file's counter shadowed the
        // second (counter() returns the first match).
        assert_eq!(merged.counter("m/f", "insts_generated"), Some(15));
        assert_eq!(merged.counter("m/f", "stall_resource"), Some(5));
        let rendered = report(&merged);
        assert!(
            rendered.contains("15"),
            "summed count rendered:\n{rendered}"
        );
        assert!(
            rendered.contains("stall attribution"),
            "stall section rendered:\n{rendered}"
        );
    }

    #[test]
    fn narratives_render_next_to_their_reservation_tables() {
        use marion_trace::Value;
        let t = Tracer::new(TraceConfig {
            reservation_tables: true,
            explanations: true,
        });
        t.event(
            "m/f/b0",
            "reservation_table",
            &[
                ("pass", Value::from("final")),
                ("table", Value::from("cyc0 ALU\ncyc1 MEM")),
            ],
        );
        t.event(
            "m/f/b0",
            "sched_explain",
            &[
                ("pass", Value::from("final")),
                ("narrative", Value::from("cycle 1: stalled on load latency")),
            ],
        );
        // A narrative with no matching table lands in its own section.
        t.event(
            "m/f/b1",
            "sched_explain",
            &[
                ("pass", Value::from("final")),
                ("narrative", Value::from("no stalls")),
            ],
        );
        let rendered = report(&t.finish().unwrap());
        let table_at = rendered.find("cyc0 ALU").expect("table rendered");
        let narrative_at = rendered
            .find("stalled on load latency")
            .expect("narrative rendered");
        assert!(
            narrative_at > table_at,
            "narrative follows its table:\n{rendered}"
        );
        assert!(
            rendered.contains("scheduler narratives"),
            "unpaired narrative gets its own section:\n{rendered}"
        );
        assert!(rendered.contains("no stalls"));
    }

    #[test]
    fn cache_counters_render_an_effectiveness_section() {
        let t = Tracer::new(TraceConfig::default());
        t.add("m/f1", "cache_hit", 1);
        t.add("m/f2", "cache_miss", 1);
        t.add("m/f2", "insts_generated", 12);
        let rendered = report(&t.finish().unwrap());
        assert!(
            rendered.contains("compile-cache effectiveness"),
            "{rendered}"
        );
        assert!(
            rendered.contains("total: 1 hit(s), 1 miss(es), 0 eviction(s) — 50% hit rate"),
            "{rendered}"
        );
    }

    #[test]
    fn traces_without_cache_counters_skip_the_cache_section() {
        let rendered = report(&trace_with("m/f", 3, 0));
        assert!(!rendered.contains("compile-cache"), "{rendered}");
    }

    #[test]
    fn distinct_functions_stay_separate_rows() {
        let a = trace_with("m/f1", 7, 0);
        let b = trace_with("m/f2", 9, 0);
        let merged = merge_traces(vec![a, b]);
        assert_eq!(merged.counter("m/f1", "insts_generated"), Some(7));
        assert_eq!(merged.counter("m/f2", "insts_generated"), Some(9));
        let rendered = report(&merged);
        assert!(rendered.contains("m/f1"));
        assert!(rendered.contains("m/f2"));
    }
}
