//! marion-report — aggregates JSONL pipeline traces (see
//! `marion_trace`) into the paper-style summary tables:
//!
//! * a per-phase wall-clock table (where compile time goes, Table 3's
//!   "Marion compilers are not fast" breakdown);
//! * a per-function summary of the static counters (instructions
//!   generated, spills, estimated cycles, delay slots, stalls — the
//!   Table 1 / Table 2 shape);
//! * every per-block reservation table (cycles × resource vector)
//!   recorded in the trace, with the scheduler's cycle-by-cycle
//!   stall narrative (`sched_explain`, when `TraceConfig::explanations`
//!   was on) rendered next to its table;
//! * compile-cache effectiveness (hits, misses, evictions) when the
//!   trace came from a cached compile.
//!
//! Usage:
//!
//! ```text
//! marion-report TRACE.jsonl [MORE.jsonl ...]
//! marion-report --demo [--jsonl OUT.jsonl]
//! marion-report --html [--out REPORT.html] [--serve METRICS.json] TRACE.jsonl ...
//! ```
//!
//! `--demo` compiles a Livermore kernel for the R2000 (IPS) and the
//! dual-issue i860 (Postpass) with tracing and reservation tables
//! enabled, then reports on the result; `--jsonl` additionally writes
//! the merged trace for re-aggregation. `--html` renders the same
//! aggregation as one self-contained HTML page (inline CSS, no
//! external assets — it opens offline from a `file:` URL) to stdout or
//! to `--out`; `--serve` folds one `metrics` response line from
//! `marion-serve` into the page as a request-latency section;
//! `--quality` folds a `BENCH_quality.json` matrix in as the
//! quality-observatory section (cycle heatmap, stall composition,
//! estimate drift, Livermore speedups).
//!
//! Two service-side modes operate on `marion-serve` responses instead
//! of traces:
//!
//! ```text
//! marion-report --check-slo METRICS.jsonl
//! marion-report --dashboard RESPONSES.jsonl [--out DASH.html]
//! ```
//!
//! `--check-slo` scans the file for the first `metrics` response line
//! carrying SLO fields and exits 0 when every objective holds, 1 when
//! any is violated (for CI gates), 2 when the file is unreadable or
//! carries no SLO fields. `--dashboard` extracts the self-contained
//! HTML payload from a `dashboard` response line and writes it out.
//!
//! Exit codes everywhere: 0 success, 1 a report/check failed (SLO
//! violated, output unwritable), 2 the input was unusable (unreadable
//! or truncated trace file, bad flags, missing fields).

use marion_bench::serve::check_slo_fields;
use marion_bench::{html::render_html_with, row};
use marion_core::{CompileOptions, Compiler, StrategyKind};
use marion_trace::json::parse_flat;
use marion_trace::{Record, TraceConfig, TraceData, Value};
use std::collections::{BTreeMap, BTreeSet};

fn usage() -> ! {
    eprintln!("usage: marion-report TRACE.jsonl [MORE.jsonl ...]");
    eprintln!("       marion-report --demo [--jsonl OUT.jsonl]");
    eprintln!("       marion-report --html [--out REPORT.html] [--serve METRICS.json] [--bench-diff OLD.json NEW.json] [--retarget RETARGET.json] [--quality QUALITY.json] [--demo | TRACE.jsonl ...]");
    eprintln!("       marion-report --check-slo METRICS.jsonl       exit 1 if any SLO is violated");
    eprintln!("       marion-report --dashboard RESP.jsonl [--out DASH.html]");
    std::process::exit(2);
}

/// Reads a file or exits 2 — unreadable input is an environment
/// problem, distinct from a failed report (exit 1).
fn read_or_die(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("marion-report: cannot read {path}: {e}");
        std::process::exit(2);
    })
}

/// `--check-slo`: find the first `metrics` line with SLO fields and
/// report each objective's verdict. Exit 0 all met, 1 any violated,
/// 2 no usable metrics line.
fn check_slo(path: &str) -> ! {
    let text = read_or_die(path);
    let fields = text
        .lines()
        .filter_map(|line| parse_flat(line).ok())
        .find(|fields| fields.iter().any(|(k, _)| k == "slo_count"))
        .unwrap_or_else(|| {
            eprintln!("marion-report: {path}: no metrics line with SLO fields found");
            std::process::exit(2);
        });
    let violated = check_slo_fields(&fields).unwrap_or_else(|e| {
        eprintln!("marion-report: {path}: {e}");
        std::process::exit(2);
    });
    // Per-objective summary: every `slo_<name>_violated` key, with its
    // sibling budget/burn fields when present.
    let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    for (key, _) in &fields {
        let Some(name) = key
            .strip_prefix("slo_")
            .and_then(|rest| rest.strip_suffix("_violated"))
        else {
            continue;
        };
        let verdict = if violated.iter().any(|v| v == name) {
            "VIOLATED"
        } else {
            "ok"
        };
        let detail = |suffix: &str| {
            get(&format!("slo_{name}_{suffix}"))
                .map(|v| match v {
                    Value::Int(i) => format!(" {suffix}={i}"),
                    Value::Float(f) => format!(" {suffix}={f:.4}"),
                    Value::Str(s) => format!(" {suffix}={s}"),
                })
                .unwrap_or_default()
        };
        println!(
            "slo {name}: {verdict}{}{}",
            detail("budget_used"),
            detail("burn_rate")
        );
    }
    if violated.is_empty() {
        println!("all SLOs met");
        std::process::exit(0);
    }
    eprintln!("marion-report: {} SLO(s) violated", violated.len());
    std::process::exit(1);
}

/// `--dashboard`: extract the self-contained HTML payload from the
/// first `dashboard` response line in the file.
fn extract_dashboard(path: &str, out: Option<&str>) -> ! {
    let text = read_or_die(path);
    let html = text
        .lines()
        .filter_map(|line| parse_flat(line).ok())
        .find_map(|fields| {
            fields.into_iter().find_map(|(k, v)| {
                (k == "html")
                    .then(|| v.as_str().map(str::to_string))
                    .flatten()
            })
        })
        .unwrap_or_else(|| {
            eprintln!("marion-report: {path}: no `dashboard` response line with an html field");
            std::process::exit(2);
        });
    match out {
        Some(out_path) => {
            std::fs::write(out_path, &html).unwrap_or_else(|e| {
                eprintln!("marion-report: cannot write {out_path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {out_path}");
        }
        None => print!("{html}"),
    }
    std::process::exit(0);
}

fn main() {
    let mut html = false;
    let mut demo_mode = false;
    let mut jsonl_out: Option<String> = None;
    let mut html_out: Option<String> = None;
    let mut serve_path: Option<String> = None;
    let mut check_slo_path: Option<String> = None;
    let mut dashboard_path: Option<String> = None;
    let mut bench_diff: Option<(String, String)> = None;
    let mut retarget_path: Option<String> = None;
    let mut quality_path: Option<String> = None;
    let mut traces: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("marion-report: {name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--html" => html = true,
            "--demo" => demo_mode = true,
            "--jsonl" => jsonl_out = Some(value("--jsonl")),
            "--out" => html_out = Some(value("--out")),
            "--serve" => serve_path = Some(value("--serve")),
            "--check-slo" => check_slo_path = Some(value("--check-slo")),
            "--dashboard" => dashboard_path = Some(value("--dashboard")),
            "--bench-diff" => {
                let old = value("--bench-diff");
                let new = value("--bench-diff");
                bench_diff = Some((old, new));
            }
            "--retarget" => retarget_path = Some(value("--retarget")),
            "--quality" => quality_path = Some(value("--quality")),
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("marion-report: unknown flag `{other}`");
                usage()
            }
            path => traces.push(path.to_string()),
        }
    }
    if let Some(path) = check_slo_path {
        check_slo(&path);
    }
    if let Some(path) = dashboard_path {
        extract_dashboard(&path, html_out.as_deref());
    }
    if !demo_mode
        && traces.is_empty()
        && bench_diff.is_none()
        && retarget_path.is_none()
        && quality_path.is_none()
    {
        usage();
    }
    let data = if !demo_mode && traces.is_empty() {
        // `--bench-diff` alone: a page holding just the before/after
        // subphase table, no trace-derived sections.
        TraceData::default()
    } else if demo_mode {
        let data = demo();
        if let Some(path) = &jsonl_out {
            std::fs::write(path, data.to_jsonl()).unwrap_or_else(|e| {
                eprintln!("marion-report: cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {path}");
        }
        data
    } else {
        let parts: Vec<(String, TraceData)> = traces
            .iter()
            .map(|path| {
                let text = read_or_die(path);
                // A truncated or corrupt trace is an unusable input
                // (exit 2), not a failed report.
                let data = TraceData::parse_jsonl(&text).unwrap_or_else(|e| {
                    eprintln!(
                        "marion-report: {path}: unreadable trace (truncated or not \
                         marion_trace JSONL): {e}"
                    );
                    std::process::exit(2);
                });
                (path.clone(), data)
            })
            .collect();
        for warning in mismatch_warnings(&parts) {
            eprintln!("marion-report: warning: {warning}");
        }
        merge_traces(parts.into_iter().map(|(_, d)| d).collect())
    };
    if !html {
        print!("{}", report(&data));
        return;
    }
    // `--serve` points at a file holding one `metrics` response line
    // (extra lines — e.g. a whole response stream — are scanned for
    // the first line carrying `service_buckets`).
    let serve_fields: Option<Vec<(String, Value)>> = serve_path.map(|path| {
        let text = read_or_die(&path);
        text.lines()
            .filter_map(|line| parse_flat(line).ok())
            .find(|fields| fields.iter().any(|(k, _)| k == "service_buckets"))
            .unwrap_or_else(|| {
                eprintln!("marion-report: {path}: no `metrics` response line found");
                std::process::exit(2);
            })
    });
    // In demo mode the source is on hand, so the page also embeds
    // per-function dependence-DAG renderings (native SVG, no
    // graphviz) next to the trace-derived sections.
    let mut extra_svg = if demo_mode {
        demo_dag_svgs()
    } else {
        Vec::new()
    };
    // `--bench-diff OLD.json NEW.json`: a before/after table of
    // strategy-subphase self-times from two BENCH_compile.json files.
    if let Some((old_path, new_path)) = &bench_diff {
        let table =
            marion_bench::html::subphase_diff_table(&read_or_die(old_path), &read_or_die(new_path))
                .unwrap_or_else(|e| {
                    eprintln!("marion-report: --bench-diff: {e}");
                    std::process::exit(2);
                });
        extra_svg.push((
            "Strategy subphase self-time \u{2014} before vs after".to_string(),
            table,
        ));
    }
    // `--retarget BENCH_retarget.json`: the marion-fuzz audit-coverage
    // summary (generated machines, differential-audit verdicts).
    if let Some(path) = &retarget_path {
        let section =
            marion_bench::html::retarget_section(&read_or_die(path)).unwrap_or_else(|e| {
                eprintln!("marion-report: --retarget: {e}");
                std::process::exit(2);
            });
        extra_svg.push(("Retargeting fuzz audit".to_string(), section));
    }
    // `--quality BENCH_quality.json`: the codegen-quality observatory
    // (cycle heatmap, stall composition, drift, Livermore speedups).
    if let Some(path) = &quality_path {
        let section = marion_bench::html::quality_section(&read_or_die(path)).unwrap_or_else(|e| {
            eprintln!("marion-report: --quality: {e}");
            std::process::exit(2);
        });
        extra_svg.push(("Quality observatory".to_string(), section));
    }
    let page = render_html_with(&data, serve_fields.as_deref(), &extra_svg);
    match html_out {
        Some(path) => {
            std::fs::write(&path, &page).unwrap_or_else(|e| {
                eprintln!("marion-report: cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {path}");
        }
        None => print!("{page}"),
    }
}

/// Merges any number of parsed trace files into one [`TraceData`].
/// Counters with the same `(ctx, name)` sum across files (per-file
/// runs over the same function accumulate, rather than the first
/// file's value shadowing the rest).
fn merge_traces(parts: Vec<TraceData>) -> TraceData {
    let mut data = TraceData::default();
    for part in parts {
        data.merge(part);
    }
    data
}

/// `(machines, scheduling passes)` seen in one trace file: machine
/// names are the first `/`-segment of record contexts; passes come
/// from `sched_block` event labels plus `sched:*` span names. This is
/// the identity a merge must agree on — summing counters from a
/// `r2000` trace into an `i860` one, or IPS passes into Postpass
/// ones, produces a nonsense flame tree.
fn trace_signature(data: &TraceData) -> (BTreeSet<String>, BTreeSet<String>) {
    let mut machines = BTreeSet::new();
    let mut passes = BTreeSet::new();
    let mut ctx_machine = |ctx: &str| {
        let first = ctx.split('/').next().unwrap_or(ctx);
        if !first.is_empty() {
            machines.insert(first.to_string());
        }
    };
    for r in &data.records {
        match r {
            Record::Counter { ctx, .. }
            | Record::Gauge { ctx, .. }
            | Record::Hist { ctx, .. }
            | Record::Event { ctx, .. } => ctx_machine(ctx),
            Record::Span { name, ctx, .. } => {
                ctx_machine(ctx);
                if name.starts_with("sched:") {
                    passes.insert(name.clone());
                }
            }
            Record::Prof { .. } => {}
        }
    }
    for (_, fields) in data.events_named("sched_block") {
        if let Some(pass) = fields
            .iter()
            .find(|(k, _)| k == "pass")
            .and_then(|(_, v)| v.as_str())
        {
            passes.insert(pass.to_string());
        }
    }
    (machines, passes)
}

/// Mismatched machine or strategy sets between trace files about to
/// be merged. The merge still happens — summing is sometimes wanted —
/// but silently producing a blended flame tree is not.
fn mismatch_warnings(parts: &[(String, TraceData)]) -> Vec<String> {
    let mut warnings = Vec::new();
    let Some(((first_path, first_data), rest)) = parts.split_first() else {
        return warnings;
    };
    let (machines0, passes0) = trace_signature(first_data);
    for (path, data) in rest {
        let (machines, passes) = trace_signature(data);
        if machines != machines0 && !machines.is_empty() && !machines0.is_empty() {
            warnings.push(format!(
                "{path} traces machines {machines:?} but {first_path} traces {machines0:?}; \
                 merged totals mix different targets"
            ));
        }
        if passes != passes0 && !passes.is_empty() && !passes0.is_empty() {
            warnings.push(format!(
                "{path} carries strategy passes {passes:?} but {first_path} carries \
                 {passes0:?}; merged totals mix different strategies"
            ));
        }
    }
    warnings
}

/// Native-SVG dependence DAGs for the demo workload: the largest
/// block of each LL7 function on the R2000, scheduled with the same
/// robust ladder the strategies use.
fn demo_dag_svgs() -> Vec<(String, String)> {
    let kernels = marion_workloads::livermore::kernels();
    let ll7 = kernels.iter().find(|k| k.name == "LL7").expect("LL7");
    let mut module = ll7.module();
    marion_core::driver::materialize_float_constants(&mut module);
    let spec = marion_machines::load("r2000");
    let machine = &spec.machine;
    let mut out = Vec::new();
    for f in &module.funcs {
        let mut f = f.clone();
        if marion_core::glue::apply_glue(machine, &mut f).is_err() {
            continue;
        }
        let Ok(mut code) = marion_core::select_func(machine, &spec.escapes, &module, &f) else {
            continue;
        };
        if marion_core::regalloc::allocate(machine, &mut code, &std::collections::HashMap::new())
            .is_err()
        {
            continue;
        }
        let Some((bi, block)) = code
            .blocks
            .iter()
            .enumerate()
            .max_by_key(|(_, b)| b.insts.len())
        else {
            continue;
        };
        if block.insts.is_empty() {
            continue;
        }
        let (schedule, discipline) = marion_core::sched::schedule_block_robust(
            machine,
            &code,
            block,
            &marion_core::sched::SchedOptions::default(),
        );
        let (dag, _) = marion_core::explain::dag_for_discipline(machine, block, discipline);
        let svg = marion_bench::dagviz::dag_to_svg(
            machine,
            block,
            &dag,
            &schedule,
            &format!("r2000/{} block {bi} ({discipline})", f.name),
        );
        out.push((format!("Dependence DAG \u{2014} r2000/{}", f.name), svg));
    }
    out
}

/// Compiles a kernel on a scalar and a dual-issue machine with full
/// tracing and returns the merged trace.
fn demo() -> TraceData {
    let kernels = marion_workloads::livermore::kernels();
    let ll7 = kernels
        .iter()
        .find(|k| k.name == "LL7")
        .expect("LL7 kernel");
    let module = ll7.module();
    let options = CompileOptions {
        trace: Some(TraceConfig {
            reservation_tables: true,
            explanations: true,
        }),
        ..CompileOptions::default()
    };
    let mut data = TraceData::default();
    for (machine, strategy) in [
        ("r2000", StrategyKind::Ips),
        ("i860", StrategyKind::Postpass),
    ] {
        let spec = marion_machines::load(machine);
        let compiler = Compiler::with_options(
            spec.machine.clone(),
            spec.escapes.clone(),
            strategy,
            options.clone(),
        );
        let program = compiler
            .compile_module(&module)
            .unwrap_or_else(|e| panic!("LL7 on {machine}: {e}"));
        data.merge(program.trace.expect("tracing was enabled"));
    }
    data
}

/// Renders the three summary tables from an aggregated trace.
fn report(data: &TraceData) -> String {
    let mut out = String::new();

    // ---- per-phase wall-clock ----
    let mut phases: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for r in &data.records {
        if let Record::Span { name, dur_us, .. } = r {
            let slot = phases.entry(name).or_insert((0, 0));
            slot.0 += dur_us;
            slot.1 += 1;
        }
    }
    if !phases.is_empty() {
        let widths = [24, 12, 8, 10];
        out.push_str("phase timing (wall clock)\n");
        out.push_str(&row(
            &[
                "phase".into(),
                "total us".into(),
                "spans".into(),
                "mean us".into(),
            ],
            &widths,
        ));
        out.push('\n');
        let mut rows: Vec<(&str, u64, u64)> =
            phases.into_iter().map(|(n, (t, c))| (n, t, c)).collect();
        rows.sort_by_key(|(_, t, _)| std::cmp::Reverse(*t));
        for (name, total, count) in rows {
            out.push_str(&row(
                &[
                    name.into(),
                    total.to_string(),
                    count.to_string(),
                    format!("{:.1}", total as f64 / count.max(1) as f64),
                ],
                &widths,
            ));
            out.push('\n');
        }
        out.push('\n');
    }

    // ---- per-function static counters ----
    let mut funcs: BTreeMap<&str, BTreeMap<&str, i64>> = BTreeMap::new();
    for r in &data.records {
        if let Record::Counter { name, ctx, value } = r {
            *funcs.entry(ctx).or_default().entry(name).or_insert(0) += value;
        }
    }
    if !funcs.is_empty() {
        let cols = [
            ("insts_generated", "insts"),
            ("spills", "spills"),
            ("estimated_cycles", "est cyc"),
            ("delay_slots_filled", "filled"),
            ("nops_emitted", "nops"),
            ("sched_stall_cycles", "stalls"),
            ("packed_words", "packed"),
            ("ra_rounds", "ra rnd"),
        ];
        let mut widths = vec![28usize];
        widths.extend(cols.iter().map(|(_, h)| h.len().max(7)));
        out.push_str("per-function summary\n");
        let mut header: Vec<String> = vec!["machine/function".into()];
        header.extend(cols.iter().map(|(_, h)| h.to_string()));
        out.push_str(&row(&header, &widths));
        out.push('\n');
        for (ctx, counters) in &funcs {
            let mut cells: Vec<String> = vec![(*ctx).into()];
            cells.extend(
                cols.iter()
                    .map(|(key, _)| counters.get(key).copied().unwrap_or(0).to_string()),
            );
            out.push_str(&row(&cells, &widths));
            out.push('\n');
        }
        out.push('\n');
    }

    // ---- issue-slot utilization (multi-issue machines) ----
    let mut any_util = false;
    for (ctx, counters) in &funcs {
        let slots = counters.get("issue_slots_used").copied().unwrap_or(0);
        let cycles = counters.get("issue_cycles").copied().unwrap_or(0);
        if cycles > 0 && slots > cycles {
            if !any_util {
                out.push_str("issue-slot utilization\n");
                any_util = true;
            }
            out.push_str(&format!(
                "  {ctx:<28} {:.2} sub-ops/word ({slots} ops in {cycles} words)\n",
                slots as f64 / cycles as f64
            ));
        }
    }
    if any_util {
        out.push('\n');
    }

    // ---- stall attribution (scheduler provenance histograms) ----
    let stall_cols = [
        ("stall_dependence", "depend"),
        ("stall_resource", "resrc"),
        ("stall_class", "class"),
        ("stall_temporal", "tempo"),
        ("stall_pressure", "press"),
        ("stall_order", "order"),
    ];
    let any_stalls = funcs.iter().any(|(_, counters)| {
        stall_cols
            .iter()
            .any(|(key, _)| counters.get(key).copied().unwrap_or(0) > 0)
    });
    if any_stalls {
        let mut widths = vec![28usize];
        widths.extend(stall_cols.iter().map(|(_, h)| h.len().max(7)));
        out.push_str("stall attribution (cycles waited, by reason)\n");
        let mut header: Vec<String> = vec!["machine/function".into()];
        header.extend(stall_cols.iter().map(|(_, h)| h.to_string()));
        out.push_str(&row(&header, &widths));
        out.push('\n');
        for (ctx, counters) in &funcs {
            if !stall_cols
                .iter()
                .any(|(key, _)| counters.get(key).copied().unwrap_or(0) > 0)
            {
                continue;
            }
            let mut cells: Vec<String> = vec![(*ctx).into()];
            cells.extend(
                stall_cols
                    .iter()
                    .map(|(key, _)| counters.get(key).copied().unwrap_or(0).to_string()),
            );
            out.push_str(&row(&cells, &widths));
            out.push('\n');
        }
        out.push('\n');
    }

    // ---- sample distributions + gauges ----
    let mut any_hist = false;
    for r in &data.records {
        if let Record::Hist { name, ctx, hist } = r {
            if !any_hist {
                out.push_str("sample distributions (log2 buckets)\n");
                any_hist = true;
            }
            out.push_str(&format!("  {ctx} \u{2014} {name}: {}\n", hist.summarize()));
        }
    }
    if any_hist {
        out.push('\n');
    }
    let mut any_gauge = false;
    for r in &data.records {
        if let Record::Gauge { name, ctx, value } = r {
            if !any_gauge {
                out.push_str("gauges (high-water)\n");
                any_gauge = true;
            }
            out.push_str(&format!("  {ctx} \u{2014} {name}: {value}\n"));
        }
    }
    if any_gauge {
        out.push('\n');
    }

    // ---- compile-cache effectiveness ----
    let cache_cols = [
        ("cache_hit", "hits"),
        ("cache_miss", "misses"),
        ("cache_evict", "evicted"),
    ];
    let mut cache_totals = [0i64; 3];
    for counters in funcs.values() {
        for (i, (key, _)) in cache_cols.iter().enumerate() {
            cache_totals[i] += counters.get(key).copied().unwrap_or(0);
        }
    }
    if cache_totals.iter().any(|&t| t > 0) {
        let mut widths = vec![28usize];
        widths.extend(cache_cols.iter().map(|(_, h)| h.len().max(7)));
        out.push_str("compile-cache effectiveness\n");
        let mut header: Vec<String> = vec!["machine/function".into()];
        header.extend(cache_cols.iter().map(|(_, h)| h.to_string()));
        out.push_str(&row(&header, &widths));
        out.push('\n');
        for (ctx, counters) in &funcs {
            if !cache_cols
                .iter()
                .any(|(key, _)| counters.get(key).copied().unwrap_or(0) > 0)
            {
                continue;
            }
            let mut cells: Vec<String> = vec![(*ctx).into()];
            cells.extend(
                cache_cols
                    .iter()
                    .map(|(key, _)| counters.get(key).copied().unwrap_or(0).to_string()),
            );
            out.push_str(&row(&cells, &widths));
            out.push('\n');
        }
        let lookups = cache_totals[0] + cache_totals[1];
        out.push_str(&format!(
            "  total: {} hit(s), {} miss(es), {} eviction(s) — {:.0}% hit rate\n\n",
            cache_totals[0],
            cache_totals[1],
            cache_totals[2],
            if lookups > 0 {
                cache_totals[0] as f64 * 100.0 / lookups as f64
            } else {
                0.0
            }
        ));
    }

    // ---- reservation tables, with scheduler narratives alongside ----
    let event_field = |fields: &[(String, marion_trace::Value)], name: &str| -> Option<String> {
        fields
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_str())
            .map(str::to_string)
    };
    // `(ctx, pass) -> narratives`, drained as tables consume them so
    // leftovers (explanations on, tables off) still render below.
    let mut narratives: BTreeMap<(String, String), Vec<String>> = BTreeMap::new();
    for (ctx, fields) in data.events_named("sched_explain") {
        let pass = event_field(fields, "pass").unwrap_or_else(|| "?".to_string());
        if let Some(text) = event_field(fields, "narrative") {
            narratives
                .entry((ctx.to_string(), pass))
                .or_default()
                .push(text);
        }
    }
    let indent = |out: &mut String, text: &str| {
        for line in text.lines() {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
    };
    let tables = data.events_named("reservation_table");
    if !tables.is_empty() {
        out.push_str("reservation tables (cycle x resource)\n");
        for (ctx, fields) in tables {
            let pass = event_field(fields, "pass").unwrap_or_else(|| "?".to_string());
            out.push_str(&format!("\n{ctx} [{pass}]\n"));
            if let Some(table) = event_field(fields, "table") {
                indent(&mut out, &table);
            }
            if let Some(texts) = narratives.remove(&(ctx.to_string(), pass)) {
                for text in texts {
                    out.push_str("  narrative:\n");
                    indent(&mut out, &text);
                }
            }
        }
        out.push('\n');
    }
    if !narratives.is_empty() {
        out.push_str("scheduler narratives\n");
        for ((ctx, pass), texts) in narratives {
            out.push_str(&format!("\n{ctx} [{pass}]\n"));
            for text in texts {
                indent(&mut out, &text);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use marion_trace::Tracer;

    fn trace_with(ctx: &str, insts: i64, stalls: i64) -> TraceData {
        let t = Tracer::new(TraceConfig::default());
        t.add(ctx, "insts_generated", insts);
        t.add(ctx, "stall_resource", stalls);
        t.finish().unwrap()
    }

    #[test]
    fn multiple_jsonl_files_merge_counters() {
        // Two trace files for the same machine/function, round-tripped
        // through JSONL exactly as main() does.
        let a = TraceData::parse_jsonl(&trace_with("m/f", 10, 2).to_jsonl()).unwrap();
        let b = TraceData::parse_jsonl(&trace_with("m/f", 5, 3).to_jsonl()).unwrap();
        let merged = merge_traces(vec![a, b]);
        // Before the merge fix, the first file's counter shadowed the
        // second (counter() returns the first match).
        assert_eq!(merged.counter("m/f", "insts_generated"), Some(15));
        assert_eq!(merged.counter("m/f", "stall_resource"), Some(5));
        let rendered = report(&merged);
        assert!(
            rendered.contains("15"),
            "summed count rendered:\n{rendered}"
        );
        assert!(
            rendered.contains("stall attribution"),
            "stall section rendered:\n{rendered}"
        );
    }

    #[test]
    fn narratives_render_next_to_their_reservation_tables() {
        use marion_trace::Value;
        let t = Tracer::new(TraceConfig {
            reservation_tables: true,
            explanations: true,
        });
        t.event(
            "m/f/b0",
            "reservation_table",
            &[
                ("pass", Value::from("final")),
                ("table", Value::from("cyc0 ALU\ncyc1 MEM")),
            ],
        );
        t.event(
            "m/f/b0",
            "sched_explain",
            &[
                ("pass", Value::from("final")),
                ("narrative", Value::from("cycle 1: stalled on load latency")),
            ],
        );
        // A narrative with no matching table lands in its own section.
        t.event(
            "m/f/b1",
            "sched_explain",
            &[
                ("pass", Value::from("final")),
                ("narrative", Value::from("no stalls")),
            ],
        );
        let rendered = report(&t.finish().unwrap());
        let table_at = rendered.find("cyc0 ALU").expect("table rendered");
        let narrative_at = rendered
            .find("stalled on load latency")
            .expect("narrative rendered");
        assert!(
            narrative_at > table_at,
            "narrative follows its table:\n{rendered}"
        );
        assert!(
            rendered.contains("scheduler narratives"),
            "unpaired narrative gets its own section:\n{rendered}"
        );
        assert!(rendered.contains("no stalls"));
    }

    #[test]
    fn cache_counters_render_an_effectiveness_section() {
        let t = Tracer::new(TraceConfig::default());
        t.add("m/f1", "cache_hit", 1);
        t.add("m/f2", "cache_miss", 1);
        t.add("m/f2", "insts_generated", 12);
        let rendered = report(&t.finish().unwrap());
        assert!(
            rendered.contains("compile-cache effectiveness"),
            "{rendered}"
        );
        assert!(
            rendered.contains("total: 1 hit(s), 1 miss(es), 0 eviction(s) — 50% hit rate"),
            "{rendered}"
        );
    }

    #[test]
    fn traces_without_cache_counters_skip_the_cache_section() {
        let rendered = report(&trace_with("m/f", 3, 0));
        assert!(!rendered.contains("compile-cache"), "{rendered}");
    }

    #[test]
    fn mismatched_machines_and_strategies_warn_on_merge() {
        let t = Tracer::new(TraceConfig::default());
        t.add("r2000/f", "insts_generated", 3);
        {
            let _s = t.span("r2000/f", "sched:ips-final");
        }
        let a = t.finish().unwrap();
        let t = Tracer::new(TraceConfig::default());
        t.add("i860/f", "insts_generated", 4);
        {
            let _s = t.span("i860/f", "sched:postpass");
        }
        let b = t.finish().unwrap();
        let warnings = mismatch_warnings(&[("a.jsonl".into(), a), ("b.jsonl".into(), b)]);
        assert_eq!(warnings.len(), 2, "{warnings:?}");
        assert!(warnings[0].contains("different targets"));
        assert!(warnings[1].contains("different strategies"));
    }

    #[test]
    fn matching_trace_files_merge_without_warnings() {
        let mk = || {
            let t = Tracer::new(TraceConfig::default());
            t.add("r2000/f", "insts_generated", 3);
            {
                let _s = t.span("r2000/f", "sched:postpass");
            }
            t.finish().unwrap()
        };
        let warnings = mismatch_warnings(&[("a.jsonl".into(), mk()), ("b.jsonl".into(), mk())]);
        assert!(warnings.is_empty(), "{warnings:?}");
    }

    #[test]
    fn distinct_functions_stay_separate_rows() {
        let a = trace_with("m/f1", 7, 0);
        let b = trace_with("m/f2", 9, 0);
        let merged = merge_traces(vec![a, b]);
        assert_eq!(merged.counter("m/f1", "insts_generated"), Some(7));
        assert_eq!(merged.counter("m/f2", "insts_generated"), Some(9));
        let rendered = report(&merged);
        assert!(rendered.contains("m/f1"));
        assert!(rendered.contains("m/f2"));
    }
}
