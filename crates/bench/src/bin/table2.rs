//! Table 2 — Marion system source code size (in lines of Rust).
//!
//! The paper buckets its C sources into the code generator generator
//! (CGG), the target- and strategy-independent portion (TSI), the
//! target-dependent portion per machine (TD) and the
//! strategy-dependent portion per strategy (SD). The same
//! decomposition maps onto this repository's crates and modules; the
//! shape to expect is the paper's: TD (per machine) and TSI dominate,
//! RASE > IPS > Postpass among the strategies.

use std::fs;
use std::path::{Path, PathBuf};

fn loc(path: &Path) -> usize {
    match fs::read_to_string(path) {
        Ok(text) => text.lines().filter(|l| !l.trim().is_empty()).count(),
        Err(_) => 0,
    }
}

fn loc_dir(dir: &Path) -> usize {
    let mut total = 0;
    if let Ok(entries) = fs::read_dir(dir) {
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                total += loc_dir(&p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                total += loc(&p);
            }
        }
    }
    total
}

/// Lines of the `impl Strategy for X` block in strategy.rs.
fn strategy_impl_lines(src: &str, name: &str) -> usize {
    let marker = format!("impl Strategy for {name}");
    let Some(start) = src.find(&marker) else {
        return 0;
    };
    let mut depth = 0usize;
    let mut lines = 0usize;
    let mut started = false;
    for line in src[start..].lines() {
        lines += 1;
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    started = true;
                }
                '}' => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
        if started && depth == 0 {
            break;
        }
    }
    lines
}

fn main() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    println!("Table 2: Marion system source size (non-blank lines of Rust)");
    println!("(paper, in C: CGG 4991; TSI 10877; TD 5512-8492 per target; SD 151/1269/3750)");
    println!();
    let cgg = loc_dir(&root.join("crates/maril/src"));
    let tsi = loc_dir(&root.join("crates/core/src")) + loc_dir(&root.join("crates/ir/src"));
    println!("{:44} {:>6}", "Code Generator Generator (CGG = maril)", cgg);
    println!("{:44} {:>6}", "Target- and strategy-independent (TSI)", tsi);
    for m in ["toyp", "r2000", "m88k", "i860"] {
        let td = loc(&root.join(format!("crates/machines/src/{m}.rs")));
        println!("{:44} {:>6}", format!("Target-dependent (TD), {m}"), td);
    }
    let strategy_src =
        fs::read_to_string(root.join("crates/core/src/strategy.rs")).unwrap_or_default();
    for s in ["Postpass", "Ips", "Rase"] {
        println!(
            "{:44} {:>6}",
            format!("Strategy-dependent (SD), {s}"),
            strategy_impl_lines(&strategy_src, s)
        );
    }
    println!(
        "{:44} {:>6}",
        "Front end (not counted in TSI, as in the paper)",
        loc_dir(&root.join("crates/frontend/src"))
    );
    println!(
        "{:44} {:>6}",
        "Simulator (the paper used real hardware)",
        loc_dir(&root.join("crates/sim/src"))
    );
}
