//! §5 headline result — "RASE and IPS both produce code that is 12%
//! faster than that produced by Postpass, on a computation-intensive
//! workload" \[BEH91b\].
//!
//! Measures the Livermore suite plus the floating-point suite programs
//! on every machine and prints each strategy's speedup over Postpass
//! (geometric mean over the workload).

use marion_bench::{geomean, measure, row};
use marion_core::StrategyKind;
use marion_sim::SimConfig;

fn main() {
    let config = SimConfig::default();
    let mut workloads = marion_workloads::livermore::kernels();
    workloads.extend(
        marion_workloads::suite::programs()
            .into_iter()
            .filter(|w| w.name != "lcc"), // compute-intensive subset
    );
    println!("Strategy speedups over Postpass (geomean cycles, computation-intensive suite)");
    println!("(paper: RASE and IPS each about 12% faster than Postpass)");
    println!();
    let widths = [7usize, 14, 12, 12];
    println!(
        "{}",
        row(
            &[
                "target".into(),
                "Postpass cyc".into(),
                "IPS".into(),
                "RASE".into()
            ],
            &widths
        )
    );
    for machine in marion_machines::ALL {
        let spec = marion_machines::load(machine);
        let mut cycles = [Vec::new(), Vec::new(), Vec::new()];
        for w in &workloads {
            for (si, strategy) in StrategyKind::ALL.iter().enumerate() {
                let m = measure(&spec, *strategy, w, &config);
                cycles[si].push(m.run.cycles as f64);
            }
        }
        let post = geomean(&cycles[0]);
        let ips = geomean(&cycles[1]);
        let rase = geomean(&cycles[2]);
        println!(
            "{}",
            row(
                &[
                    machine.into(),
                    format!("{post:.0}"),
                    format!("{:+.1}%", (post / ips - 1.0) * 100.0),
                    format!("{:+.1}%", (post / rase - 1.0) * 100.0),
                ],
                &widths
            )
        );
    }
}
