//! §5 headline result — "RASE and IPS both produce code that is 12%
//! faster than that produced by Postpass, on a computation-intensive
//! workload" \[BEH91b\].
//!
//! Reads the committed quality matrix (`BENCH_quality.json`, written
//! by `marion-bench quality`) and prints each strategy's speedup over
//! Postpass per machine (geometric mean over the compute-intensive
//! workload set — the Livermore kernels plus the float suite
//! programs). The table derives from the same measurements the
//! quality-regression gate enforces, so it never re-measures.
//!
//! ```text
//! speedup [--from BENCH_quality.json]
//! ```

use marion_bench::diff::{parse, Json};
use marion_bench::{geomean, row};

struct Run {
    machine: String,
    strategy: String,
    sim_cycles: f64,
}

fn load_runs(path: &str) -> Result<Vec<Run>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {path}: {e} (run `marion-bench quality` first)"))?;
    let doc = parse(&text)?;
    let Json::Obj(top) = &doc else {
        return Err("quality document is not an object".into());
    };
    match top.iter().find(|(k, _)| k == "bench") {
        Some((_, Json::Str(s))) if s == "quality" => {}
        _ => return Err(format!("{path} is not a quality bench document")),
    }
    let Some((_, Json::Arr(runs))) = top.iter().find(|(k, _)| k == "runs") else {
        return Err("quality document has no runs[]".into());
    };
    runs.iter()
        .filter_map(|run| {
            let Json::Obj(fields) = run else { return None };
            let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
            let s = |key: &str| match get(key) {
                Some(Json::Str(s)) => Some(s.clone()),
                _ => None,
            };
            let n = |key: &str| match get(key) {
                Some(Json::Num(n)) => Some(*n),
                _ => None,
            };
            Some(Ok(Run {
                machine: s("machine")?,
                strategy: s("strategy")?,
                sim_cycles: n("sim_cycles")?,
            }))
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut from = "BENCH_quality.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--from" => {
                i += 1;
                from = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("speedup: --from needs a value");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("speedup: unknown argument `{other}` (usage: speedup [--from PATH])");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let runs = load_runs(&from).unwrap_or_else(|e| {
        eprintln!("speedup: {e}");
        std::process::exit(2);
    });

    let mut machines: Vec<String> = Vec::new();
    for r in &runs {
        if !machines.contains(&r.machine) {
            machines.push(r.machine.clone());
        }
    }
    println!("Strategy speedups over Postpass (geomean cycles, computation-intensive suite)");
    println!("(paper: RASE and IPS each about 12% faster than Postpass; from {from})");
    println!();
    let widths = [7usize, 14, 12, 12];
    println!(
        "{}",
        row(
            &[
                "target".into(),
                "Postpass cyc".into(),
                "IPS".into(),
                "RASE".into()
            ],
            &widths
        )
    );
    for machine in &machines {
        let cycles = |strategy: &str| -> Vec<f64> {
            runs.iter()
                .filter(|r| &r.machine == machine && r.strategy.eq_ignore_ascii_case(strategy))
                .map(|r| r.sim_cycles)
                .collect()
        };
        let post = geomean(&cycles("postpass"));
        let ips = geomean(&cycles("ips"));
        let rase = geomean(&cycles("rase"));
        if post == 0.0 || ips == 0.0 || rase == 0.0 {
            eprintln!("speedup: {machine}: incomplete strategy coverage in {from}");
            std::process::exit(2);
        }
        println!(
            "{}",
            row(
                &[
                    machine.clone(),
                    format!("{post:.0}"),
                    format!("{:+.1}%", (post / ips - 1.0) * 100.0),
                    format!("{:+.1}%", (post / rase - 1.0) * 100.0),
                ],
                &widths
            )
        );
    }
}
