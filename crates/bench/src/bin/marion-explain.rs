//! marion-explain — why did the scheduler do that?
//!
//! Compiles a source file for one bundled machine, then prints a
//! per-block cycle-by-cycle narrative of the schedule: what issued
//! each cycle, what was ready but stalled (and on which dependence
//! edge, resource, packing class, temporal clock or pressure limit it
//! waited), each instruction's ready/earliest/issue cycles, the
//! per-reason stall histogram, the DAG critical path, and — after the
//! blocks — the delay-slot fill provenance (which instruction moved
//! into which branch's slot, per §4.4). Every block
//! is re-audited with `audit_schedule`, an independent legality
//! checker that also validates the recorded provenance — the tool
//! refuses to explain a schedule it cannot prove.
//!
//! Usage:
//!
//! ```text
//! marion-explain MACHINE FILE.c [--strategy postpass|ips|rase] [--dot] [--check]
//! marion-explain MACHINE FILE.c --compare [FUNC]
//! marion-explain --demo [--dot] [--check] [--compare]
//! ```
//!
//! * `--dot` — after each function, also emit the annotated Graphviz
//!   code DAG (issue cycles, edge kinds, critical path in red, stall
//!   reasons as tooltips) for its largest block;
//! * `--check` — exit non-zero unless every block passes both
//!   `verify_schedule` and `audit_schedule` and every emitted DOT is
//!   well-formed (used by CI);
//! * `--compare` — compile each function (or just `FUNC`) under all
//!   three strategies, align the per-instruction placement records by
//!   mnemonic occurrence, and print a stall-diff table: where each
//!   strategy placed the same instruction, how long it stalled and on
//!   what, plus a per-reason totals matrix;
//! * `--demo` — a built-in dot-product kernel on TOYP (latency
//!   stalls) and the dual-issue i860 (packing and temporal stalls).

use marion_core::explain;
use marion_core::sched;
use marion_core::strategy::strategy_for;
use marion_core::{CodeBlock, CodeFunc, StrategyKind};
use marion_maril::Machine;
use marion_trace::Tracer;
use std::collections::BTreeMap;

const DEMO_SRC: &str = "int a[64]; int b[64];
int main() {
    int i; int s = 0;
    for (i = 0; i < 64; i++) s = s + a[i] * b[i];
    return s;
}";

fn usage() -> ! {
    eprintln!("usage: marion-explain MACHINE FILE.c [--strategy NAME] [--dot] [--check]");
    eprintln!("       marion-explain MACHINE FILE.c --compare [FUNC]");
    eprintln!("       marion-explain --demo [--dot] [--check] [--compare]");
    eprintln!("machines: {:?}", marion_machines::EXTENDED);
    std::process::exit(2);
}

struct Options {
    dot: bool,
    check: bool,
    limit: Option<usize>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let opts = Options {
        dot: args.iter().any(|a| a == "--dot"),
        check: args.iter().any(|a| a == "--check"),
        limit: args
            .iter()
            .position(|a| a == "--blocks")
            .and_then(|p| args.get(p + 1))
            .and_then(|v| v.parse().ok()),
    };
    // `--compare [FUNC]`: the optional FUNC rides directly after the
    // flag, so it must not be mistaken for a positional MACHINE/FILE.
    let compare_at = args.iter().position(|a| a == "--compare");
    let compare_func: Option<String> = compare_at
        .and_then(|p| args.get(p + 1))
        .filter(|a| !a.starts_with("--"))
        .cloned();
    let value_positions: Vec<usize> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--blocks" || *a == "--compare")
        .filter_map(|(i, _)| {
            args.get(i + 1)
                .filter(|v| !v.starts_with("--"))
                .map(|_| i + 1)
        })
        .collect();
    let mut failures = 0usize;
    if args[0] == "--demo" {
        for machine in ["toyp", "i860"] {
            println!("==== {machine} (demo dot-product) ====");
            if compare_at.is_some() {
                failures += compare_source(machine, DEMO_SRC, compare_func.as_deref());
            } else {
                failures += explain_source(machine, DEMO_SRC, &opts);
            }
        }
    } else {
        let positional: Vec<&String> = args
            .iter()
            .enumerate()
            .filter(|(i, a)| !a.starts_with("--") && !value_positions.contains(i))
            .map(|(_, a)| a)
            .collect();
        let (machine, path) = match positional.as_slice() {
            [m, p, ..] => (m.as_str(), p.as_str()),
            _ => usage(),
        };
        let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("marion-explain: cannot read {path}: {e}");
            std::process::exit(1);
        });
        if compare_at.is_some() {
            failures += compare_source(machine, &src, compare_func.as_deref());
        } else {
            failures += explain_source(machine, &src, &opts);
        }
    }
    if opts.check {
        if failures > 0 {
            eprintln!("marion-explain: {failures} check failure(s)");
            std::process::exit(1);
        }
        println!("all checks passed");
    }
}

/// Compiles `src` for `machine`, explains every scheduled block and
/// returns the number of check failures.
fn explain_source(machine_name: &str, src: &str, opts: &Options) -> usize {
    let spec = marion_machines::load(machine_name);
    let machine = &spec.machine;
    let mut module = marion_frontend::compile(src).unwrap_or_else(|e| {
        eprintln!("marion-explain: {e}");
        std::process::exit(1);
    });
    marion_core::driver::materialize_float_constants(&mut module);
    let mut failures = 0usize;
    for f in &module.funcs {
        let mut f = f.clone();
        if let Err(e) = marion_core::glue::apply_glue(machine, &mut f) {
            eprintln!("marion-explain: glue {}: {e}", f.name);
            failures += 1;
            continue;
        }
        let mut code = match marion_core::select::select_func(machine, &spec.escapes, &module, &f) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("marion-explain: select {}: {e}", f.name);
                failures += 1;
                continue;
            }
        };
        // Postpass-style: allocate, then schedule the allocated code —
        // what the explanation describes is then the final schedule.
        if let Err(e) = marion_core::regalloc::allocate(machine, &mut code, &Default::default()) {
            eprintln!(
                "marion-explain: allocation failed for {}: {e} (skipped)",
                f.name
            );
            continue;
        }
        println!("function {} ({} blocks)", f.name, code.blocks.len());
        failures += explain_func(machine, &code, opts);
    }
    failures
}

/// One strategy's placements for a function, keyed for alignment by
/// `(block, mnemonic, occurrence)` — the same source instruction keeps
/// that key across strategies even when register allocation renames
/// operands or inserts spill code around it.
struct StrategyPlacements {
    name: &'static str,
    total_length: u64,
    total_stalls: u64,
    reason_totals: BTreeMap<&'static str, u64>,
    /// key -> (issue cycle, stalled cycles, dominant reason).
    by_key: BTreeMap<(usize, String, usize), (u32, u32, &'static str)>,
}

/// Runs one strategy over a freshly selected copy of `func` and
/// collects its aligned placements. `None` when any stage fails (the
/// failure is reported).
fn placements_for(
    machine: &Machine,
    escapes: &marion_core::EscapeRegistry,
    module: &marion_ir::Module,
    func: &marion_ir::Function,
    kind: StrategyKind,
) -> Option<StrategyPlacements> {
    let mut f = func.clone();
    if let Err(e) = marion_core::glue::apply_glue(machine, &mut f) {
        eprintln!("marion-explain: glue {}: {e}", f.name);
        return None;
    }
    let mut code = match marion_core::select::select_func(machine, escapes, module, &f) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("marion-explain: select {}: {e}", f.name);
            return None;
        }
    };
    let strategy = strategy_for(kind);
    let tracer = Tracer::off();
    let schedules = match strategy.run(machine, &mut code, &tracer, "compare") {
        Ok((schedules, _)) => schedules,
        Err(e) => {
            eprintln!("marion-explain: {} on {}: {e}", kind.name(), f.name);
            return None;
        }
    };
    let mut out = StrategyPlacements {
        name: kind.name(),
        total_length: 0,
        total_stalls: 0,
        reason_totals: BTreeMap::new(),
        by_key: BTreeMap::new(),
    };
    for (bi, (block, schedule)) in code.blocks.iter().zip(&schedules).enumerate() {
        out.total_length += schedule.length as u64;
        out.total_stalls += schedule.explanation.total_stall_cycles();
        for (key, cycles) in schedule.explanation.stall_histogram() {
            *out.reason_totals.entry(key).or_insert(0) += cycles;
        }
        let mut seen: BTreeMap<&str, usize> = BTreeMap::new();
        for record in &schedule.explanation.records {
            let Some(inst) = block.insts.get(record.inst) else {
                continue;
            };
            let mnemonic = machine.template(inst.template).mnemonic.as_str();
            let occurrence = seen.entry(mnemonic).or_insert(0);
            let dominant = record
                .stalls
                .iter()
                .max_by_key(|s| s.cycles)
                .map(|s| s.reason.key())
                .unwrap_or("-");
            out.by_key.insert(
                (bi, mnemonic.to_string(), *occurrence),
                (record.issue_cycle, record.stall_cycles(), dominant),
            );
            *occurrence += 1;
        }
    }
    Some(out)
}

/// Compiles every function (or just `func_filter`) once per strategy
/// and prints the aligned stall-diff tables. Returns the number of
/// functions that failed under some strategy.
fn compare_source(machine_name: &str, src: &str, func_filter: Option<&str>) -> usize {
    let spec = marion_machines::load(machine_name);
    let machine = &spec.machine;
    let mut module = marion_frontend::compile(src).unwrap_or_else(|e| {
        eprintln!("marion-explain: {e}");
        std::process::exit(1);
    });
    marion_core::driver::materialize_float_constants(&mut module);
    let mut failures = 0usize;
    let mut matched = false;
    for f in &module.funcs {
        if func_filter.is_some_and(|want| want != f.name) {
            continue;
        }
        matched = true;
        let all: Vec<StrategyPlacements> = StrategyKind::ALL
            .iter()
            .filter_map(|&kind| placements_for(machine, &spec.escapes, &module, f, kind))
            .collect();
        if all.len() != StrategyKind::ALL.len() {
            failures += 1;
            continue;
        }
        println!("function {} — strategy comparison", f.name);
        println!(
            "  {:<24} {}",
            "totals",
            all.iter()
                .map(|s| format!("{:<22}", s.name))
                .collect::<String>()
        );
        println!(
            "  {:<24} {}",
            "schedule length",
            all.iter()
                .map(|s| format!("{:<22}", s.total_length))
                .collect::<String>()
        );
        println!(
            "  {:<24} {}",
            "stall cycles",
            all.iter()
                .map(|s| format!("{:<22}", s.total_stalls))
                .collect::<String>()
        );
        // Per-reason totals matrix.
        let mut reasons: Vec<&'static str> = all
            .iter()
            .flat_map(|s| s.reason_totals.keys().copied())
            .collect();
        reasons.sort_unstable();
        reasons.dedup();
        for reason in reasons {
            println!(
                "  {:<24} {}",
                format!("stall[{reason}]"),
                all.iter()
                    .map(|s| {
                        format!("{:<22}", s.reason_totals.get(reason).copied().unwrap_or(0))
                    })
                    .collect::<String>()
            );
        }
        // Per-instruction diff rows: the union of aligned keys, in
        // block/occurrence order; `issue@N +S(reason)` per strategy,
        // `-` where the strategy has no matching instruction (e.g.
        // spill code another allocator did not need).
        let mut keys: Vec<&(usize, String, usize)> =
            all.iter().flat_map(|s| s.by_key.keys()).collect();
        keys.sort();
        keys.dedup();
        println!("  per-instruction placements (issue@cycle +stall(reason)):");
        for key in keys {
            let (bi, mnemonic, occurrence) = key;
            let cells: String = all
                .iter()
                .map(|s| match s.by_key.get(key) {
                    Some((issue, 0, _)) => format!("{:<22}", format!("@{issue}")),
                    Some((issue, stall, reason)) => {
                        format!("{:<22}", format!("@{issue} +{stall}({reason})"))
                    }
                    None => format!("{:<22}", "-"),
                })
                .collect();
            println!(
                "    b{bi:<3} {:<18} {cells}",
                format!("{mnemonic}#{occurrence}")
            );
        }
        println!();
    }
    if !matched {
        if let Some(want) = func_filter {
            eprintln!("marion-explain: no function named `{want}`");
            return 1;
        }
    }
    failures
}

fn explain_func(machine: &Machine, code: &CodeFunc, opts: &Options) -> usize {
    let mut failures = 0usize;
    let mut totals: std::collections::BTreeMap<&'static str, u64> = Default::default();
    let mut biggest: Option<(usize, sched::Schedule)> = None;
    let mut explained = 0usize;
    // Every block gets a schedule (empty ones trivially) so the
    // function can be emitted afterwards for delay-slot provenance.
    let mut schedules: Vec<sched::Schedule> = Vec::with_capacity(code.blocks.len());
    for (bi, block) in code.blocks.iter().enumerate() {
        let (schedule, discipline) =
            sched::schedule_block_robust(machine, code, block, &Default::default());
        if block.insts.is_empty() {
            schedules.push(schedule);
            continue;
        }
        failures += audit_block(machine, block, &schedule, bi);
        for (key, cycles) in schedule.explanation.stall_histogram() {
            *totals.entry(key).or_insert(0) += cycles;
        }
        let show = opts.limit.is_none_or(|lim| explained < lim);
        if show {
            println!("block b{bi} (discipline {discipline}):");
            print!("{}", explain::explain_block_text(machine, block, &schedule));
            explained += 1;
        }
        if biggest
            .as_ref()
            .is_none_or(|(prev, _)| code.blocks[*prev].insts.len() < block.insts.len())
        {
            biggest = Some((bi, schedule.clone()));
        }
        schedules.push(schedule);
    }
    // Delay-slot fill provenance (§4.4): emit from the schedules just
    // explained and run the filler, naming which instruction moved
    // into which branch's slot.
    match marion_core::emit::emit_func(machine, code, &schedules) {
        Ok(mut emitted) => {
            let fills = marion_core::emit::fill_delay_slots(machine, &mut emitted);
            if fills.is_empty() {
                println!("delay slots: none filled");
            } else {
                println!("delay slots filled ({}):", fills.len());
                for f in &fills {
                    println!(
                        "  b{}: `{}` moved into slot {} of `{}`",
                        f.block, f.inst, f.slot, f.branch
                    );
                }
            }
        }
        Err(e) => {
            eprintln!("marion-explain: emit: {e}");
            failures += 1;
        }
    }
    if !totals.is_empty() {
        let mut ranked: Vec<(&str, u64)> = totals.into_iter().collect();
        ranked.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
        let rendered: Vec<String> = ranked.iter().map(|(k, c)| format!("{k} {c}")).collect();
        println!("top stall reasons (cycles): {}", rendered.join(", "));
    }
    if let Some((bi, schedule)) = biggest {
        if opts.dot || opts.check {
            let block = &code.blocks[bi];
            let (dag, _) =
                explain::dag_for_discipline(machine, block, schedule.explanation.discipline);
            let dot = explain::dag_to_dot(
                machine,
                block,
                &dag,
                &schedule,
                &format!("{}/b{bi}", machine.name()),
            );
            if let Err(e) = explain::check_dot(&dot, &dag) {
                eprintln!("marion-explain: malformed DOT for b{bi}: {e}");
                failures += 1;
            }
            if opts.dot {
                print!("{dot}");
            }
        }
    }
    println!();
    failures
}

/// Runs both checkers over one block's schedule against the DAG its
/// discipline used, and reports any disagreement.
fn audit_block(
    machine: &Machine,
    block: &CodeBlock,
    schedule: &sched::Schedule,
    bi: usize,
) -> usize {
    let discipline = schedule.explanation.discipline;
    let (dag, check_rule1) = explain::dag_for_discipline(machine, block, discipline);
    let verify = sched::verify_schedule_with(machine, block, &dag, schedule, check_rule1);
    let audit = explain::audit_schedule(machine, block, &dag, schedule, check_rule1);
    match (verify, audit) {
        (Ok(()), Ok(())) => 0,
        (v, a) => {
            if let Err(e) = v {
                eprintln!("marion-explain: b{bi}: verify_schedule: {e}");
            }
            if let Err(e) = a {
                eprintln!("marion-explain: b{bi}: {e}");
            }
            1
        }
    }
}
