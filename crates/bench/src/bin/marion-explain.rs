//! marion-explain — why did the scheduler do that?
//!
//! Compiles a source file for one bundled machine, then prints a
//! per-block cycle-by-cycle narrative of the schedule: what issued
//! each cycle, what was ready but stalled (and on which dependence
//! edge, resource, packing class, temporal clock or pressure limit it
//! waited), each instruction's ready/earliest/issue cycles, the
//! per-reason stall histogram, the DAG critical path, and — after the
//! blocks — the delay-slot fill provenance (which instruction moved
//! into which branch's slot, per §4.4). Every block
//! is re-audited with `audit_schedule`, an independent legality
//! checker that also validates the recorded provenance — the tool
//! refuses to explain a schedule it cannot prove.
//!
//! Usage:
//!
//! ```text
//! marion-explain MACHINE FILE.c [--strategy postpass|ips|rase] [--dot] [--check]
//! marion-explain --demo [--dot] [--check]
//! ```
//!
//! * `--dot` — after each function, also emit the annotated Graphviz
//!   code DAG (issue cycles, edge kinds, critical path in red, stall
//!   reasons as tooltips) for its largest block;
//! * `--check` — exit non-zero unless every block passes both
//!   `verify_schedule` and `audit_schedule` and every emitted DOT is
//!   well-formed (used by CI);
//! * `--demo` — a built-in dot-product kernel on TOYP (latency
//!   stalls) and the dual-issue i860 (packing and temporal stalls).

use marion_core::explain;
use marion_core::sched;
use marion_core::{CodeBlock, CodeFunc};
use marion_maril::Machine;

const DEMO_SRC: &str = "int a[64]; int b[64];
int main() {
    int i; int s = 0;
    for (i = 0; i < 64; i++) s = s + a[i] * b[i];
    return s;
}";

fn usage() -> ! {
    eprintln!("usage: marion-explain MACHINE FILE.c [--strategy NAME] [--dot] [--check]");
    eprintln!("       marion-explain --demo [--dot] [--check]");
    eprintln!("machines: {:?}", marion_machines::EXTENDED);
    std::process::exit(2);
}

struct Options {
    dot: bool,
    check: bool,
    limit: Option<usize>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }
    let opts = Options {
        dot: args.iter().any(|a| a == "--dot"),
        check: args.iter().any(|a| a == "--check"),
        limit: args
            .iter()
            .position(|a| a == "--blocks")
            .and_then(|p| args.get(p + 1))
            .and_then(|v| v.parse().ok()),
    };
    let mut failures = 0usize;
    if args[0] == "--demo" {
        for machine in ["toyp", "i860"] {
            println!("==== {machine} (demo dot-product) ====");
            failures += explain_source(machine, DEMO_SRC, &opts);
        }
    } else {
        let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
        let (machine, path) = match positional.as_slice() {
            [m, p, ..] => (m.as_str(), p.as_str()),
            _ => usage(),
        };
        let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("marion-explain: cannot read {path}: {e}");
            std::process::exit(1);
        });
        failures += explain_source(machine, &src, &opts);
    }
    if opts.check {
        if failures > 0 {
            eprintln!("marion-explain: {failures} check failure(s)");
            std::process::exit(1);
        }
        println!("all checks passed");
    }
}

/// Compiles `src` for `machine`, explains every scheduled block and
/// returns the number of check failures.
fn explain_source(machine_name: &str, src: &str, opts: &Options) -> usize {
    let spec = marion_machines::load(machine_name);
    let machine = &spec.machine;
    let mut module = marion_frontend::compile(src).unwrap_or_else(|e| {
        eprintln!("marion-explain: {e}");
        std::process::exit(1);
    });
    marion_core::driver::materialize_float_constants(&mut module);
    let mut failures = 0usize;
    for f in &module.funcs {
        let mut f = f.clone();
        if let Err(e) = marion_core::glue::apply_glue(machine, &mut f) {
            eprintln!("marion-explain: glue {}: {e}", f.name);
            failures += 1;
            continue;
        }
        let mut code = match marion_core::select::select_func(machine, &spec.escapes, &module, &f) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("marion-explain: select {}: {e}", f.name);
                failures += 1;
                continue;
            }
        };
        // Postpass-style: allocate, then schedule the allocated code —
        // what the explanation describes is then the final schedule.
        if let Err(e) = marion_core::regalloc::allocate(machine, &mut code, &Default::default()) {
            eprintln!(
                "marion-explain: allocation failed for {}: {e} (skipped)",
                f.name
            );
            continue;
        }
        println!("function {} ({} blocks)", f.name, code.blocks.len());
        failures += explain_func(machine, &code, opts);
    }
    failures
}

fn explain_func(machine: &Machine, code: &CodeFunc, opts: &Options) -> usize {
    let mut failures = 0usize;
    let mut totals: std::collections::BTreeMap<&'static str, u64> = Default::default();
    let mut biggest: Option<(usize, sched::Schedule)> = None;
    let mut explained = 0usize;
    // Every block gets a schedule (empty ones trivially) so the
    // function can be emitted afterwards for delay-slot provenance.
    let mut schedules: Vec<sched::Schedule> = Vec::with_capacity(code.blocks.len());
    for (bi, block) in code.blocks.iter().enumerate() {
        let (schedule, discipline) =
            sched::schedule_block_robust(machine, code, block, &Default::default());
        if block.insts.is_empty() {
            schedules.push(schedule);
            continue;
        }
        failures += audit_block(machine, block, &schedule, bi);
        for (key, cycles) in schedule.explanation.stall_histogram() {
            *totals.entry(key).or_insert(0) += cycles;
        }
        let show = opts.limit.is_none_or(|lim| explained < lim);
        if show {
            println!("block b{bi} (discipline {discipline}):");
            print!("{}", explain::explain_block_text(machine, block, &schedule));
            explained += 1;
        }
        if biggest
            .as_ref()
            .is_none_or(|(prev, _)| code.blocks[*prev].insts.len() < block.insts.len())
        {
            biggest = Some((bi, schedule.clone()));
        }
        schedules.push(schedule);
    }
    // Delay-slot fill provenance (§4.4): emit from the schedules just
    // explained and run the filler, naming which instruction moved
    // into which branch's slot.
    match marion_core::emit::emit_func(machine, code, &schedules) {
        Ok(mut emitted) => {
            let fills = marion_core::emit::fill_delay_slots(machine, &mut emitted);
            if fills.is_empty() {
                println!("delay slots: none filled");
            } else {
                println!("delay slots filled ({}):", fills.len());
                for f in &fills {
                    println!(
                        "  b{}: `{}` moved into slot {} of `{}`",
                        f.block, f.inst, f.slot, f.branch
                    );
                }
            }
        }
        Err(e) => {
            eprintln!("marion-explain: emit: {e}");
            failures += 1;
        }
    }
    if !totals.is_empty() {
        let mut ranked: Vec<(&str, u64)> = totals.into_iter().collect();
        ranked.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
        let rendered: Vec<String> = ranked.iter().map(|(k, c)| format!("{k} {c}")).collect();
        println!("top stall reasons (cycles): {}", rendered.join(", "));
    }
    if let Some((bi, schedule)) = biggest {
        if opts.dot || opts.check {
            let block = &code.blocks[bi];
            let (dag, _) =
                explain::dag_for_discipline(machine, block, schedule.explanation.discipline);
            let dot = explain::dag_to_dot(
                machine,
                block,
                &dag,
                &schedule,
                &format!("{}/b{bi}", machine.name()),
            );
            if let Err(e) = explain::check_dot(&dot, &dag) {
                eprintln!("marion-explain: malformed DOT for b{bi}: {e}");
                failures += 1;
            }
            if opts.dot {
                print!("{dot}");
            }
        }
    }
    println!();
    failures
}

/// Runs both checkers over one block's schedule against the DAG its
/// discipline used, and reports any disagreement.
fn audit_block(
    machine: &Machine,
    block: &CodeBlock,
    schedule: &sched::Schedule,
    bi: usize,
) -> usize {
    let discipline = schedule.explanation.discipline;
    let (dag, check_rule1) = explain::dag_for_discipline(machine, block, discipline);
    let verify = sched::verify_schedule_with(machine, block, &dag, schedule, check_rule1);
    let audit = explain::audit_schedule(machine, block, &dag, schedule, check_rule1);
    match (verify, audit) {
        (Ok(()), Ok(())) => 0,
        (v, a) => {
            if let Err(e) = v {
                eprintln!("marion-explain: b{bi}: verify_schedule: {e}");
            }
            if let Err(e) = a {
                eprintln!("marion-explain: b{bi}: {e}");
            }
            1
        }
    }
}
