//! Figure 7 — code produced by the Marion i860 Postpass compiler for
//!
//! ```c
//! a = (x + b) + (a * z);
//! return (y + z);
//! ```
//!
//! The paper's listing shows dual-operation long instruction words
//! (multiply and add sub-operations packed together, e.g. `m12apm`)
//! and the add pipe taking inputs from both pipe outputs. This binary
//! compiles the same fragment for the bundled i860 and prints the
//! schedule word by word, with the packed sub-operations visible.

use marion_core::{Compiler, StrategyKind};

fn main() {
    let spec = marion_machines::load("i860");
    let src = "double a, b, x, y, z;
               double f() {
                   a = (x + b) + (a * z);
                   return (y + z);
               }";
    let module = marion_frontend::compile(src).expect("fragment compiles");
    let compiler = Compiler::new(
        spec.machine.clone(),
        spec.escapes.clone(),
        StrategyKind::Postpass,
    );
    let program = compiler.compile_module(&module).expect("codegen");
    println!("Figure 7: Marion i860 Postpass code for");
    println!("    a = (x + b) + (a * z);  return (y + z);");
    println!();
    let func = program.asm.func("f").expect("f");
    let mut cycle = 0usize;
    let mut packed_words = 0usize;
    let mut sub_ops = 0usize;
    for (bi, block) in func.blocks.iter().enumerate() {
        println!(".Lf_{bi}:");
        for word in &block.words {
            let text = marion_core::emit::render_word(&spec.machine, word, &program.symbols, "f");
            println!("  {cycle:>3}  {text}");
            cycle += 1;
            if word.insts.len() > 1 {
                packed_words += 1;
            }
            for inst in &word.insts {
                let t = spec.machine.template(inst.template);
                if t.affects_clock.is_some() {
                    sub_ops += 1;
                }
            }
        }
    }
    println!();
    println!("{sub_ops} EAP sub-operations, {packed_words} packed long instruction words");
    assert!(sub_ops >= 8, "expected the add and multiply pipes in use");
}
