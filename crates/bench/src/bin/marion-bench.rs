//! `marion-bench` — the compile-time benchmark and selection
//! cross-check harness.
//!
//! Subcommands:
//!
//! * `compile [--smoke] [--iters K] [--out PATH]` — times end-to-end
//!   compilation of the multi-function Livermore and generated suites
//!   on every bundled machine, comparing serial brute-force selection,
//!   serial indexed selection, and `jobs=4` parallel compilation, and
//!   writes the result trajectory to `BENCH_compile.json`
//!   (median-of-K wall times, functions/sec, per-phase span split).
//! * `crosscheck` — asserts that indexed vs brute-force selection and
//!   memoized vs unmemoized matching all produce identical programs
//!   (same template choices, same stats, byte-identical assembly) for
//!   every bundled machine × workload; exits non-zero on the first
//!   divergence.
//! * `diff OLD.json NEW.json [--tolerance PCT]` — the perf-regression
//!   gate: compares two `BENCH_*.json` files metric by metric
//!   (`*_ms`/`*_cycles` higher-is-worse, `per_sec`/`speedup`
//!   lower-is-worse),
//!   prints per-phase deltas, and exits 1 when any metric regresses
//!   past the tolerance (default 10%), 2 on unreadable input. Run in
//!   CI against the committed baseline.
//! * `serve [--smoke] [--out PATH]` — measures cold vs warm
//!   throughput of the compile service on the combined Livermore
//!   workload: every machine × strategy is requested twice through
//!   the `marion-serve` stream machinery against one shared
//!   content-addressed cache, and the per-request wall times land in
//!   `BENCH_serve.json` with hit/miss counters. A third warm pass
//!   runs with full observability on (request tracing, tail
//!   sampling, access log) and records the overhead honestly as
//!   `observability_overhead_pct`.
//! * `quality [--smoke] [--out PATH]` — the codegen-quality matrix:
//!   every bundled machine × strategy × workload compiled once,
//!   simulated, and condensed into one `ProgramQuality` row each
//!   (sim vs estimated cycles, critical-path lower bound, stall
//!   breakdown, issue-slot utilization, spill/nop/delay-slot counts)
//!   in `BENCH_quality.json`. Cycle counts are deterministic, so CI
//!   diffs the committed matrix with `--tolerance 0`: any regression
//!   in codegen quality fails the build.

use marion_bench::serve::{run_stream, ServeConfig, Service};
use marion_core::{CompileOptions, Compiler, StrategyKind};
use marion_ir::Module;
use marion_machines::MachineSpec;
use marion_trace::{Record, TraceConfig};
use std::fmt::Write as _;
use std::num::NonZeroUsize;
use std::time::Instant;

const PHASES: [&str; 5] = ["glue", "select", "strategy", "emit", "fill_delay_slots"];

/// Strategy-interior micro-spans whose self time (total minus nested
/// children) lands in `BENCH_compile.json` as `subphase_self_ms`, so
/// the perf gate sees where inside the scheduler and allocator the
/// time moved, not just the phase total.
const SUBPHASES: [&str; 15] = [
    "dag_build",
    "prep",
    "ready_scan",
    "group_scan",
    "pick_place",
    "advance",
    "finalize",
    "ig_build",
    "simplify",
    "select_colors",
    "evict_scan",
    "spill_rewrite",
    "phys_rewrite",
    "sched_metrics",
    "reorder",
];

/// Subphase self-times below this floor are omitted from the JSON:
/// sub-50µs medians are timer noise, and gating on their percent
/// deltas would flake. Presence asymmetry between two files is a diff
/// warning, never a regression.
const SUBPHASE_FLOOR_MS: f64 = 0.05;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("");
    match cmd {
        "compile" => {
            let mut smoke = false;
            let mut iters: usize = 5;
            let mut out = "BENCH_compile.json".to_string();
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--smoke" => smoke = true,
                    "--iters" => {
                        i += 1;
                        iters = args[i].parse().expect("--iters takes a number");
                    }
                    "--out" => {
                        i += 1;
                        out = args[i].clone();
                    }
                    other => {
                        eprintln!("unknown flag `{other}`");
                        std::process::exit(2);
                    }
                }
                i += 1;
            }
            if smoke {
                iters = 1;
            }
            bench_compile(iters, &out);
        }
        "crosscheck" => crosscheck(),
        "diff" => {
            let mut tolerance = 10.0f64;
            let mut files: Vec<String> = Vec::new();
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--tolerance" => {
                        i += 1;
                        tolerance = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                            eprintln!("--tolerance takes a percentage");
                            std::process::exit(2);
                        });
                    }
                    other if other.starts_with('-') => {
                        eprintln!("unknown flag `{other}`");
                        std::process::exit(2);
                    }
                    path => files.push(path.to_string()),
                }
                i += 1;
            }
            let [old_path, new_path] = files.as_slice() else {
                eprintln!("usage: marion-bench diff OLD.json NEW.json [--tolerance PCT]");
                std::process::exit(2);
            };
            let read = |path: &str| {
                std::fs::read_to_string(path).unwrap_or_else(|e| {
                    eprintln!("marion-bench diff: cannot read {path}: {e}");
                    std::process::exit(2);
                })
            };
            let (old_text, new_text) = (read(old_path), read(new_path));
            match marion_bench::diff::run_diff(&old_text, &new_text, tolerance) {
                Ok((report, code)) => {
                    print!("{report}");
                    std::process::exit(code);
                }
                Err(e) => {
                    eprintln!("marion-bench diff: {e}");
                    std::process::exit(2);
                }
            }
        }
        "serve" => {
            let mut smoke = false;
            let mut out = "BENCH_serve.json".to_string();
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--smoke" => smoke = true,
                    "--out" => {
                        i += 1;
                        out = args[i].clone();
                    }
                    other => {
                        eprintln!("unknown flag `{other}`");
                        std::process::exit(2);
                    }
                }
                i += 1;
            }
            bench_serve(smoke, &out);
        }
        "quality" => {
            let mut smoke = false;
            let mut out: Option<String> = None;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--smoke" => smoke = true,
                    "--out" => {
                        i += 1;
                        out = Some(args[i].clone());
                    }
                    other => {
                        eprintln!("unknown flag `{other}`");
                        std::process::exit(2);
                    }
                }
                i += 1;
            }
            let out = out.unwrap_or_else(|| {
                if smoke {
                    "BENCH_quality_smoke.json".to_string()
                } else {
                    "BENCH_quality.json".to_string()
                }
            });
            bench_quality(smoke, &out);
        }
        _ => {
            eprintln!(
                "usage: marion-bench <compile [--smoke] [--iters K] [--out PATH] \
                 | crosscheck | serve [--smoke] [--out PATH] \
                 | quality [--smoke] [--out PATH] \
                 | diff OLD.json NEW.json [--tolerance PCT]>"
            );
            std::process::exit(2);
        }
    }
}

fn options(jobs: usize, indexed: bool) -> CompileOptions {
    CompileOptions {
        jobs: NonZeroUsize::new(jobs),
        indexed_select: indexed,
        ..CompileOptions::default()
    }
}

/// Median wall-clock milliseconds over `iters` compilations.
fn time_compile(spec: &MachineSpec, module: &Module, opts: CompileOptions, iters: usize) -> f64 {
    let compiler = Compiler::with_options(
        spec.machine.clone(),
        spec.escapes.clone(),
        StrategyKind::Ips,
        opts,
    );
    let mut times: Vec<f64> = (0..iters)
        .map(|_| {
            let start = Instant::now();
            compiler
                .compile_module(module)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.machine.name()));
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// Per-phase wall-time split and per-subphase self-time split
/// (milliseconds), both medians over `iters` traced runs. Phases come
/// from their trace spans summed per run; subphases from the profile
/// trie (`Record::Prof`), self time = total minus nested children,
/// summed across every trie path ending in the subphase name.
/// Per-phase and per-subphase `(name, milliseconds)` splits.
type PhaseSplits = (Vec<(&'static str, f64)>, Vec<(&'static str, f64)>);

fn phase_split(spec: &MachineSpec, module: &Module, indexed: bool, iters: usize) -> PhaseSplits {
    let opts = CompileOptions {
        trace: Some(TraceConfig::default()),
        ..options(1, indexed)
    };
    let compiler = Compiler::with_options(
        spec.machine.clone(),
        spec.escapes.clone(),
        StrategyKind::Ips,
        opts,
    );
    let mut per_phase: Vec<Vec<f64>> = vec![Vec::new(); PHASES.len()];
    let mut per_sub: Vec<Vec<f64>> = vec![Vec::new(); SUBPHASES.len()];
    for _ in 0..iters {
        let program = compiler
            .compile_module(module)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.machine.name()));
        let trace = program.trace.expect("trace was requested");
        for (pi, phase) in PHASES.iter().enumerate() {
            let total_us: u64 = trace
                .spans_named(phase)
                .iter()
                .filter_map(|r| match r {
                    Record::Span { dur_us, .. } => Some(*dur_us),
                    _ => None,
                })
                .sum();
            per_phase[pi].push(total_us as f64 / 1e3);
        }
        let mut self_us = vec![0u64; SUBPHASES.len()];
        for r in &trace.records {
            if let Record::Prof {
                path,
                total_us,
                child_us,
                ..
            } = r
            {
                let leaf = path.rsplit('/').next().unwrap_or(path);
                if let Some(si) = SUBPHASES.iter().position(|s| *s == leaf) {
                    self_us[si] += total_us.saturating_sub(*child_us);
                }
            }
        }
        for (si, us) in self_us.into_iter().enumerate() {
            per_sub[si].push(us as f64 / 1e3);
        }
    }
    let median = |names: &[&'static str], mut cols: Vec<Vec<f64>>| {
        names
            .iter()
            .zip(cols.iter_mut())
            .map(|(name, times)| {
                times.sort_by(|a, b| a.partial_cmp(b).unwrap());
                (*name, times[times.len() / 2])
            })
            .collect::<Vec<_>>()
    };
    (
        median(&PHASES[..], per_phase),
        median(&SUBPHASES[..], per_sub),
    )
}

struct Row {
    machine: String,
    workload: &'static str,
    functions: usize,
    serial_brute_ms: f64,
    serial_indexed_ms: f64,
    parallel4_ms: f64,
    /// Per-phase split of a serial indexed run (trace spans).
    phases: Vec<(&'static str, f64)>,
    /// Per-subphase self-time of the same run (profile trie).
    subphases: Vec<(&'static str, f64)>,
    /// The select phase alone, brute-force matching (trace spans).
    brute_select_ms: f64,
}

impl Row {
    fn indexed_select_ms(&self) -> f64 {
        self.phases
            .iter()
            .find(|(p, _)| *p == "select")
            .map(|(_, ms)| *ms)
            .unwrap_or(0.0)
    }
    /// Select-phase speedup from paired trace spans — end-to-end wall
    /// time is dominated by scheduling and allocation, so the phase
    /// spans are the signal.
    fn selection_speedup(&self) -> f64 {
        self.brute_select_ms / self.indexed_select_ms()
    }
    fn parallel_speedup(&self) -> f64 {
        self.serial_indexed_ms / self.parallel4_ms
    }
    fn functions_per_sec(&self) -> f64 {
        self.functions as f64 / (self.serial_indexed_ms / 1e3)
    }
}

fn bench_compile(iters: usize, out: &str) {
    let machines = marion_machines::load_extended();
    let workloads: Vec<(&'static str, Module)> = vec![
        (
            "livermore_combined",
            marion_workloads::multi::combined_livermore(),
        ),
        (
            "generated_combined",
            marion_workloads::multi::combined_generated(12, 42),
        ),
    ];
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);

    let mut rows = Vec::new();
    for spec in &machines {
        for (name, module) in &workloads {
            let serial_brute_ms = time_compile(spec, module, options(1, false), iters);
            let serial_indexed_ms = time_compile(spec, module, options(1, true), iters);
            let parallel4_ms = time_compile(spec, module, options(4, true), iters);
            let (phases, subphases) = phase_split(spec, module, true, iters);
            let brute_select_ms = phase_split(spec, module, false, iters)
                .0
                .iter()
                .find(|(p, _)| *p == "select")
                .map(|(_, ms)| *ms)
                .unwrap_or(0.0);
            rows.push(Row {
                machine: spec.machine.name().to_owned(),
                workload: name,
                functions: module.funcs.len(),
                serial_brute_ms,
                serial_indexed_ms,
                parallel4_ms,
                phases,
                subphases,
                brute_select_ms,
            });
        }
    }

    // Human-readable table.
    println!(
        "compile bench  (median of {iters}, strategy ips, {cores} core{} available)",
        if cores == 1 { "" } else { "s" }
    );
    println!(
        "{:<8} {:<20} {:>6} {:>10} {:>10} {:>10} {:>9} {:>9} {:>6} {:>6} {:>8}",
        "machine",
        "workload",
        "funcs",
        "brute ms",
        "idx ms",
        "j=4 ms",
        "sel-b ms",
        "sel-i ms",
        "sel x",
        "par x",
        "funcs/s"
    );
    for r in &rows {
        println!(
            "{:<8} {:<20} {:>6} {:>10.2} {:>10.2} {:>10.2} {:>9.2} {:>9.2} {:>6.2} {:>6.2} {:>8.0}",
            r.machine,
            r.workload,
            r.functions,
            r.serial_brute_ms,
            r.serial_indexed_ms,
            r.parallel4_ms,
            r.brute_select_ms,
            r.indexed_select_ms(),
            r.selection_speedup(),
            r.parallel_speedup(),
            r.functions_per_sec()
        );
    }
    let sel = marion_bench::geomean(&rows.iter().map(Row::selection_speedup).collect::<Vec<_>>());
    let par = marion_bench::geomean(&rows.iter().map(Row::parallel_speedup).collect::<Vec<_>>());
    println!("geomean select-phase speedup (indexed vs brute): {sel:.2}x");
    println!("geomean parallel speedup (jobs=4 vs jobs=1, indexed): {par:.2}x");

    let json = render_json(iters, cores, &rows, sel, par);
    std::fs::write(out, json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");
}

fn render_json(iters: usize, cores: usize, rows: &[Row], sel: f64, par: f64) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"compile\",");
    let _ = writeln!(s, "  \"strategy\": \"ips\",");
    let _ = writeln!(s, "  \"iterations\": {iters},");
    let _ = writeln!(s, "  \"available_parallelism\": {cores},");
    let _ = writeln!(s, "  \"geomean_select_phase_speedup\": {sel:.4},");
    let _ = writeln!(s, "  \"geomean_parallel_speedup_jobs4\": {par:.4},");
    s.push_str("  \"runs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"machine\": \"{}\",", r.machine);
        let _ = writeln!(s, "      \"workload\": \"{}\",", r.workload);
        let _ = writeln!(s, "      \"functions\": {},", r.functions);
        let _ = writeln!(s, "      \"serial_brute_ms\": {:.4},", r.serial_brute_ms);
        let _ = writeln!(
            s,
            "      \"serial_indexed_ms\": {:.4},",
            r.serial_indexed_ms
        );
        let _ = writeln!(s, "      \"parallel4_indexed_ms\": {:.4},", r.parallel4_ms);
        let _ = writeln!(s, "      \"brute_select_ms\": {:.4},", r.brute_select_ms);
        let _ = writeln!(
            s,
            "      \"indexed_select_ms\": {:.4},",
            r.indexed_select_ms()
        );
        let _ = writeln!(
            s,
            "      \"selection_speedup\": {:.4},",
            r.selection_speedup()
        );
        let _ = writeln!(
            s,
            "      \"parallel_speedup_jobs4\": {:.4},",
            r.parallel_speedup()
        );
        let _ = writeln!(
            s,
            "      \"functions_per_sec\": {:.2},",
            r.functions_per_sec()
        );
        s.push_str("      \"phase_ms\": {");
        for (j, (phase, ms)) in r.phases.iter().enumerate() {
            let _ = write!(s, "\"{phase}\": {ms:.4}");
            if j + 1 < r.phases.len() {
                s.push_str(", ");
            }
        }
        s.push_str("},\n");
        // Self-times under the noise floor are omitted (see
        // SUBPHASE_FLOOR_MS); the diff tool treats one-sided keys as
        // warnings, not regressions.
        s.push_str("      \"subphase_self_ms\": {");
        let kept: Vec<&(&str, f64)> = r
            .subphases
            .iter()
            .filter(|(_, ms)| *ms >= SUBPHASE_FLOOR_MS)
            .collect();
        for (j, (sub, ms)) in kept.iter().enumerate() {
            let _ = write!(s, "\"{sub}\": {ms:.4}");
            if j + 1 < kept.len() {
                s.push_str(", ");
            }
        }
        s.push_str("}\n");
        s.push_str(if i + 1 < rows.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Cold vs warm throughput of the compile service: the same
/// machine × strategy requests over the combined Livermore workload,
/// issued twice through the serve stream against one shared cache.
fn bench_serve(smoke: bool, out: &str) {
    let machines: Vec<&str> = if smoke {
        vec!["toyp", "r2000"]
    } else {
        marion_machines::EXTENDED.to_vec()
    };
    let strategies = [
        StrategyKind::Postpass,
        StrategyKind::Ips,
        StrategyKind::Rase,
    ];
    // Baseline passes run with observability off (no request tracing,
    // no access log) so cold/warm numbers measure the compile service
    // itself; the observability cost is measured separately below.
    let service = Service::new(&ServeConfig {
        exemplars: false,
        ..ServeConfig::default()
    })
    .expect("in-memory service");
    let mut requests = String::new();
    let mut pairs = Vec::new();
    for (i, machine) in machines.iter().enumerate() {
        for (j, strategy) in strategies.iter().enumerate() {
            let _ = writeln!(
                requests,
                "{{\"id\":{},\"machine\":\"{machine}\",\"strategy\":\"{}\",\"workload\":\"livermore\"}}",
                i * strategies.len() + j,
                strategy.name()
            );
            pairs.push((machine.to_string(), strategy.name()));
        }
    }

    // One worker and one pass per temperature: per-request wall times
    // then sum cleanly, with no queue or scheduler noise between them.
    let pass = |service: &Service, label: &str| -> Vec<(i64, i64, i64)> {
        let mut output: Vec<u8> = Vec::new();
        let stats = run_stream(service, requests.as_bytes(), &mut output, 1, 8)
            .unwrap_or_else(|e| panic!("{label} pass: {e}"));
        assert_eq!(stats.failures, 0, "{label} pass had failures");
        String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|line| {
                let fields = marion_trace::json::parse_flat(line).expect("response json");
                let get = |name: &str| {
                    fields
                        .iter()
                        .find(|(k, _)| k == name)
                        .and_then(|(_, v)| v.as_int())
                        .unwrap_or_else(|| panic!("{label} response missing {name}"))
                };
                (get("wall_us"), get("cache_hits"), get("cache_misses"))
            })
            .collect()
    };
    let cold = pass(&service, "cold");
    let warm = pass(&service, "warm");
    assert_eq!(cold.len(), pairs.len());
    assert_eq!(warm.len(), pairs.len());

    println!("serve bench  (combined Livermore, cold vs warm through the compile service)");
    println!(
        "{:<8} {:<9} {:>10} {:>10} {:>8} {:>10} {:>10}",
        "machine", "strategy", "cold ms", "warm ms", "speedup", "cold h/m", "warm h/m"
    );
    let mut speedups = Vec::new();
    for (i, (machine, strategy)) in pairs.iter().enumerate() {
        let (cw, ch, cm) = cold[i];
        let (ww, wh, wm) = warm[i];
        let speedup = cw as f64 / (ww.max(1)) as f64;
        speedups.push(speedup);
        println!(
            "{:<8} {:<9} {:>10.2} {:>10.2} {:>7.1}x {:>10} {:>10}",
            machine,
            strategy,
            cw as f64 / 1e3,
            ww as f64 / 1e3,
            speedup,
            format!("{ch}/{cm}"),
            format!("{wh}/{wm}")
        );
    }
    let geomean = marion_bench::geomean(&speedups);
    let cold_total: i64 = cold.iter().map(|(w, _, _)| w).sum();
    let warm_total: i64 = warm.iter().map(|(w, _, _)| w).sum();
    let total_speedup = cold_total as f64 / warm_total.max(1) as f64;
    println!("geomean warm speedup: {geomean:.1}x   total: {total_speedup:.1}x");

    // Honesty pass: the same warm requests through a service with full
    // observability (request tracing, tail sampling, access log) so
    // the recorded numbers include what the features cost, not just
    // what they provide. The observed service is primed cold first;
    // only its warm pass is compared against the baseline warm pass.
    let log_path = std::env::temp_dir().join(format!("marion-bench-access-{}", std::process::id()));
    let observed_service = Service::new(&ServeConfig {
        access_log: Some(log_path.clone()),
        ..ServeConfig::default()
    })
    .expect("observed service");
    let _ = pass(&observed_service, "observed-cold");
    let observed = pass(&observed_service, "observed-warm");
    let observed_total: i64 = observed.iter().map(|(w, _, _)| w).sum();
    let access_log_bytes = std::fs::metadata(&log_path).map(|m| m.len()).unwrap_or(0);
    std::fs::remove_file(&log_path).ok();
    let overhead_pct =
        (observed_total as f64 - warm_total as f64) * 100.0 / warm_total.max(1) as f64;
    println!(
        "observability overhead (warm, access log + tail sampling on): \
         {:.2} ms vs {:.2} ms baseline ({overhead_pct:+.1}%), {access_log_bytes} access-log bytes",
        observed_total as f64 / 1e3,
        warm_total as f64 / 1e3,
    );

    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"serve\",");
    let _ = writeln!(s, "  \"workload\": \"livermore_combined\",");
    let _ = writeln!(s, "  \"smoke\": {smoke},");
    let _ = writeln!(s, "  \"geomean_warm_speedup\": {geomean:.4},");
    let _ = writeln!(s, "  \"total_warm_speedup\": {total_speedup:.4},");
    let _ = writeln!(s, "  \"cold_total_ms\": {:.4},", cold_total as f64 / 1e3);
    let _ = writeln!(s, "  \"warm_total_ms\": {:.4},", warm_total as f64 / 1e3);
    let _ = writeln!(
        s,
        "  \"warm_observed_total_ms\": {:.4},",
        observed_total as f64 / 1e3
    );
    let _ = writeln!(s, "  \"observability_overhead_pct\": {overhead_pct:.4},");
    let _ = writeln!(s, "  \"access_log_bytes\": {access_log_bytes},");
    s.push_str("  \"runs\": [\n");
    for (i, (machine, strategy)) in pairs.iter().enumerate() {
        let (cw, ch, cm) = cold[i];
        let (ww, wh, wm) = warm[i];
        s.push_str("    {");
        let _ = write!(
            s,
            "\"machine\": \"{machine}\", \"strategy\": \"{strategy}\", \
             \"cold_ms\": {:.4}, \"warm_ms\": {:.4}, \"speedup\": {:.4}, \
             \"cold_hits\": {ch}, \"cold_misses\": {cm}, \
             \"warm_hits\": {wh}, \"warm_misses\": {wm}",
            cw as f64 / 1e3,
            ww as f64 / 1e3,
            cw as f64 / (ww.max(1)) as f64
        );
        s.push_str(if i + 1 < pairs.len() { "},\n" } else { "}\n" });
    }
    s.push_str("  ]\n}\n");
    std::fs::write(out, s).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");
}

/// The codegen-quality matrix: machines × strategies × workloads,
/// each cell one deterministic compile-and-simulate condensed into a
/// `ProgramQuality` row.
fn bench_quality(smoke: bool, out: &str) {
    let machines: Vec<&str> = if smoke {
        vec!["toyp", "r2000"]
    } else {
        marion_machines::EXTENDED.to_vec()
    };
    let workloads = if smoke {
        marion_bench::quality::smoke_workloads()
    } else {
        marion_bench::quality::full_workloads()
    };
    let runs = marion_bench::quality::sweep(&machines, &workloads);

    println!(
        "quality bench  ({} machines x {} strategies x {} workloads, deterministic cycles)",
        machines.len(),
        StrategyKind::ALL.len(),
        workloads.len()
    );
    println!(
        "{:<8} {:<9} {:<9} {:>10} {:>10} {:>9} {:>7} {:>7} {:>7}",
        "machine",
        "strategy",
        "workload",
        "sim cyc",
        "est cyc",
        "crit path",
        "drift%",
        "util",
        "stalls"
    );
    for run in &runs {
        let q = &run.quality;
        let t = q.total();
        println!(
            "{:<8} {:<9} {:<9} {:>10} {:>10} {:>9} {:>7.2} {:>7.3} {:>7}",
            q.machine,
            q.strategy,
            q.workload,
            q.sim_cycles,
            t.est_cycles,
            t.critical_path_cycles,
            q.drift_pct(),
            t.issue_utilization(),
            t.stalls.total()
        );
    }

    let json = marion_bench::quality::render_json(smoke, machines.len(), workloads.len(), &runs);
    std::fs::write(out, json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");
}

/// Compiles every bundled machine × workload under each matcher
/// configuration — indexed vs brute-force selection, memoized vs
/// unmemoized matching — and asserts the results are identical.
fn crosscheck() {
    let machines = marion_machines::load_extended();
    let mut workloads: Vec<(String, Module)> = marion_workloads::livermore::kernels()
        .iter()
        .chain(marion_workloads::suite::programs().iter())
        .map(|w| (w.name.clone(), w.module()))
        .collect();
    workloads.push((
        "livermore_combined".into(),
        marion_workloads::multi::combined_livermore(),
    ));
    workloads.push((
        "generated_combined".into(),
        marion_workloads::multi::combined_generated(12, 42),
    ));

    let mut checked = 0usize;
    for spec in &machines {
        for (name, module) in &workloads {
            for strategy in [
                StrategyKind::Postpass,
                StrategyKind::Ips,
                StrategyKind::Rase,
            ] {
                let compile = |indexed: bool, memo: bool| {
                    Compiler::with_options(
                        spec.machine.clone(),
                        spec.escapes.clone(),
                        strategy,
                        CompileOptions {
                            memo_select: memo,
                            ..options(1, indexed)
                        },
                    )
                    .compile_module(module)
                    .unwrap_or_else(|e| panic!("{} on {}: {e}", name, spec.machine.name()))
                };
                let baseline = compile(true, true);
                for (label, variant) in [
                    ("brute-force selection", compile(false, true)),
                    ("unmemoized matching", compile(true, false)),
                ] {
                    if baseline.render(&spec.machine) != variant.render(&spec.machine)
                        || baseline.stats != variant.stats
                    {
                        eprintln!(
                            "CROSSCHECK FAILED: {} on {} ({strategy:?}): {label} diverges \
                             from the indexed memoized baseline",
                            name,
                            spec.machine.name()
                        );
                        std::process::exit(1);
                    }
                }
                checked += 1;
            }
        }
    }
    println!(
        "crosscheck ok: {checked} machine x workload x strategy combinations, \
         indexed == brute-force, memoized == unmemoized"
    );
}
