//! Table 3 — time spent compiling the program suite, plus dilation.
//!
//! The paper compiled its suite (NAS Kernel, SPHOT, ARC2D, Lcc) for
//! the R2000 and the i860 with all three strategies and reported back
//! end time and dilation (instructions executed / instructions
//! generated). Expected shape: Postpass < IPS < RASE in compile time
//! (IPS schedules twice, RASE four times in effect) and i860
//! compilation roughly twice the R2000's (temporal registers, classes
//! and sub-operations).

use marion_bench::{measure, row};
use marion_core::StrategyKind;
use marion_sim::SimConfig;
use std::time::Duration;

fn main() {
    let config = SimConfig::default();
    let suite = marion_workloads::suite::programs();
    println!("Table 3: back-end compile time for the program suite + dilation");
    println!("(paper shape: Postpass < IPS < RASE; i860 ≈ 2x R2000)");
    println!();
    let widths = [7usize, 10, 14, 12];
    println!(
        "{}",
        row(
            &[
                "target".into(),
                "strategy".into(),
                "time (ms)".into(),
                "dilation".into()
            ],
            &widths
        )
    );
    for machine in ["r2000", "i860"] {
        let spec = marion_machines::load(machine);
        for strategy in StrategyKind::ALL {
            let mut total = Duration::ZERO;
            let mut executed = 0u64;
            let mut generated = 0usize;
            // Compile the whole suite several times so the clock sees
            // more than noise.
            const REPS: u32 = 5;
            for _ in 0..REPS {
                for w in &suite {
                    let m = measure(&spec, strategy, w, &config);
                    total += m.compile_time;
                    executed += m.run.insts_executed;
                    generated += m.program.asm.inst_count();
                }
            }
            println!(
                "{}",
                row(
                    &[
                        machine.into(),
                        strategy.name().into(),
                        format!("{:.1}", total.as_secs_f64() * 1000.0),
                        format!("{:.2}", executed as f64 / generated as f64),
                    ],
                    &widths
                )
            );
        }
    }
}
