//! The compile service: JSONL request/response plumbing shared by the
//! `marion-serve` daemon, `marion-bench serve`, and the tests.
//!
//! ## Protocol
//!
//! One request per line, in the workspace's flat-JSON dialect
//! (`marion_trace::json` — scalar values only):
//!
//! ```text
//! {"id":1,"cmd":"compile","machine":"r2000","strategy":"IPS","workload":"livermore"}
//! {"id":2,"cmd":"compile","machine":"toyp","strategy":"Postpass","source":"int main(){return 7;}","emit_asm":1}
//! {"id":3,"cmd":"stats"}
//! {"id":4,"cmd":"shutdown"}
//! ```
//!
//! Requests: `cmd` is `compile` (default), `stats`, `metrics`,
//! `machines`, `capabilities`, `dashboard`, or `shutdown`. `compile`
//! takes a `machine` name, a `strategy` name, and either a named
//! `workload` (`livermore` for the combined Livermore suite, or
//! `gen:<count>:<seed>` for the deterministic generator) or inline C
//! `source`; `emit_asm:1` adds the rendered assembly to the response.
//! `metrics` answers a service-level snapshot — request counts,
//! queue-wait and service-time log2 histograms with p50/p90/p99,
//! rolling-window rates and percentiles, SLO budget/burn figures, live
//! queue-depth and busy-worker gauges, cache rates — without
//! disturbing in-flight work. `machines` lists the supported machines,
//! strategies, and protocol/cache-format versions. `dashboard` returns
//! a self-contained HTML status page (inline CSS/SVG only) as a
//! JSON-escaped `html` field.
//!
//! Responses stream back in request order, one line each. Every
//! response carries a server-assigned, stable `request_id` (`"r<n>"`)
//! for correlation with the access log:
//!
//! ```text
//! {"id":1,"request_id":"r1","ok":1,"machine":"r2000","strategy":"IPS",
//!  "funcs":15,"insts":…,"spills":…,"estimated_cycles":…,"nops":…,
//!  "cache_hits":0,"cache_misses":15,"wall_us":…}
//! ```
//!
//! Failures respond `{"id":…,"request_id":…,"ok":0,"error":"…"}` — a
//! bad request never kills the stream. `shutdown` answers, stops
//! reading, and drains every request already queued before returning.
//!
//! ## Observability
//!
//! With `ServeConfig::access_log` set, every request served through
//! [`run_stream`] appends exactly one JSONL line to the access log —
//! the line count always equals the requests served — rotating
//! `PATH` → `PATH.1` when `access_log_max_bytes` would be exceeded.
//! With `exemplars` on (the default), compiles are traced and a tail
//! sampler keeps the K slowest requests per window with their full
//! `TraceData`, which the `dashboard` page renders as per-request
//! flamegraphs. Declarative SLOs ([`parse_slos`]) are evaluated over
//! the rolling [`TimeSeries`] windows; see DESIGN.md "Metrics model"
//! for the exact semantics.

use marion_core::{CompileOptions, Compiler, FuncCache, StrategyKind};
use marion_trace::json::{parse_flat, ObjWriter};
use marion_trace::{Histogram, TimeSeries, TraceConfig, TraceData, Value};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, BufRead, Write};
use std::num::NonZeroUsize;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

/// Version of the request/response protocol described in the module
/// docs. Bumped on incompatible changes; reported by `machines`.
pub const PROTOCOL_VERSION: i64 = 1;

/// Version of the `metrics` response schema, reported as
/// `format_version` so archived snapshots are self-describing.
/// 2 added uptime/started/windowed/SLO fields.
pub const METRICS_FORMAT_VERSION: i64 = 2;

/// Rolling windows aggregated for the `win_*` metrics fields and the
/// SLO burn rate ("latency over the last ~10 windows").
pub const SLO_RECENT_WINDOWS: usize = 10;

/// How to build a [`Service`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Consult the content-addressed compile cache (on by default).
    pub cache: bool,
    /// Maximum cached functions.
    pub cache_capacity: usize,
    /// Optional JSONL disk store for the cache (write-through;
    /// existing verified entries warm the cache at startup).
    pub cache_disk: Option<PathBuf>,
    /// Per-compile worker threads inside `compile_module`. Defaults to
    /// 1: the service already parallelises across requests, and nested
    /// pools oversubscribe.
    pub jobs: Option<NonZeroUsize>,
    /// Append one JSONL line per served request to this path.
    pub access_log: Option<PathBuf>,
    /// Rotate the access log (`PATH` → `PATH.1`) before exceeding this
    /// many bytes. Default 4 MiB.
    pub access_log_max_bytes: u64,
    /// Trace compiles and keep tail-sampled exemplars for the
    /// `dashboard` command (on by default).
    pub exemplars: bool,
    /// Slowest requests kept per window by the tail sampler.
    pub tail_k: usize,
    /// Width of one rolling metrics window, in milliseconds.
    pub window_ms: u64,
    /// Rolling windows retained.
    pub windows: usize,
    /// Service-level objectives evaluated over the rolling windows
    /// ([`parse_slos`]).
    pub slos: Vec<Slo>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            cache: true,
            cache_capacity: 4096,
            cache_disk: None,
            jobs: NonZeroUsize::new(1),
            access_log: None,
            access_log_max_bytes: 4 << 20,
            exemplars: true,
            tail_k: 4,
            window_ms: 1000,
            windows: 60,
            slos: Vec::new(),
        }
    }
}

/// One declarative service-level objective.
#[derive(Debug, Clone, PartialEq)]
pub struct Slo {
    /// The spec key, e.g. `p99_ms` or `error_rate` — used for the
    /// `slo_<name>_*` metrics fields.
    pub name: String,
    /// The spec value as written (ms for latency objectives, a
    /// fraction for `error_rate`) — echoed as `slo_<name>_target`.
    pub target: f64,
    /// What to evaluate.
    pub kind: SloKind,
}

/// The objective kind.
#[derive(Debug, Clone, PartialEq)]
pub enum SloKind {
    /// `p<q>_ms=<t>`: at least `q`% of requests must finish within
    /// `threshold_us`. The error budget is the `1 − q` tail.
    LatencyQuantile {
        /// Quantile as a fraction in (0, 1).
        q: f64,
        /// Latency threshold in microseconds.
        threshold_us: u64,
    },
    /// `error_rate=<r>` (or `<r>%`): at most this fraction of requests
    /// may fail.
    ErrorRate {
        /// Allowed failure fraction in (0, 1].
        max_rate: f64,
    },
}

/// Parses a `--slo` spec: comma-separated `name=value` objectives,
/// e.g. `p99_ms=50,error_rate=0.1%`. Latency objectives are `p<q>_ms`
/// with `0 < q < 100`; `error_rate` takes a fraction or a percentage.
///
/// # Errors
///
/// A human-readable message naming the offending objective.
pub fn parse_slos(spec: &str) -> Result<Vec<Slo>, String> {
    let mut out = Vec::new();
    for part in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let (name, value) = part
            .split_once('=')
            .ok_or_else(|| format!("SLO `{part}` must be `name=value`"))?;
        let (name, value) = (name.trim(), value.trim());
        let bad = |what: &str| format!("SLO `{name}`: bad {what} `{value}`");
        let (target, kind) = if let Some(q) = name
            .strip_prefix('p')
            .and_then(|rest| rest.strip_suffix("_ms"))
        {
            let q: f64 = q.parse().map_err(|_| bad("quantile"))?;
            if !(0.0..100.0).contains(&q) || q == 0.0 {
                return Err(format!("SLO `{name}`: quantile must be in (0, 100)"));
            }
            let ms: f64 = value.parse().map_err(|_| bad("threshold"))?;
            if !(0.0..=f64::MAX).contains(&ms) {
                return Err(bad("threshold"));
            }
            (
                ms,
                SloKind::LatencyQuantile {
                    q: q / 100.0,
                    threshold_us: (ms * 1000.0) as u64,
                },
            )
        } else if name == "error_rate" {
            let rate = match value.strip_suffix('%') {
                Some(pct) => pct.parse::<f64>().map_err(|_| bad("rate"))? / 100.0,
                None => value.parse::<f64>().map_err(|_| bad("rate"))?,
            };
            if !(rate > 0.0 && rate <= 1.0) {
                return Err(format!("SLO `{name}`: rate must be in (0, 1]"));
            }
            (rate, SloKind::ErrorRate { max_rate: rate })
        } else {
            return Err(format!("unknown SLO `{name}` (have: p<q>_ms, error_rate)"));
        };
        out.push(Slo {
            name: name.to_string(),
            target,
            kind,
        });
    }
    Ok(out)
}

/// A parsed request line.
#[derive(Debug, Clone)]
pub struct Request {
    /// Echoed back in the response for correlation.
    pub id: i64,
    /// `compile`, `stats`, `metrics`, `machines`, `capabilities`, or
    /// `shutdown`.
    pub cmd: Cmd,
    /// Target machine name (`marion_machines::EXTENDED`).
    pub machine: String,
    /// Strategy name ([`StrategyKind::parse`]).
    pub strategy: String,
    /// Inline C source to compile.
    pub source: Option<String>,
    /// Named workload (`livermore` or `gen:<count>:<seed>`).
    pub workload: Option<String>,
    /// Include rendered assembly in the response.
    pub emit_asm: bool,
}

/// The request verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmd {
    /// Compile a module and report statistics.
    Compile,
    /// Report service-level cache statistics.
    Stats,
    /// Report a request-latency and utilization snapshot.
    Metrics,
    /// List machines, strategies, and protocol/format versions.
    Machines,
    /// Per-machine detail: issue width, temporal clocks, and register
    /// classes for every served target.
    Capabilities,
    /// Self-contained HTML status page (sparklines, SLOs, exemplar
    /// flamegraphs) as a JSON-escaped `html` field.
    Dashboard,
    /// Answer, then stop reading and drain the queue.
    Shutdown,
}

/// Parses one request line.
///
/// # Errors
///
/// A human-readable message for malformed JSON or an unknown `cmd`.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let fields = parse_flat(line)?;
    let get_str = |name: &str| {
        fields
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_str())
    };
    let get_int = |name: &str| {
        fields
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_int())
    };
    let cmd = match get_str("cmd").unwrap_or("compile") {
        "compile" => Cmd::Compile,
        "stats" => Cmd::Stats,
        "metrics" => Cmd::Metrics,
        "machines" => Cmd::Machines,
        "capabilities" => Cmd::Capabilities,
        "dashboard" => Cmd::Dashboard,
        "shutdown" => Cmd::Shutdown,
        other => return Err(format!("unknown cmd `{other}`")),
    };
    Ok(Request {
        id: get_int("id").unwrap_or(0),
        cmd,
        machine: get_str("machine").unwrap_or("r2000").to_string(),
        strategy: get_str("strategy").unwrap_or("IPS").to_string(),
        source: get_str("source").map(str::to_string),
        workload: get_str("workload").map(str::to_string),
        emit_asm: get_int("emit_asm").unwrap_or(0) != 0,
    })
}

/// What one handled request contributed: stream accounting plus the
/// request-scoped detail the access log and tail sampler consume.
#[derive(Debug, Clone, Default)]
pub struct Outcome {
    /// Server-assigned request id (echoed as `"r<n>"`).
    pub request_id: u64,
    /// The client's `id` field.
    pub client_id: i64,
    /// The request verb as served (`"invalid"` for unparsable lines).
    pub cmd: &'static str,
    /// Target machine (empty for non-compile requests).
    pub machine: String,
    /// Strategy name (empty for non-compile requests).
    pub strategy: String,
    /// Functions in the compiled module.
    pub funcs: u64,
    /// Functions served from the cache.
    pub cache_hits: u64,
    /// Functions compiled cold.
    pub cache_misses: u64,
    /// The request failed.
    pub failed: bool,
    /// Per-request trace (compiles with exemplars enabled), consumed
    /// by the tail sampler.
    pub trace: Option<TraceData>,
}

fn outcome(request_id: u64, client_id: i64, cmd: &'static str) -> Outcome {
    Outcome {
        request_id,
        client_id,
        cmd,
        ..Outcome::default()
    }
}

/// Totals for one [`run_stream`] call.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeStats {
    /// Requests answered.
    pub requests: u64,
    /// Requests that answered `ok:0`.
    pub failures: u64,
    /// Cache hits across all compiles.
    pub cache_hits: u64,
    /// Cache misses across all compiles.
    pub cache_misses: u64,
}

/// Service-level metrics: live gauges (lock-free atomics, safe to
/// touch from the stream's hot path) plus request counters, latency
/// histograms, and the rolling [`TimeSeries`] — all guarded by one
/// mutex.
///
/// Holding `requests`, the service-time histogram, and the time
/// series under the same lock is what makes the snapshot exact: the
/// sum of the service-time bucket counts always equals the number of
/// requests served, with no torn reads between them.
pub struct Metrics {
    origin: Instant,
    window_ms: u64,
    queue_depth: AtomicI64,
    busy_workers: AtomicI64,
    workers: AtomicI64,
    started: AtomicU64,
    inner: Mutex<MetricsInner>,
}

struct MetricsInner {
    requests: u64,
    failures: u64,
    queue_wait_us: Histogram,
    service_us: Histogram,
    /// Per-window service-time samples (count, sum, max, histogram).
    service_ts: TimeSeries,
    /// Per request: value 1 when failed, 0 when ok — window `count` is
    /// requests, window `sum` is failures.
    error_ts: TimeSeries,
    /// Per-window function-level cache hits (`count == sum`).
    hit_ts: TimeSeries,
    /// Per-window function-level cache misses.
    miss_ts: TimeSeries,
}

/// A consistent point-in-time copy of [`Metrics`].
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Requests fully served (== `service_us.count()`).
    pub requests: u64,
    /// Requests that answered `ok:0`.
    pub failures: u64,
    /// Requests dequeued for service, including in-flight ones
    /// (`started - requests` is the in-flight count).
    pub started: u64,
    /// Microseconds since the service was built.
    pub uptime_us: u64,
    /// Milliseconds since the service was built (the time-series tick
    /// of this snapshot).
    pub now_ms: u64,
    /// Width of one rolling window, in milliseconds.
    pub window_ms: u64,
    /// Requests currently waiting in the queue.
    pub queue_depth: i64,
    /// Workers currently inside `handle_line`.
    pub busy_workers: i64,
    /// Worker threads configured for the current stream.
    pub workers: i64,
    /// Time from enqueue to dequeue, in microseconds.
    pub queue_wait_us: Histogram,
    /// Time inside `handle_line`, in microseconds.
    pub service_us: Histogram,
    /// Rolling per-window service-time series.
    pub service_ts: TimeSeries,
    /// Rolling per-window failure series (count=requests,
    /// sum=failures).
    pub error_ts: TimeSeries,
    /// Rolling per-window cache-hit series.
    pub hit_ts: TimeSeries,
    /// Rolling per-window cache-miss series.
    pub miss_ts: TimeSeries,
}

/// Aggregates over the most recent rolling windows of a
/// [`MetricsSnapshot`] — the `win_*` fields of the `metrics` response.
#[derive(Debug, Clone, Default)]
pub struct Windowed {
    /// Windows actually covered (capped by uptime).
    pub windows: usize,
    /// Seconds those windows span.
    pub covered_s: f64,
    /// Requests completed in the covered windows.
    pub requests: u64,
    /// Failures in the covered windows.
    pub failures: u64,
    /// Function-level cache hits in the covered windows.
    pub cache_hits: u64,
    /// Function-level cache misses in the covered windows.
    pub cache_misses: u64,
    /// Requests per second over the covered span.
    pub rps: f64,
    /// Cache hit fraction (0 when no cache traffic).
    pub hit_rate: f64,
    /// Failure fraction (0 when no requests).
    pub error_rate: f64,
    /// Windowed service-time p50 (absent when no requests).
    pub p50_us: Option<u64>,
    /// Windowed service-time p99.
    pub p99_us: Option<u64>,
}

impl Metrics {
    fn new(window_ms: u64, windows: usize) -> Metrics {
        let ts = || TimeSeries::new(window_ms.max(1), windows.max(1));
        Metrics {
            origin: Instant::now(),
            window_ms: window_ms.max(1),
            queue_depth: AtomicI64::new(0),
            busy_workers: AtomicI64::new(0),
            workers: AtomicI64::new(0),
            started: AtomicU64::new(0),
            inner: Mutex::new(MetricsInner {
                requests: 0,
                failures: 0,
                queue_wait_us: Histogram::new(),
                service_us: Histogram::new(),
                service_ts: ts(),
                error_ts: ts(),
                hit_ts: ts(),
                miss_ts: ts(),
            }),
        }
    }

    /// Microseconds since the service was built (the monotonic offset
    /// used by access-log timestamps).
    pub fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    /// Records one completed request. Counters, histograms, and time
    /// series all move under a single lock, so snapshots never see a
    /// request counted but not yet observed (or vice versa).
    fn record(&self, queue_wait_us: u64, service_us: u64, outcome: &Outcome) {
        let now_ms = self.now_us() / 1000;
        let mut inner = self.inner.lock().unwrap();
        inner.requests += 1;
        inner.failures += outcome.failed as u64;
        inner.queue_wait_us.record(queue_wait_us);
        inner.service_us.record(service_us);
        inner.service_ts.record(now_ms, service_us);
        inner.error_ts.record(now_ms, outcome.failed as u64);
        if outcome.cache_hits > 0 {
            inner.hit_ts.record_n(now_ms, 1, outcome.cache_hits);
        }
        if outcome.cache_misses > 0 {
            inner.miss_ts.record_n(now_ms, 1, outcome.cache_misses);
        }
    }

    /// A consistent snapshot; gauges are read alongside the locked
    /// counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        let uptime_us = self.now_us();
        MetricsSnapshot {
            requests: inner.requests,
            failures: inner.failures,
            started: self.started.load(Ordering::Relaxed).max(inner.requests),
            uptime_us,
            now_ms: uptime_us / 1000,
            window_ms: self.window_ms,
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            busy_workers: self.busy_workers.load(Ordering::Relaxed),
            workers: self.workers.load(Ordering::Relaxed),
            queue_wait_us: inner.queue_wait_us.clone(),
            service_us: inner.service_us.clone(),
            service_ts: inner.service_ts.clone(),
            error_ts: inner.error_ts.clone(),
            hit_ts: inner.hit_ts.clone(),
            miss_ts: inner.miss_ts.clone(),
        }
    }
}

impl Default for Metrics {
    fn default() -> Metrics {
        let d = ServeConfig::default();
        Metrics::new(d.window_ms, d.windows)
    }
}

impl MetricsSnapshot {
    /// Aggregates over the last `n` rolling windows (capped by the
    /// windows that have actually elapsed since startup, so rates are
    /// never diluted by time the daemon has not lived).
    pub fn windowed(&self, n: usize) -> Windowed {
        let elapsed_windows = (self.now_ms / self.window_ms) as usize + 1;
        let covered = n.max(1).min(elapsed_windows);
        let service = self.service_ts.recent(self.now_ms, covered);
        let errors = self.error_ts.recent(self.now_ms, covered);
        let hits = self.hit_ts.recent(self.now_ms, covered).sum;
        let misses = self.miss_ts.recent(self.now_ms, covered).sum;
        let covered_s = covered as f64 * self.window_ms as f64 / 1000.0;
        let frac = |num: u64, den: u64| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        };
        Windowed {
            windows: covered,
            covered_s,
            requests: service.count,
            failures: errors.sum,
            cache_hits: hits,
            cache_misses: misses,
            rps: service.count as f64 / covered_s,
            hit_rate: frac(hits, hits + misses),
            error_rate: frac(errors.sum, errors.count),
            p50_us: service.hist.percentile(0.50),
            p99_us: service.hist.percentile(0.99),
        }
    }
}

/// One evaluated objective.
#[derive(Debug, Clone)]
pub struct SloEval {
    /// The objective.
    pub slo: Slo,
    /// Requests that violated the objective, over the retained
    /// horizon.
    pub bad: u64,
    /// Requests considered.
    pub total: u64,
    /// Fraction of the error budget consumed over the retained
    /// horizon (`bad_rate / allowed_rate`; > 1 means violated).
    pub budget_used: f64,
    /// Same ratio over the last [`SLO_RECENT_WINDOWS`] windows — how
    /// fast the budget is burning *right now* (1.0 = exactly on
    /// budget).
    pub burn_rate: f64,
    /// `budget_used > 1`.
    pub violated: bool,
}

/// Splits a latency histogram at `threshold_us`: samples whose bucket
/// upper bound is within the threshold are good; a bucket straddling
/// the threshold counts entirely against the budget (conservative —
/// see DESIGN.md).
fn split_latency(hist: &Histogram, threshold_us: u64) -> (u64, u64) {
    let (mut good, mut bad) = (0u64, 0u64);
    for (i, &c) in hist.counts().iter().enumerate() {
        if c == 0 {
            continue;
        }
        if marion_trace::hist::bucket_max(i) <= threshold_us {
            good += c;
        } else {
            bad += c;
        }
    }
    (good, bad)
}

/// Evaluates objectives against a snapshot's rolling windows: the
/// budget over the full retained horizon, the burn rate over the last
/// [`SLO_RECENT_WINDOWS`] windows. An empty horizon evaluates to a
/// clean slate (nothing violated).
pub fn evaluate_slos(snap: &MetricsSnapshot, slos: &[Slo]) -> Vec<SloEval> {
    let frac = |bad: u64, total: u64| {
        if total == 0 {
            0.0
        } else {
            bad as f64 / total as f64
        }
    };
    slos.iter()
        .map(|slo| {
            let (bad, total, recent_bad, recent_total, allowed) = match &slo.kind {
                SloKind::LatencyQuantile { q, threshold_us } => {
                    let horizon = snap.service_ts.horizon();
                    let recent = snap.service_ts.recent(snap.now_ms, SLO_RECENT_WINDOWS);
                    let (good, bad) = split_latency(&horizon.hist, *threshold_us);
                    let (rgood, rbad) = split_latency(&recent.hist, *threshold_us);
                    (bad, good + bad, rbad, rgood + rbad, 1.0 - q)
                }
                SloKind::ErrorRate { max_rate } => {
                    let horizon = snap.error_ts.horizon();
                    let recent = snap.error_ts.recent(snap.now_ms, SLO_RECENT_WINDOWS);
                    (
                        horizon.sum,
                        horizon.count,
                        recent.sum,
                        recent.count,
                        *max_rate,
                    )
                }
            };
            let budget_used = frac(bad, total) / allowed;
            SloEval {
                slo: slo.clone(),
                bad,
                total,
                budget_used,
                burn_rate: frac(recent_bad, recent_total) / allowed,
                violated: budget_used > 1.0,
            }
        })
        .collect()
}

/// Scans a flat-parsed `metrics` response for SLO verdicts, returning
/// the violated objective names. Used by `marion-report --check-slo`.
///
/// # Errors
///
/// When the line carries no SLO fields at all (the server was not
/// started with `--slo`, or the line is not a metrics response).
pub fn check_slo_fields(fields: &[(String, Value)]) -> Result<Vec<String>, String> {
    if !fields.iter().any(|(k, _)| k == "slo_count") {
        return Err(
            "no SLO fields in metrics line (was marion-serve started with --slo?)".to_string(),
        );
    }
    Ok(fields
        .iter()
        .filter_map(|(k, v)| {
            let name = k.strip_prefix("slo_")?.strip_suffix("_violated")?;
            (v.as_int() == Some(1)).then(|| name.to_string())
        })
        .collect())
}

/// A bounded JSONL access log: one line per served request, rotated
/// `PATH` → `PATH.1` (one rotated generation kept) before the active
/// file would exceed `max_bytes`. Writes are whole lines, so a reader
/// can `wc -l` mid-run and always see complete records.
struct AccessLog {
    path: PathBuf,
    file: std::fs::File,
    bytes: u64,
    max_bytes: u64,
    rotations: u64,
}

impl AccessLog {
    fn create(path: &Path, max_bytes: u64) -> io::Result<AccessLog> {
        Ok(AccessLog {
            path: path.to_path_buf(),
            file: std::fs::File::create(path)?,
            bytes: 0,
            max_bytes: max_bytes.max(1),
            rotations: 0,
        })
    }

    fn write_line(&mut self, line: &str) -> io::Result<()> {
        let len = line.len() as u64 + 1;
        if self.bytes > 0 && self.bytes + len > self.max_bytes {
            let rotated = PathBuf::from(format!("{}.1", self.path.display()));
            std::fs::rename(&self.path, &rotated)?;
            self.file = std::fs::File::create(&self.path)?;
            self.bytes = 0;
            self.rotations += 1;
        }
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.bytes += len;
        Ok(())
    }
}

/// One tail-sampled slow request: the access-log facts plus the full
/// per-request trace, so a latency outlier links to its flamegraph.
#[derive(Debug, Clone)]
pub struct Exemplar {
    /// Server-assigned request id.
    pub request_id: u64,
    /// The client's `id` field.
    pub client_id: i64,
    /// Target machine.
    pub machine: String,
    /// Strategy name.
    pub strategy: String,
    /// Functions compiled.
    pub funcs: u64,
    /// Queue wait, microseconds.
    pub queue_wait_us: u64,
    /// Service time, microseconds.
    pub service_us: u64,
    /// Function-level cache hits.
    pub cache_hits: u64,
    /// Function-level cache misses.
    pub cache_misses: u64,
    /// Absolute rolling-window id the request completed in.
    pub window: u64,
    /// The request's trace (spans/prof cold; counters only when every
    /// function replayed from the cache — cached entries carry no
    /// timing).
    pub trace: TraceData,
}

/// Rolling windows retained by the tail sampler beyond the current
/// one, so an outlier survives long enough to be inspected.
const TAIL_KEEP_WINDOWS: usize = 4;

/// Keeps the `k` slowest traced requests per rolling window, plus the
/// last [`TAIL_KEEP_WINDOWS`] windows' survivors.
struct TailSampler {
    k: usize,
    window_ms: u64,
    cur_window: u64,
    cur: Vec<Exemplar>,
    recent: VecDeque<Vec<Exemplar>>,
}

impl TailSampler {
    fn new(k: usize, window_ms: u64) -> TailSampler {
        TailSampler {
            k,
            window_ms: window_ms.max(1),
            cur_window: 0,
            cur: Vec::new(),
            recent: VecDeque::new(),
        }
    }

    fn offer(&mut self, now_ms: u64, mut ex: Exemplar) {
        if self.k == 0 {
            return;
        }
        let window = now_ms / self.window_ms;
        ex.window = window;
        if window > self.cur_window {
            if !self.cur.is_empty() {
                self.recent.push_front(std::mem::take(&mut self.cur));
                while self.recent.len() > TAIL_KEEP_WINDOWS {
                    self.recent.pop_back();
                }
            }
            self.cur_window = window;
        }
        // Keep `cur` sorted slowest-first and bounded at k.
        let pos = self
            .cur
            .iter()
            .position(|e| e.service_us < ex.service_us)
            .unwrap_or(self.cur.len());
        if pos < self.k {
            self.cur.insert(pos, ex);
            self.cur.truncate(self.k);
        }
    }

    /// All retained exemplars, slowest first.
    fn exemplars(&self) -> Vec<Exemplar> {
        let mut all: Vec<Exemplar> = self
            .cur
            .iter()
            .chain(self.recent.iter().flatten())
            .cloned()
            .collect();
        all.sort_by_key(|e| std::cmp::Reverse(e.service_us));
        all
    }
}

/// One sparkline: a fixed-shape array of per-window values, oldest
/// first (empty windows are zero).
#[derive(Debug, Clone)]
pub struct SeriesView {
    /// Display title, unit included.
    pub title: String,
    /// Per-window values, oldest first.
    pub points: Vec<f64>,
}

/// Everything `html::render_dashboard` needs, assembled by
/// [`Service::dashboard_data`].
#[derive(Debug, Clone)]
pub struct DashboardData {
    /// The metrics snapshot the page was built from.
    pub snap: MetricsSnapshot,
    /// Aggregates over the last [`SLO_RECENT_WINDOWS`] windows.
    pub windowed: Windowed,
    /// Sparkline series (requests/s, p99, p50, hit rate, error rate).
    pub series: Vec<SeriesView>,
    /// Evaluated objectives.
    pub slos: Vec<SloEval>,
    /// Tail-sampled slow requests, slowest first.
    pub exemplars: Vec<Exemplar>,
    /// Lifetime cache hit rate, when the cache is enabled.
    pub cache_hit_rate: Option<f64>,
}

/// The compile service: compilers and parsed modules are built once
/// and shared; compiled functions come from the content-addressed
/// cache when enabled. `Service` is `Sync` — share one instance across
/// however many worker threads or connections you like.
pub struct Service {
    cache: Option<Arc<FuncCache>>,
    jobs: Option<NonZeroUsize>,
    compilers: Mutex<HashMap<(String, String), Arc<Compiler>>>,
    modules: Mutex<HashMap<String, Arc<marion_ir::Module>>>,
    metrics: Metrics,
    exemplars_on: bool,
    slos: Vec<Slo>,
    next_request_id: AtomicU64,
    access: Option<Mutex<AccessLog>>,
    tail: Mutex<TailSampler>,
}

impl Service {
    /// Builds a service (opening the disk store and access log when
    /// configured).
    ///
    /// # Errors
    ///
    /// I/O failures opening the disk store or creating the access log.
    pub fn new(config: &ServeConfig) -> io::Result<Service> {
        let cache = if config.cache {
            Some(match &config.cache_disk {
                Some(path) => {
                    let (cache, _load) = FuncCache::with_disk(config.cache_capacity, path)?;
                    Arc::new(cache)
                }
                None => Arc::new(FuncCache::in_memory(config.cache_capacity)),
            })
        } else {
            None
        };
        let access = match &config.access_log {
            Some(path) => Some(Mutex::new(AccessLog::create(
                path,
                config.access_log_max_bytes,
            )?)),
            None => None,
        };
        Ok(Service {
            cache,
            jobs: config.jobs,
            compilers: Mutex::new(HashMap::new()),
            modules: Mutex::new(HashMap::new()),
            metrics: Metrics::new(config.window_ms, config.windows),
            exemplars_on: config.exemplars,
            slos: config.slos.clone(),
            next_request_id: AtomicU64::new(0),
            access,
            tail: Mutex::new(TailSampler::new(config.tail_k, config.window_ms)),
        })
    }

    /// The shared compile cache, if enabled.
    pub fn cache(&self) -> Option<&Arc<FuncCache>> {
        self.cache.as_ref()
    }

    /// The service-level metrics (cumulative across streams).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The configured objectives.
    pub fn slos(&self) -> &[Slo] {
        &self.slos
    }

    /// Records a completed request everywhere at once: metrics (and
    /// time series), one access-log line, and — when the outcome
    /// carries a trace — the tail sampler. [`run_stream`] calls this
    /// exactly once per request, which is what makes "access-log lines
    /// == requests served" exact.
    pub fn observe_request(&self, queue_wait_us: u64, service_us: u64, outcome: &mut Outcome) {
        self.metrics.record(queue_wait_us, service_us, outcome);
        let now_us = self.metrics.now_us();
        if let Some(access) = &self.access {
            let mut obj = ObjWriter::new();
            obj.str("request_id", &format!("r{}", outcome.request_id));
            obj.int("id", outcome.client_id);
            obj.int("ts_us", i64::try_from(now_us).unwrap_or(i64::MAX));
            obj.str("cmd", outcome.cmd);
            obj.str("machine", &outcome.machine);
            obj.str("strategy", &outcome.strategy);
            obj.int("funcs", outcome.funcs as i64);
            obj.int(
                "queue_wait_us",
                i64::try_from(queue_wait_us).unwrap_or(i64::MAX),
            );
            obj.int("service_us", i64::try_from(service_us).unwrap_or(i64::MAX));
            obj.int("cache_hits", outcome.cache_hits as i64);
            obj.int("cache_misses", outcome.cache_misses as i64);
            obj.int("ok", (!outcome.failed) as i64);
            let line = obj.finish();
            let mut log = access.lock().unwrap();
            if let Err(e) = log.write_line(&line) {
                eprintln!("marion-serve: access log write failed: {e}");
            }
        }
        if let Some(trace) = outcome.trace.take() {
            if !outcome.failed {
                self.tail.lock().unwrap().offer(
                    now_us / 1000,
                    Exemplar {
                        request_id: outcome.request_id,
                        client_id: outcome.client_id,
                        machine: outcome.machine.clone(),
                        strategy: outcome.strategy.clone(),
                        funcs: outcome.funcs,
                        queue_wait_us,
                        service_us,
                        cache_hits: outcome.cache_hits,
                        cache_misses: outcome.cache_misses,
                        window: 0, // set by offer
                        trace,
                    },
                );
            }
        }
    }

    /// Everything the dashboard page shows, gathered consistently.
    pub fn dashboard_data(&self) -> DashboardData {
        let snap = self.metrics.snapshot();
        let windowed = snap.windowed(SLO_RECENT_WINDOWS);
        let slos = evaluate_slos(&snap, &self.slos);
        let exemplars = self.tail.lock().unwrap().exemplars();
        let cache_hit_rate = self.cache.as_ref().map(|c| c.stats().hit_rate());
        let n = snap.service_ts.num_windows();
        let service: Vec<_> = snap.service_ts.series(snap.now_ms, n);
        let errors: Vec<_> = snap.error_ts.series(snap.now_ms, n);
        let hits: Vec<_> = snap.hit_ts.series(snap.now_ms, n);
        let misses: Vec<_> = snap.miss_ts.series(snap.now_ms, n);
        let per_window_s = snap.window_ms as f64 / 1000.0;
        let series = vec![
            SeriesView {
                title: "requests / s".to_string(),
                points: service
                    .iter()
                    .map(|(_, w)| w.map_or(0.0, |w| w.count as f64 / per_window_s))
                    .collect(),
            },
            SeriesView {
                title: "service p99 (us)".to_string(),
                points: service
                    .iter()
                    .map(|(_, w)| w.and_then(|w| w.hist.percentile(0.99)).unwrap_or(0) as f64)
                    .collect(),
            },
            SeriesView {
                title: "service p50 (us)".to_string(),
                points: service
                    .iter()
                    .map(|(_, w)| w.and_then(|w| w.hist.percentile(0.50)).unwrap_or(0) as f64)
                    .collect(),
            },
            SeriesView {
                title: "cache hit rate (%)".to_string(),
                points: hits
                    .iter()
                    .zip(&misses)
                    .map(|((_, h), (_, m))| {
                        let h = h.map_or(0, |w| w.sum);
                        let m = m.map_or(0, |w| w.sum);
                        if h + m == 0 {
                            0.0
                        } else {
                            h as f64 / (h + m) as f64 * 100.0
                        }
                    })
                    .collect(),
            },
            SeriesView {
                title: "error rate (%)".to_string(),
                points: errors
                    .iter()
                    .map(|(_, w)| {
                        w.map_or(0.0, |w| {
                            if w.count == 0 {
                                0.0
                            } else {
                                w.sum as f64 / w.count as f64 * 100.0
                            }
                        })
                    })
                    .collect(),
            },
        ];
        DashboardData {
            snap,
            windowed,
            series,
            slos,
            exemplars,
            cache_hit_rate,
        }
    }

    fn compiler(&self, machine: &str, strategy: &str) -> Result<Arc<Compiler>, String> {
        let key = (machine.to_string(), strategy.to_string());
        if let Some(c) = self.compilers.lock().unwrap().get(&key) {
            return Ok(c.clone());
        }
        if !marion_machines::EXTENDED.contains(&machine) {
            return Err(format!(
                "unknown machine `{machine}` (have: {})",
                marion_machines::EXTENDED.join(", ")
            ));
        }
        let kind = StrategyKind::parse(strategy)
            .ok_or_else(|| format!("unknown strategy `{strategy}`"))?;
        let spec = marion_machines::load(machine);
        // One trace config for every compile: the cache key covers the
        // trace config, so mixing traced and untraced requests would
        // split the cache and break warm==cold outputs.
        let options = CompileOptions {
            jobs: self.jobs,
            cache: self.cache.clone(),
            trace: self.exemplars_on.then(TraceConfig::default),
            ..CompileOptions::default()
        };
        let compiler = Arc::new(Compiler::with_options(
            spec.machine,
            spec.escapes,
            kind,
            options,
        ));
        self.compilers
            .lock()
            .unwrap()
            .entry(key)
            .or_insert(compiler.clone());
        Ok(compiler)
    }

    fn module_for(&self, req: &Request) -> Result<Arc<marion_ir::Module>, String> {
        let key = match (&req.workload, &req.source) {
            (Some(w), _) => format!("workload:{w}"),
            (None, Some(s)) => format!("source:{s}"),
            (None, None) => return Err("request needs `workload` or `source`".to_string()),
        };
        if let Some(m) = self.modules.lock().unwrap().get(&key) {
            return Ok(m.clone());
        }
        let module = match (&req.workload, &req.source) {
            (Some(w), _) if w == "livermore" => marion_workloads::multi::combined_livermore(),
            (Some(w), _) => match w.strip_prefix("gen:").and_then(|rest| {
                let (count, seed) = rest.split_once(':')?;
                Some((count.parse::<u64>().ok()?, seed.parse::<u64>().ok()?))
            }) {
                Some((count, seed)) => marion_workloads::multi::combined_generated(count, seed),
                None => {
                    return Err(format!(
                        "unknown workload `{w}` (have: livermore, gen:<count>:<seed>)"
                    ))
                }
            },
            (None, Some(source)) => {
                marion_frontend::compile(source).map_err(|e| format!("frontend: {e}"))?
            }
            (None, None) => unreachable!(),
        };
        let module = Arc::new(module);
        self.modules
            .lock()
            .unwrap()
            .entry(key)
            .or_insert(module.clone());
        Ok(module)
    }

    /// Handles one raw request line, returning the response line and
    /// its accounting. Assigns the stable `request_id` echoed in every
    /// response.
    pub fn handle_line(&self, line: &str) -> (String, Outcome) {
        let rid = self.next_request_id.fetch_add(1, Ordering::Relaxed) + 1;
        self.metrics.started.fetch_add(1, Ordering::Relaxed);
        let req = match parse_request(line) {
            Ok(req) => req,
            Err(e) => {
                let mut out = outcome(rid, 0, "invalid");
                out.failed = true;
                return (error_response(0, rid, &e), out);
            }
        };
        match req.cmd {
            Cmd::Compile => self.handle_compile(&req, rid),
            Cmd::Stats => (
                self.stats_response(req.id, rid),
                outcome(rid, req.id, "stats"),
            ),
            Cmd::Metrics => (
                self.metrics_response(req.id, rid),
                outcome(rid, req.id, "metrics"),
            ),
            Cmd::Machines => (
                machines_response(req.id, rid),
                outcome(rid, req.id, "machines"),
            ),
            Cmd::Capabilities => (
                capabilities_response(req.id, rid),
                outcome(rid, req.id, "capabilities"),
            ),
            Cmd::Dashboard => (
                self.dashboard_response(req.id, rid),
                outcome(rid, req.id, "dashboard"),
            ),
            Cmd::Shutdown => {
                let mut obj = ObjWriter::new();
                obj.int("id", req.id);
                write_request_id(&mut obj, rid);
                obj.int("ok", 1);
                obj.str("cmd", "shutdown");
                (obj.finish(), outcome(rid, req.id, "shutdown"))
            }
        }
    }

    fn handle_compile(&self, req: &Request, rid: u64) -> (String, Outcome) {
        let fail = |e: String| {
            let mut out = outcome(rid, req.id, "compile");
            out.failed = true;
            out.machine = req.machine.clone();
            out.strategy = req.strategy.clone();
            (error_response(req.id, rid, &e), out)
        };
        let compiler = match self.compiler(&req.machine, &req.strategy) {
            Ok(c) => c,
            Err(e) => return fail(e),
        };
        let module = match self.module_for(req) {
            Ok(m) => m,
            Err(e) => return fail(e),
        };
        let start = Instant::now();
        let program = match compiler.compile_module(&module) {
            Ok(p) => p,
            Err(e) => return fail(format!("compile: {e}")),
        };
        let wall_us = start.elapsed().as_micros() as i64;
        let summary = program.cache.unwrap_or_default();
        let mut obj = ObjWriter::new();
        obj.int("id", req.id);
        write_request_id(&mut obj, rid);
        obj.int("ok", 1);
        obj.str("machine", &program.machine_name);
        obj.str("strategy", program.strategy.name());
        obj.int("funcs", program.stats.per_func.len() as i64);
        obj.int("insts", program.stats.insts_generated as i64);
        obj.int("spills", program.stats.spills as i64);
        obj.int("estimated_cycles", program.stats.estimated_cycles as i64);
        obj.int("nops", program.stats.nops_emitted as i64);
        obj.int("cache_hits", summary.hits as i64);
        obj.int("cache_misses", summary.misses as i64);
        obj.int("wall_us", wall_us);
        if req.emit_asm {
            obj.str("asm", &program.render(compiler.machine()));
        }
        (
            obj.finish(),
            Outcome {
                request_id: rid,
                client_id: req.id,
                cmd: "compile",
                machine: program.machine_name.clone(),
                strategy: program.strategy.name().to_string(),
                funcs: program.stats.per_func.len() as u64,
                cache_hits: summary.hits,
                cache_misses: summary.misses,
                failed: false,
                trace: program.trace,
            },
        )
    }

    fn stats_response(&self, id: i64, rid: u64) -> String {
        let mut obj = ObjWriter::new();
        obj.int("id", id);
        write_request_id(&mut obj, rid);
        obj.int("ok", 1);
        match &self.cache {
            Some(cache) => {
                let stats = cache.stats();
                obj.int("cache_enabled", 1);
                obj.int("entries", cache.len() as i64);
                obj.int("hits", stats.hits as i64);
                obj.int("misses", stats.misses as i64);
                obj.int("insertions", stats.insertions as i64);
                obj.int("evictions", stats.evictions as i64);
                obj.float("hit_rate", stats.hit_rate());
                if let Some(load) = cache.disk_load() {
                    obj.int("disk_loaded", load.loaded as i64);
                    obj.int("disk_corrupt", load.corrupt as i64);
                }
            }
            None => obj.int("cache_enabled", 0),
        }
        obj.finish()
    }

    fn metrics_response(&self, id: i64, rid: u64) -> String {
        let snap = self.metrics.snapshot();
        let win = snap.windowed(SLO_RECENT_WINDOWS);
        let mut obj = ObjWriter::new();
        obj.int("id", id);
        write_request_id(&mut obj, rid);
        obj.int("ok", 1);
        obj.int("format_version", METRICS_FORMAT_VERSION);
        obj.float("uptime_s", snap.uptime_us as f64 / 1e6);
        obj.int("requests", snap.requests as i64);
        obj.int("failures", snap.failures as i64);
        obj.int("started_requests", snap.started as i64);
        obj.int(
            "in_flight",
            snap.started.saturating_sub(snap.requests) as i64,
        );
        obj.int("queue_depth", snap.queue_depth);
        obj.int("busy_workers", snap.busy_workers);
        obj.int("workers", snap.workers);
        obj.int("window_ms", snap.window_ms as i64);
        obj.int("windows", snap.service_ts.num_windows() as i64);
        obj.int("win_windows", win.windows as i64);
        obj.float("win_covered_s", win.covered_s);
        obj.int("win_requests", win.requests as i64);
        obj.float("win_rps", win.rps);
        obj.float("win_hit_rate", win.hit_rate);
        obj.float("win_error_rate", win.error_rate);
        if let Some(p) = win.p50_us {
            obj.int("win_p50_us", i64::try_from(p).unwrap_or(i64::MAX));
        }
        if let Some(p) = win.p99_us {
            obj.int("win_p99_us", i64::try_from(p).unwrap_or(i64::MAX));
        }
        write_hist(&mut obj, "service", &snap.service_us);
        write_hist(&mut obj, "queue_wait", &snap.queue_wait_us);
        if let Some(cache) = &self.cache {
            let stats = cache.stats();
            obj.int("cache_hits", stats.hits as i64);
            obj.int("cache_misses", stats.misses as i64);
            obj.int("cache_evictions", stats.evictions as i64);
            obj.float("cache_hit_rate", stats.hit_rate());
        }
        let evals = evaluate_slos(&snap, &self.slos);
        obj.int("slo_count", evals.len() as i64);
        let mut violations = 0i64;
        for eval in &evals {
            let name = &eval.slo.name;
            obj.float(&format!("slo_{name}_target"), eval.slo.target);
            obj.float(&format!("slo_{name}_budget_used"), eval.budget_used);
            obj.float(&format!("slo_{name}_burn_rate"), eval.burn_rate);
            obj.int(&format!("slo_{name}_violated"), eval.violated as i64);
            violations += eval.violated as i64;
        }
        obj.int("slo_violations", violations);
        obj.finish()
    }

    fn dashboard_response(&self, id: i64, rid: u64) -> String {
        let html = crate::html::render_dashboard(&self.dashboard_data());
        let mut obj = ObjWriter::new();
        obj.int("id", id);
        write_request_id(&mut obj, rid);
        obj.int("ok", 1);
        obj.str("cmd", "dashboard");
        obj.int("bytes", html.len() as i64);
        obj.str("html", &html);
        obj.finish()
    }
}

fn write_request_id(obj: &mut ObjWriter, rid: u64) {
    obj.str("request_id", &format!("r{rid}"));
}

/// Writes one histogram into a flat response as `<prefix>_count`,
/// `<prefix>_sum_us`, `<prefix>_p50_us`/`p90`/`p99` (percentiles
/// omitted when empty), and the sparse `<prefix>_buckets` string
/// ([`Histogram::encode_counts`]).
fn write_hist(obj: &mut ObjWriter, prefix: &str, hist: &Histogram) {
    obj.int(&format!("{prefix}_count"), hist.count() as i64);
    obj.int(
        &format!("{prefix}_sum_us"),
        i64::try_from(hist.sum()).unwrap_or(i64::MAX),
    );
    for (label, p) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
        if let Some(v) = hist.percentile(p) {
            obj.int(
                &format!("{prefix}_{label}_us"),
                i64::try_from(v).unwrap_or(i64::MAX),
            );
        }
    }
    obj.str(&format!("{prefix}_buckets"), &hist.encode_counts());
}

/// The `machines` response: everything a client needs to discover
/// before issuing compile requests.
fn machines_response(id: i64, rid: u64) -> String {
    let strategies: Vec<&str> = StrategyKind::ALL.iter().map(|k| k.name()).collect();
    let mut obj = ObjWriter::new();
    obj.int("id", id);
    write_request_id(&mut obj, rid);
    obj.int("ok", 1);
    obj.str("machines", &marion_machines::EXTENDED.join(","));
    obj.str("strategies", &strategies.join(","));
    obj.int("protocol_version", PROTOCOL_VERSION);
    obj.int("cache_format_version", marion_core::fcache::FORMAT_VERSION);
    obj.finish()
}

/// The `capabilities` response: per-machine scheduling detail so a
/// client can pick a target without consulting the Maril sources.
///
/// For each served machine: `<name>_issue_width` (long-word elements,
/// min 1 for single-issue targets), `<name>_clocks` (declared temporal
/// clocks), `<name>_reg_classes` (`class:count` pairs), and
/// `<name>_temporals` (`latch@clock` pairs).
fn capabilities_response(id: i64, rid: u64) -> String {
    let mut obj = ObjWriter::new();
    obj.int("id", id);
    write_request_id(&mut obj, rid);
    obj.int("ok", 1);
    obj.int("protocol_version", PROTOCOL_VERSION);
    obj.str("machines", &marion_machines::EXTENDED.join(","));
    for name in marion_machines::EXTENDED {
        let machine = marion_machines::load(name).machine;
        let issue_width = machine.elements().len().max(1);
        obj.int(
            &format!("{name}_issue_width"),
            i64::try_from(issue_width).unwrap_or(i64::MAX),
        );
        obj.str(&format!("{name}_clocks"), &machine.clocks().join(","));
        let classes: Vec<String> = machine
            .reg_classes()
            .iter()
            .map(|c| format!("{}:{}", c.name, c.count))
            .collect();
        obj.str(&format!("{name}_reg_classes"), &classes.join(","));
        let temporals: Vec<String> = machine
            .temporals()
            .iter()
            .map(|t| format!("{}@{}", t.name, machine.clocks()[t.clock.0 as usize]))
            .collect();
        obj.str(&format!("{name}_temporals"), &temporals.join(","));
    }
    obj.finish()
}

fn error_response(id: i64, rid: u64, error: &str) -> String {
    let mut obj = ObjWriter::new();
    obj.int("id", id);
    write_request_id(&mut obj, rid);
    obj.int("ok", 0);
    obj.str("error", error);
    obj.finish()
}

fn is_shutdown(line: &str) -> bool {
    matches!(parse_request(line), Ok(req) if req.cmd == Cmd::Shutdown)
}

/// Serves `input` to `output`: requests dispatch to `workers` threads
/// through a bounded queue of `queue` entries (backpressure — the
/// reader blocks when the pool is saturated), and responses stream
/// back **in request order**. Returns after end-of-input or a
/// `shutdown` request, with every queued request answered.
///
/// # Errors
///
/// I/O failures reading `input` or writing `output`.
///
/// # Panics
///
/// Panics if a worker thread panics (poisoned internal channels).
pub fn run_stream<R: BufRead, W: Write + Send>(
    service: &Service,
    input: R,
    output: W,
    workers: usize,
    queue: usize,
) -> io::Result<ServeStats> {
    let workers = workers.max(1);
    let queue = queue.max(1);
    let metrics = service.metrics();
    metrics.workers.store(workers as i64, Ordering::Relaxed);
    let (work_tx, work_rx) = mpsc::sync_channel::<(u64, String, Instant)>(queue);
    let work_rx = Mutex::new(work_rx);
    let (done_tx, done_rx) = mpsc::channel::<(u64, String)>();
    let requests = AtomicU64::new(0);
    let failures = AtomicU64::new(0);
    let hits = AtomicU64::new(0);
    let misses = AtomicU64::new(0);

    let (read_result, write_result) = std::thread::scope(|s| {
        let writer = s.spawn(move || -> io::Result<()> {
            let mut out = output;
            let mut pending: BTreeMap<u64, String> = BTreeMap::new();
            let mut next = 0u64;
            for (seq, line) in done_rx {
                pending.insert(seq, line);
                while let Some(line) = pending.remove(&next) {
                    out.write_all(line.as_bytes())?;
                    out.write_all(b"\n")?;
                    out.flush()?;
                    next += 1;
                }
            }
            Ok(())
        });
        for _ in 0..workers {
            let done_tx = done_tx.clone();
            let work_rx = &work_rx;
            let requests = &requests;
            let failures = &failures;
            let hits = &hits;
            let misses = &misses;
            s.spawn(move || loop {
                let msg = work_rx.lock().unwrap().recv();
                let Ok((seq, line, enqueued)) = msg else {
                    break;
                };
                let queue_wait_us = enqueued.elapsed().as_micros() as u64;
                metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
                metrics.busy_workers.fetch_add(1, Ordering::Relaxed);
                let served = Instant::now();
                let (response, mut outcome) = service.handle_line(&line);
                metrics.busy_workers.fetch_sub(1, Ordering::Relaxed);
                requests.fetch_add(1, Ordering::Relaxed);
                failures.fetch_add(outcome.failed as u64, Ordering::Relaxed);
                hits.fetch_add(outcome.cache_hits, Ordering::Relaxed);
                misses.fetch_add(outcome.cache_misses, Ordering::Relaxed);
                // Observed *after* handle_line, so a `metrics` request
                // snapshots only requests completed before it — and
                // the bucket-count/request/access-log-line equalities
                // stay exact.
                service.observe_request(
                    queue_wait_us,
                    served.elapsed().as_micros() as u64,
                    &mut outcome,
                );
                if done_tx.send((seq, response)).is_err() {
                    break;
                }
            });
        }
        drop(done_tx);

        // Read on the calling thread; `send` blocks when the queue is
        // full, which is the backpressure.
        let read = (|| -> io::Result<()> {
            let mut seq = 0u64;
            for line in input.lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                let stop = is_shutdown(&line);
                metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
                if work_tx.send((seq, line, Instant::now())).is_err() {
                    metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
                    break;
                }
                seq += 1;
                if stop {
                    break;
                }
            }
            Ok(())
        })();
        drop(work_tx);
        (read, writer.join().expect("writer thread panicked"))
    });
    read_result?;
    write_result?;
    Ok(ServeStats {
        requests: requests.into_inner(),
        failures: failures.into_inner(),
        cache_hits: hits.into_inner(),
        cache_misses: misses.into_inner(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use marion_trace::Value;

    fn respond(service: &Service, requests: &str, workers: usize) -> (Vec<String>, ServeStats) {
        let mut out: Vec<u8> = Vec::new();
        let stats = run_stream(service, requests.as_bytes(), &mut out, workers, 4).expect("stream");
        let lines = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect();
        (lines, stats)
    }

    fn field(line: &str, name: &str) -> Option<Value> {
        parse_flat(line)
            .unwrap()
            .into_iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    #[test]
    fn compile_request_round_trips_and_second_hits_cache() {
        let service = Service::new(&ServeConfig::default()).unwrap();
        let req = r#"{"id":1,"cmd":"compile","machine":"toyp","strategy":"Postpass","source":"int main() { return 41 + 1; }","emit_asm":1}"#;
        let requests = format!("{req}\n{}\n", req.replace("\"id\":1", "\"id\":2"));
        let (lines, stats) = respond(&service, &requests, 1);
        assert_eq!(lines.len(), 2);
        assert_eq!(field(&lines[0], "ok"), Some(Value::Int(1)));
        assert_eq!(field(&lines[0], "cache_hits"), Some(Value::Int(0)));
        assert_eq!(field(&lines[0], "cache_misses"), Some(Value::Int(1)));
        assert_eq!(field(&lines[1], "cache_hits"), Some(Value::Int(1)));
        assert_eq!(field(&lines[1], "cache_misses"), Some(Value::Int(0)));
        // Identical output either way.
        assert_eq!(field(&lines[0], "asm"), field(&lines[1], "asm"));
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.failures, 0);
    }

    #[test]
    fn responses_come_back_in_request_order() {
        let service = Service::new(&ServeConfig::default()).unwrap();
        // Mix heavy (livermore) and trivial requests so out-of-order
        // completion is likely, then check ordering by id.
        let mut requests = String::new();
        for id in 0..6 {
            if id % 2 == 0 {
                requests.push_str(&format!(
                    "{{\"id\":{id},\"machine\":\"r2000\",\"strategy\":\"Postpass\",\"workload\":\"gen:2:7\"}}\n"
                ));
            } else {
                requests.push_str(&format!(
                    "{{\"id\":{id},\"machine\":\"toyp\",\"strategy\":\"Postpass\",\"source\":\"int main() {{ return {id}; }}\"}}\n"
                ));
            }
        }
        let (lines, stats) = respond(&service, &requests, 4);
        assert_eq!(lines.len(), 6);
        for (i, line) in lines.iter().enumerate() {
            assert_eq!(field(line, "id"), Some(Value::Int(i as i64)), "line {i}");
            assert_eq!(field(line, "ok"), Some(Value::Int(1)), "line {i}");
        }
        assert_eq!(stats.requests, 6);
    }

    #[test]
    fn bad_requests_fail_without_killing_the_stream() {
        let service = Service::new(&ServeConfig::default()).unwrap();
        let requests = concat!(
            "{\"id\":1,\"machine\":\"vax\",\"strategy\":\"IPS\",\"workload\":\"livermore\"}\n",
            "not json at all\n",
            "{\"id\":3,\"machine\":\"toyp\",\"strategy\":\"Postpass\",\"source\":\"int main() { return 0; }\"}\n",
        );
        let (lines, stats) = respond(&service, requests, 2);
        assert_eq!(lines.len(), 3);
        assert_eq!(field(&lines[0], "ok"), Some(Value::Int(0)));
        assert!(field(&lines[0], "error")
            .and_then(|v| v.as_str().map(|s| s.contains("unknown machine")))
            .unwrap_or(false));
        assert_eq!(field(&lines[1], "ok"), Some(Value::Int(0)));
        assert_eq!(field(&lines[2], "ok"), Some(Value::Int(1)));
        assert_eq!(stats.failures, 2);
    }

    #[test]
    fn shutdown_answers_and_stops_reading() {
        let service = Service::new(&ServeConfig::default()).unwrap();
        let requests = concat!(
            "{\"id\":1,\"machine\":\"toyp\",\"strategy\":\"Postpass\",\"source\":\"int main() { return 1; }\"}\n",
            "{\"id\":2,\"cmd\":\"shutdown\"}\n",
            "{\"id\":3,\"machine\":\"toyp\",\"strategy\":\"Postpass\",\"source\":\"int main() { return 3; }\"}\n",
        );
        let (lines, stats) = respond(&service, requests, 2);
        assert_eq!(lines.len(), 2, "request after shutdown must not run");
        assert_eq!(field(&lines[1], "cmd"), Some(Value::Str("shutdown".into())));
        assert_eq!(stats.requests, 2);
    }

    #[test]
    fn stats_reports_cache_counters() {
        let service = Service::new(&ServeConfig::default()).unwrap();
        let requests = concat!(
            "{\"id\":1,\"machine\":\"toyp\",\"strategy\":\"Postpass\",\"source\":\"int main() { return 1; }\"}\n",
            "{\"id\":2,\"cmd\":\"stats\"}\n",
        );
        let (lines, _) = respond(&service, requests, 1);
        assert_eq!(field(&lines[1], "cache_enabled"), Some(Value::Int(1)));
        assert_eq!(field(&lines[1], "entries"), Some(Value::Int(1)));
        assert_eq!(field(&lines[1], "misses"), Some(Value::Int(1)));
    }

    #[test]
    fn metrics_bucket_counts_exactly_equal_requests_served() {
        let service = Service::new(&ServeConfig::default()).unwrap();
        let mut requests = String::new();
        for id in 1..=5 {
            requests.push_str(&format!(
                "{{\"id\":{id},\"machine\":\"toyp\",\"strategy\":\"Postpass\",\"source\":\"int main() {{ return {id}; }}\"}}\n"
            ));
        }
        requests.push_str("{\"id\":6,\"cmd\":\"metrics\"}\n");
        let (lines, stream_stats) = respond(&service, &requests, 1);
        assert_eq!(lines.len(), 6);
        let metrics = &lines[5];
        assert_eq!(field(metrics, "ok"), Some(Value::Int(1)));
        // Acceptance invariant: with one worker, the snapshot covers
        // exactly the five compiles served before it, and the
        // histogram bucket counts sum to that same number.
        assert_eq!(field(metrics, "requests"), Some(Value::Int(5)));
        assert_eq!(field(metrics, "service_count"), Some(Value::Int(5)));
        let buckets = field(metrics, "service_buckets").unwrap();
        let hist = Histogram::from_parts(buckets.as_str().unwrap(), 0).unwrap();
        assert_eq!(hist.count(), 5, "sum of bucket counts == requests");
        assert_eq!(field(metrics, "queue_wait_count"), Some(Value::Int(5)));
        assert_eq!(field(metrics, "workers"), Some(Value::Int(1)));
        assert_eq!(field(metrics, "failures"), Some(Value::Int(0)));
        // Percentiles exist once there is data.
        assert!(field(metrics, "service_p50_us").is_some());
        assert!(field(metrics, "service_p99_us").is_some());
        // The stream total counts the metrics request itself too.
        assert_eq!(stream_stats.requests, 6);
        // After the stream drains, the cumulative snapshot agrees with
        // the stream accounting and the invariant still holds.
        let snap = service.metrics().snapshot();
        assert_eq!(snap.requests, 6);
        assert_eq!(snap.service_us.count(), snap.requests);
        assert_eq!(snap.queue_wait_us.count(), snap.requests);
        assert_eq!(snap.queue_depth, 0);
        assert_eq!(snap.busy_workers, 0);
    }

    #[test]
    fn metrics_snapshot_stays_consistent_under_concurrent_requests() {
        let service = Service::new(&ServeConfig::default()).unwrap();
        // Many workers, interleaved compiles and metrics probes: every
        // snapshot must satisfy count(service_us) == requests, however
        // the threads interleave.
        let mut requests = String::new();
        for id in 0..24 {
            if id % 3 == 2 {
                requests.push_str(&format!("{{\"id\":{id},\"cmd\":\"metrics\"}}\n"));
            } else {
                requests.push_str(&format!(
                    "{{\"id\":{id},\"machine\":\"toyp\",\"strategy\":\"Postpass\",\"source\":\"int main() {{ return {id}; }}\"}}\n"
                ));
            }
        }
        let (lines, stats) = respond(&service, &requests, 4);
        assert_eq!(lines.len(), 24);
        let mut probes = 0;
        for line in &lines {
            let Some(requests_seen) = field(line, "requests").and_then(|v| v.as_int()) else {
                continue;
            };
            probes += 1;
            assert_eq!(
                field(line, "service_count"),
                Some(Value::Int(requests_seen)),
                "snapshot torn: {line}"
            );
            let buckets = field(line, "service_buckets").unwrap();
            let hist = Histogram::from_parts(buckets.as_str().unwrap(), 0).unwrap();
            assert_eq!(hist.count(), requests_seen as u64, "buckets vs requests");
            // Gauges stay within configuration bounds.
            let busy = field(line, "busy_workers")
                .and_then(|v| v.as_int())
                .unwrap();
            assert!((0..=4).contains(&busy), "busy_workers {busy}");
        }
        assert_eq!(probes, 8);
        assert_eq!(stats.requests, 24);
        let snap = service.metrics().snapshot();
        assert_eq!(snap.requests, 24);
        assert_eq!(snap.service_us.count(), 24);
    }

    #[test]
    fn machines_lists_targets_strategies_and_versions() {
        let service = Service::new(&ServeConfig::default()).unwrap();
        let (lines, _) = respond(&service, "{\"id\":7,\"cmd\":\"machines\"}\n", 1);
        let line = &lines[0];
        assert_eq!(field(line, "ok"), Some(Value::Int(1)));
        let machines = field(line, "machines").unwrap();
        let machines = machines.as_str().unwrap();
        for m in marion_machines::EXTENDED {
            assert!(machines.split(',').any(|x| x == m), "missing {m}");
        }
        assert_eq!(
            field(line, "strategies"),
            Some(Value::Str("Postpass,IPS,RASE".into()))
        );
        assert_eq!(
            field(line, "protocol_version"),
            Some(Value::Int(PROTOCOL_VERSION))
        );
        assert_eq!(
            field(line, "cache_format_version"),
            Some(Value::Int(marion_core::fcache::FORMAT_VERSION))
        );
    }

    #[test]
    fn capabilities_reports_per_machine_detail() {
        let service = Service::new(&ServeConfig::default()).unwrap();
        let (lines, _) = respond(&service, "{\"id\":8,\"cmd\":\"capabilities\"}\n", 1);
        let line = &lines[0];
        assert_eq!(field(line, "ok"), Some(Value::Int(1)));
        assert_eq!(
            field(line, "protocol_version"),
            Some(Value::Int(PROTOCOL_VERSION))
        );
        for m in marion_machines::EXTENDED {
            let width = field(line, &format!("{m}_issue_width")).unwrap();
            let width = width.as_int().unwrap();
            assert!(width >= 1, "{m}: issue width {width}");
            assert!(field(line, &format!("{m}_clocks")).is_some(), "{m} clocks");
            let classes = field(line, &format!("{m}_reg_classes")).unwrap();
            let classes = classes.as_str().unwrap().to_string();
            // Every target declares at least one class, `name:count`.
            assert!(
                classes.split(',').all(|c| {
                    let (name, count) = c.split_once(':').unwrap_or(("", ""));
                    !name.is_empty() && count.parse::<u32>().is_ok()
                }),
                "{m}: bad reg_classes `{classes}`"
            );
        }
        // The i860 is the paper's LIW target: multiple long-word
        // elements, plus temporal latches on its adder/multiplier
        // clocks. Scalar machines report width 1.
        let width = field(line, "i860_issue_width").unwrap();
        assert!(width.as_int().unwrap() > 1, "i860 must be multi-issue");
        assert_eq!(
            field(line, "r2000_issue_width").and_then(|v| v.as_int()),
            Some(1)
        );
        let temporals = field(line, "i860_temporals").unwrap();
        assert!(
            temporals.as_str().unwrap().contains('@'),
            "i860 temporals should be latch@clock pairs"
        );
    }

    #[test]
    fn stats_reports_disk_load_and_corrupt_lines() {
        let dir = std::env::temp_dir().join(format!("marion-serve-stats-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let store = dir.join("store.jsonl");
        // First service populates the disk store.
        {
            let service = Service::new(&ServeConfig {
                cache_disk: Some(store.clone()),
                ..ServeConfig::default()
            })
            .unwrap();
            let (lines, _) = respond(
                &service,
                "{\"id\":1,\"machine\":\"toyp\",\"strategy\":\"Postpass\",\"source\":\"int main() { return 1; }\"}\n",
                1,
            );
            assert_eq!(field(&lines[0], "ok"), Some(Value::Int(1)));
        }
        // Corrupt the store with a garbage line, then reopen: `stats`
        // must report both what loaded and what was rejected.
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&store)
            .unwrap();
        writeln!(f, "this is not a cache entry").unwrap();
        drop(f);
        let service = Service::new(&ServeConfig {
            cache_disk: Some(store.clone()),
            ..ServeConfig::default()
        })
        .unwrap();
        let (lines, _) = respond(&service, "{\"id\":2,\"cmd\":\"stats\"}\n", 1);
        let line = &lines[0];
        assert_eq!(field(line, "cache_enabled"), Some(Value::Int(1)));
        assert_eq!(field(line, "disk_loaded"), Some(Value::Int(1)));
        assert_eq!(field(line, "disk_corrupt"), Some(Value::Int(1)));
        assert!(field(line, "insertions").is_some());
        assert!(field(line, "evictions").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_response_echoes_a_stable_request_id() {
        let service = Service::new(&ServeConfig::default()).unwrap();
        let requests = concat!(
            "{\"id\":10,\"machine\":\"toyp\",\"strategy\":\"Postpass\",\"source\":\"int main() { return 1; }\"}\n",
            "{\"id\":11,\"cmd\":\"metrics\"}\n",
            "{\"id\":12,\"cmd\":\"machines\"}\n",
            "not json at all\n",
            "{\"id\":14,\"cmd\":\"shutdown\"}\n",
        );
        // One worker: request ids assign in stream order, 1-based.
        let (lines, stats) = respond(&service, requests, 1);
        assert_eq!(lines.len(), 5);
        for (i, line) in lines.iter().enumerate() {
            assert_eq!(
                field(line, "request_id"),
                Some(Value::Str(format!("r{}", i + 1))),
                "line {i}"
            );
        }
        assert_eq!(stats.requests, 5);
    }

    #[test]
    fn access_log_lines_equal_requests_served_exactly() {
        let dir = std::env::temp_dir().join(format!("marion-access-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let log_path = dir.join("access.jsonl");
        let service = Service::new(&ServeConfig {
            access_log: Some(log_path.clone()),
            ..ServeConfig::default()
        })
        .unwrap();
        let mut requests = String::new();
        for id in 0..5 {
            requests.push_str(&format!(
                "{{\"id\":{id},\"machine\":\"toyp\",\"strategy\":\"Postpass\",\"source\":\"int main() {{ return {id}; }}\"}}\n"
            ));
        }
        requests.push_str("bad line\n");
        requests.push_str("{\"id\":6,\"cmd\":\"metrics\"}\n");
        let (lines, stats) = respond(&service, &requests, 4);
        assert_eq!(stats.requests, 7);
        let log = std::fs::read_to_string(&log_path).unwrap();
        let log_lines: Vec<&str> = log.lines().collect();
        // The acceptance invariant: exactly one log line per request
        // served, even under concurrency, even for invalid requests.
        assert_eq!(log_lines.len(), 7, "log lines == requests served");
        let mut log_ids = Vec::new();
        for line in &log_lines {
            let fields = parse_flat(line).expect("log line parses");
            let get = |name: &str| {
                fields
                    .iter()
                    .find(|(k, _)| k == name)
                    .map(|(_, v)| v.clone())
            };
            for key in [
                "request_id",
                "id",
                "ts_us",
                "cmd",
                "machine",
                "strategy",
                "funcs",
                "queue_wait_us",
                "service_us",
                "cache_hits",
                "cache_misses",
                "ok",
            ] {
                assert!(get(key).is_some(), "log line missing `{key}`: {line}");
            }
            log_ids.push(get("request_id").unwrap().as_str().unwrap().to_string());
        }
        log_ids.sort();
        log_ids.dedup();
        assert_eq!(log_ids.len(), 7, "request ids unique");
        // Every response's request_id has a matching log line.
        for line in &lines {
            let rid = field(line, "request_id").unwrap();
            let rid = rid.as_str().unwrap();
            assert!(
                log_lines.iter().any(|l| {
                    parse_flat(l)
                        .unwrap()
                        .iter()
                        .any(|(k, v)| k == "request_id" && v.as_str() == Some(rid))
                }),
                "response {rid} not in access log"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn access_log_rotates_and_stays_bounded() {
        let dir = std::env::temp_dir().join(format!("marion-rotate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let log_path = dir.join("access.jsonl");
        // Tiny cap: every line forces a rotation, so only the active
        // file plus one rotated generation survive.
        let service = Service::new(&ServeConfig {
            access_log: Some(log_path.clone()),
            access_log_max_bytes: 64,
            ..ServeConfig::default()
        })
        .unwrap();
        let mut requests = String::new();
        for id in 0..6 {
            requests.push_str(&format!("{{\"id\":{id},\"cmd\":\"stats\"}}\n"));
        }
        let (_, stats) = respond(&service, &requests, 1);
        assert_eq!(stats.requests, 6);
        let active = std::fs::read_to_string(&log_path).unwrap();
        let rotated = std::fs::read_to_string(format!("{}.1", log_path.display())).unwrap();
        assert_eq!(active.lines().count(), 1, "active file holds last line");
        assert_eq!(rotated.lines().count(), 1, "one rotated generation");
        // The newest record is in the active file.
        assert!(active.contains("\"request_id\":\"r6\""), "{active}");
        assert!(rotated.contains("\"request_id\":\"r5\""), "{rotated}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tail_sampler_keeps_k_slowest_per_window() {
        let ex = |rid: u64, service_us: u64| Exemplar {
            request_id: rid,
            client_id: rid as i64,
            machine: "toyp".to_string(),
            strategy: "Postpass".to_string(),
            funcs: 1,
            queue_wait_us: 0,
            service_us,
            cache_hits: 0,
            cache_misses: 1,
            window: 0,
            trace: TraceData::default(),
        };
        let mut sampler = TailSampler::new(2, 1000);
        for (rid, us) in [(1, 5), (2, 50), (3, 20), (4, 40)] {
            sampler.offer(100, ex(rid, us));
        }
        let kept: Vec<u64> = sampler.exemplars().iter().map(|e| e.request_id).collect();
        assert_eq!(kept, [2, 4], "k slowest, slowest first");
        // A new window keeps the previous survivors around.
        sampler.offer(1500, ex(5, 7));
        let kept: Vec<u64> = sampler.exemplars().iter().map(|e| e.request_id).collect();
        assert_eq!(kept, [2, 4, 5]);
        assert_eq!(sampler.exemplars()[2].window, 1);
        // Retention counts non-empty windows, so survivors outlive idle
        // gaps; only the oldest groups fall off the back.
        sampler.offer(1000 * (2 + TAIL_KEEP_WINDOWS as u64 + 2), ex(6, 1));
        let kept: Vec<u64> = sampler.exemplars().iter().map(|e| e.request_id).collect();
        assert!(kept.contains(&6));
        assert_eq!(kept.len(), 4, "both earlier windows still retained");
        for _ in 0..TAIL_KEEP_WINDOWS as u64 {
            let w = sampler.cur_window + 1;
            sampler.offer(1000 * w, ex(100 + w, 1));
        }
        let kept: Vec<u64> = sampler.exemplars().iter().map(|e| e.request_id).collect();
        assert!(
            !kept.contains(&2) && !kept.contains(&4),
            "window 0 aged out after {TAIL_KEEP_WINDOWS} newer non-empty windows: {kept:?}"
        );
    }

    #[test]
    fn dashboard_returns_self_contained_html_with_exemplar_flamegraph() {
        let service = Service::new(&ServeConfig::default()).unwrap();
        let requests = concat!(
            "{\"id\":1,\"machine\":\"toyp\",\"strategy\":\"Postpass\",\"source\":\"int main() { return 6; }\"}\n",
            "{\"id\":2,\"cmd\":\"dashboard\"}\n",
        );
        let (lines, _) = respond(&service, requests, 1);
        let line = &lines[1];
        assert_eq!(field(line, "ok"), Some(Value::Int(1)));
        assert_eq!(field(line, "cmd"), Some(Value::Str("dashboard".into())));
        let html = field(line, "html").unwrap();
        let html = html.as_str().unwrap().to_string();
        assert_eq!(
            field(line, "bytes"),
            Some(Value::Int(html.len() as i64)),
            "bytes matches decoded html"
        );
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("marion-serve dashboard"));
        // The cold compile was traced, tail-sampled, and rendered as a
        // flamegraph.
        assert!(html.contains("Slowest requests"));
        assert!(html.contains("r1 \u{2014} toyp/Postpass"));
        assert!(html.contains("<svg"), "sparkline + flamegraph SVGs");
        assert!(
            html.contains("wall-clock attribution"),
            "flamegraph present"
        );
        // Same self-containment contract as report.html.
        assert!(!html.contains("http:") && !html.contains("https:"));
        assert!(!html.contains("src=") && !html.contains("href="));
        assert!(html.contains("<style>"));
    }

    #[test]
    fn slo_specs_parse_and_reject_garbage() {
        let slos = parse_slos("p99_ms=50, error_rate=0.1%").unwrap();
        assert_eq!(slos.len(), 2);
        assert_eq!(slos[0].name, "p99_ms");
        assert_eq!(
            slos[0].kind,
            SloKind::LatencyQuantile {
                q: 0.99,
                threshold_us: 50_000
            }
        );
        assert_eq!(slos[1].name, "error_rate");
        assert_eq!(slos[1].kind, SloKind::ErrorRate { max_rate: 0.001 });
        let half = parse_slos("p50_ms=1.5").unwrap();
        assert_eq!(
            half[0].kind,
            SloKind::LatencyQuantile {
                q: 0.5,
                threshold_us: 1500
            }
        );
        assert_eq!(parse_slos("error_rate=0.25").unwrap()[0].target, 0.25);
        assert!(parse_slos("").unwrap().is_empty());
        for bad in [
            "nonsense",
            "latency=5",
            "p0_ms=5",
            "p100_ms=5",
            "p99_ms=abc",
            "error_rate=0",
            "error_rate=150%",
        ] {
            assert!(parse_slos(bad).is_err(), "`{bad}` should be rejected");
        }
    }

    #[test]
    fn slo_evaluation_flags_violations_and_check_slo_agrees() {
        // p99_ms=0 is unsatisfiable (every real request is slower);
        // error_rate=50% is satisfied by an all-ok run.
        let service = Service::new(&ServeConfig {
            slos: parse_slos("p99_ms=0,error_rate=50%").unwrap(),
            ..ServeConfig::default()
        })
        .unwrap();
        let mut requests = String::new();
        for id in 1..=3 {
            requests.push_str(&format!(
                "{{\"id\":{id},\"machine\":\"toyp\",\"strategy\":\"Postpass\",\"source\":\"int main() {{ return {id}; }}\"}}\n"
            ));
        }
        requests.push_str("{\"id\":4,\"cmd\":\"metrics\"}\n");
        let (lines, _) = respond(&service, &requests, 1);
        let metrics = &lines[3];
        assert_eq!(field(metrics, "slo_count"), Some(Value::Int(2)));
        assert_eq!(field(metrics, "slo_p99_ms_violated"), Some(Value::Int(1)));
        assert_eq!(
            field(metrics, "slo_error_rate_violated"),
            Some(Value::Int(0))
        );
        assert_eq!(field(metrics, "slo_violations"), Some(Value::Int(1)));
        assert!(field(metrics, "slo_p99_ms_budget_used").is_some());
        assert!(field(metrics, "slo_p99_ms_burn_rate").is_some());
        // The CI helper agrees with the server's verdicts.
        let fields = parse_flat(metrics).unwrap();
        assert_eq!(check_slo_fields(&fields).unwrap(), vec!["p99_ms"]);
        // And errors out on a line with no SLO fields at all.
        let plain = parse_flat(&lines[0]).unwrap();
        assert!(check_slo_fields(&plain).is_err());
    }

    #[test]
    fn metrics_reports_uptime_version_started_and_windowed_fields() {
        let service = Service::new(&ServeConfig::default()).unwrap();
        let requests = concat!(
            "{\"id\":1,\"machine\":\"toyp\",\"strategy\":\"Postpass\",\"source\":\"int main() { return 1; }\"}\n",
            "{\"id\":2,\"machine\":\"toyp\",\"strategy\":\"Postpass\",\"source\":\"int main() { return 2; }\"}\n",
            "{\"id\":3,\"cmd\":\"metrics\"}\n",
        );
        let (lines, _) = respond(&service, requests, 1);
        let m = &lines[2];
        assert_eq!(
            field(m, "format_version"),
            Some(Value::Int(METRICS_FORMAT_VERSION))
        );
        assert!(
            matches!(field(m, "uptime_s"), Some(Value::Float(s)) if s >= 0.0),
            "uptime_s: {m}"
        );
        // The metrics request itself has started but not completed.
        assert_eq!(field(m, "requests"), Some(Value::Int(2)));
        assert_eq!(field(m, "started_requests"), Some(Value::Int(3)));
        assert_eq!(field(m, "in_flight"), Some(Value::Int(1)));
        assert_eq!(field(m, "window_ms"), Some(Value::Int(1000)));
        assert_eq!(field(m, "windows"), Some(Value::Int(60)));
        // Both compiles finished within the recent windows.
        assert_eq!(field(m, "win_requests"), Some(Value::Int(2)));
        assert!(field(m, "win_rps").is_some());
        assert!(field(m, "win_hit_rate").is_some());
        assert!(field(m, "win_error_rate").is_some());
        assert!(field(m, "win_p50_us").is_some());
        assert!(field(m, "win_p99_us").is_some());
        // No --slo: the fields exist with count 0 so --check-slo can
        // still give a definitive "nothing configured" answer.
        assert_eq!(field(m, "slo_count"), Some(Value::Int(0)));
        assert_eq!(field(m, "slo_violations"), Some(Value::Int(0)));
    }

    #[test]
    fn windowed_p99_stays_within_2x_of_true_sample() {
        // Feed known latencies straight into Metrics and compare the
        // windowed p99 against the true rank statistic.
        let metrics = Metrics::new(1000, 60);
        let mut samples = Vec::new();
        for i in 0..200u64 {
            let v = 100 + i * 37 % 5000;
            samples.push(v);
            metrics.record(0, v, &outcome(i + 1, i as i64, "compile"));
        }
        let snap = metrics.snapshot();
        let win = snap.windowed(SLO_RECENT_WINDOWS);
        assert_eq!(win.requests, 200);
        samples.sort_unstable();
        let rank = ((0.99 * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        let true_p99 = samples[rank - 1];
        let est = win.p99_us.unwrap();
        assert!(est >= true_p99, "estimate below true sample");
        assert!(
            est < 2 * true_p99,
            "estimate {est} not within 2x of {true_p99}"
        );
    }

    #[test]
    fn no_cache_service_still_serves() {
        let service = Service::new(&ServeConfig {
            cache: false,
            ..ServeConfig::default()
        })
        .unwrap();
        let req =
            "{\"id\":1,\"machine\":\"toyp\",\"strategy\":\"Postpass\",\"source\":\"int main() { return 9; }\"}\n";
        let (lines, stats) = respond(&service, &format!("{req}{req}"), 1);
        assert_eq!(field(&lines[0], "ok"), Some(Value::Int(1)));
        assert_eq!(field(&lines[1], "cache_hits"), Some(Value::Int(0)));
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_misses, 0);
    }
}
