//! The compile service: JSONL request/response plumbing shared by the
//! `marion-serve` daemon, `marion-bench serve`, and the tests.
//!
//! ## Protocol
//!
//! One request per line, in the workspace's flat-JSON dialect
//! (`marion_trace::json` — scalar values only):
//!
//! ```text
//! {"id":1,"cmd":"compile","machine":"r2000","strategy":"IPS","workload":"livermore"}
//! {"id":2,"cmd":"compile","machine":"toyp","strategy":"Postpass","source":"int main(){return 7;}","emit_asm":1}
//! {"id":3,"cmd":"stats"}
//! {"id":4,"cmd":"shutdown"}
//! ```
//!
//! Requests: `cmd` is `compile` (default), `stats`, `metrics`,
//! `machines`, or `shutdown`. `compile` takes a `machine` name, a
//! `strategy` name, and either a named `workload` (`livermore` for the
//! combined Livermore suite, or `gen:<count>:<seed>` for the
//! deterministic generator) or inline C `source`; `emit_asm:1` adds
//! the rendered assembly to the response. `metrics` answers a
//! service-level snapshot — request counts, queue-wait and
//! service-time log2 histograms with p50/p90/p99, live queue-depth and
//! busy-worker gauges, cache rates — without disturbing in-flight
//! work. `machines` lists the supported machines, strategies, and
//! protocol/cache-format versions.
//!
//! Responses stream back in request order, one line each:
//!
//! ```text
//! {"id":1,"ok":1,"machine":"r2000","strategy":"IPS","funcs":15,"insts":…,
//!  "spills":…,"estimated_cycles":…,"nops":…,"cache_hits":0,"cache_misses":15,
//!  "wall_us":…}
//! ```
//!
//! Failures respond `{"id":…,"ok":0,"error":"…"}` — a bad request
//! never kills the stream. `shutdown` answers, stops reading, and
//! drains every request already queued before returning.

use marion_core::{CompileOptions, Compiler, FuncCache, StrategyKind};
use marion_trace::json::{parse_flat, ObjWriter};
use marion_trace::Histogram;
use std::collections::{BTreeMap, HashMap};
use std::io::{self, BufRead, Write};
use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

/// Version of the request/response protocol described in the module
/// docs. Bumped on incompatible changes; reported by `machines`.
pub const PROTOCOL_VERSION: i64 = 1;

/// How to build a [`Service`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Consult the content-addressed compile cache (on by default).
    pub cache: bool,
    /// Maximum cached functions.
    pub cache_capacity: usize,
    /// Optional JSONL disk store for the cache (write-through;
    /// existing verified entries warm the cache at startup).
    pub cache_disk: Option<PathBuf>,
    /// Per-compile worker threads inside `compile_module`. Defaults to
    /// 1: the service already parallelises across requests, and nested
    /// pools oversubscribe.
    pub jobs: Option<NonZeroUsize>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            cache: true,
            cache_capacity: 4096,
            cache_disk: None,
            jobs: NonZeroUsize::new(1),
        }
    }
}

/// A parsed request line.
#[derive(Debug, Clone)]
pub struct Request {
    /// Echoed back in the response for correlation.
    pub id: i64,
    /// `compile`, `stats`, `metrics`, `machines`, `capabilities`, or
    /// `shutdown`.
    pub cmd: Cmd,
    /// Target machine name (`marion_machines::EXTENDED`).
    pub machine: String,
    /// Strategy name ([`StrategyKind::parse`]).
    pub strategy: String,
    /// Inline C source to compile.
    pub source: Option<String>,
    /// Named workload (`livermore` or `gen:<count>:<seed>`).
    pub workload: Option<String>,
    /// Include rendered assembly in the response.
    pub emit_asm: bool,
}

/// The request verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmd {
    /// Compile a module and report statistics.
    Compile,
    /// Report service-level cache statistics.
    Stats,
    /// Report a request-latency and utilization snapshot.
    Metrics,
    /// List machines, strategies, and protocol/format versions.
    Machines,
    /// Per-machine detail: issue width, temporal clocks, and register
    /// classes for every served target.
    Capabilities,
    /// Answer, then stop reading and drain the queue.
    Shutdown,
}

/// Parses one request line.
///
/// # Errors
///
/// A human-readable message for malformed JSON or an unknown `cmd`.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let fields = parse_flat(line)?;
    let get_str = |name: &str| {
        fields
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_str())
    };
    let get_int = |name: &str| {
        fields
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_int())
    };
    let cmd = match get_str("cmd").unwrap_or("compile") {
        "compile" => Cmd::Compile,
        "stats" => Cmd::Stats,
        "metrics" => Cmd::Metrics,
        "machines" => Cmd::Machines,
        "capabilities" => Cmd::Capabilities,
        "shutdown" => Cmd::Shutdown,
        other => return Err(format!("unknown cmd `{other}`")),
    };
    Ok(Request {
        id: get_int("id").unwrap_or(0),
        cmd,
        machine: get_str("machine").unwrap_or("r2000").to_string(),
        strategy: get_str("strategy").unwrap_or("IPS").to_string(),
        source: get_str("source").map(str::to_string),
        workload: get_str("workload").map(str::to_string),
        emit_asm: get_int("emit_asm").unwrap_or(0) != 0,
    })
}

/// What one handled request contributed, for stream accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct Outcome {
    /// Functions served from the cache.
    pub cache_hits: u64,
    /// Functions compiled cold.
    pub cache_misses: u64,
    /// The request failed.
    pub failed: bool,
}

/// Totals for one [`run_stream`] call.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeStats {
    /// Requests answered.
    pub requests: u64,
    /// Requests that answered `ok:0`.
    pub failures: u64,
    /// Cache hits across all compiles.
    pub cache_hits: u64,
    /// Cache misses across all compiles.
    pub cache_misses: u64,
}

/// Service-level metrics: live gauges (lock-free atomics, safe to
/// touch from the stream's hot path) plus request counters and latency
/// histograms guarded by one mutex.
///
/// Holding `requests` and the service-time histogram under the same
/// lock is what makes the snapshot exact: the sum of the service-time
/// bucket counts always equals the number of requests served, with no
/// torn reads between the two.
#[derive(Default)]
pub struct Metrics {
    queue_depth: AtomicI64,
    busy_workers: AtomicI64,
    workers: AtomicI64,
    inner: Mutex<MetricsInner>,
}

#[derive(Default)]
struct MetricsInner {
    requests: u64,
    failures: u64,
    queue_wait_us: Histogram,
    service_us: Histogram,
}

/// A consistent point-in-time copy of [`Metrics`].
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Requests fully served (== `service_us.count()`).
    pub requests: u64,
    /// Requests that answered `ok:0`.
    pub failures: u64,
    /// Requests currently waiting in the queue.
    pub queue_depth: i64,
    /// Workers currently inside `handle_line`.
    pub busy_workers: i64,
    /// Worker threads configured for the current stream.
    pub workers: i64,
    /// Time from enqueue to dequeue, in microseconds.
    pub queue_wait_us: Histogram,
    /// Time inside `handle_line`, in microseconds.
    pub service_us: Histogram,
}

impl Metrics {
    /// Records one completed request. Both counters and both
    /// histograms move under a single lock, so snapshots never see a
    /// request counted but not yet observed (or vice versa).
    fn record(&self, queue_wait_us: u64, service_us: u64, failed: bool) {
        let mut inner = self.inner.lock().unwrap();
        inner.requests += 1;
        inner.failures += failed as u64;
        inner.queue_wait_us.record(queue_wait_us);
        inner.service_us.record(service_us);
    }

    /// A consistent snapshot; gauges are read alongside the locked
    /// counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        MetricsSnapshot {
            requests: inner.requests,
            failures: inner.failures,
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            busy_workers: self.busy_workers.load(Ordering::Relaxed),
            workers: self.workers.load(Ordering::Relaxed),
            queue_wait_us: inner.queue_wait_us.clone(),
            service_us: inner.service_us.clone(),
        }
    }
}

/// The compile service: compilers and parsed modules are built once
/// and shared; compiled functions come from the content-addressed
/// cache when enabled. `Service` is `Sync` — share one instance across
/// however many worker threads or connections you like.
pub struct Service {
    cache: Option<Arc<FuncCache>>,
    jobs: Option<NonZeroUsize>,
    compilers: Mutex<HashMap<(String, String), Arc<Compiler>>>,
    modules: Mutex<HashMap<String, Arc<marion_ir::Module>>>,
    metrics: Metrics,
}

impl Service {
    /// Builds a service (opening the disk store when configured).
    ///
    /// # Errors
    ///
    /// I/O failures opening the disk store.
    pub fn new(config: &ServeConfig) -> io::Result<Service> {
        let cache = if config.cache {
            Some(match &config.cache_disk {
                Some(path) => {
                    let (cache, _load) = FuncCache::with_disk(config.cache_capacity, path)?;
                    Arc::new(cache)
                }
                None => Arc::new(FuncCache::in_memory(config.cache_capacity)),
            })
        } else {
            None
        };
        Ok(Service {
            cache,
            jobs: config.jobs,
            compilers: Mutex::new(HashMap::new()),
            modules: Mutex::new(HashMap::new()),
            metrics: Metrics::default(),
        })
    }

    /// The shared compile cache, if enabled.
    pub fn cache(&self) -> Option<&Arc<FuncCache>> {
        self.cache.as_ref()
    }

    /// The service-level metrics (cumulative across streams).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn compiler(&self, machine: &str, strategy: &str) -> Result<Arc<Compiler>, String> {
        let key = (machine.to_string(), strategy.to_string());
        if let Some(c) = self.compilers.lock().unwrap().get(&key) {
            return Ok(c.clone());
        }
        if !marion_machines::EXTENDED.contains(&machine) {
            return Err(format!(
                "unknown machine `{machine}` (have: {})",
                marion_machines::EXTENDED.join(", ")
            ));
        }
        let kind = StrategyKind::parse(strategy)
            .ok_or_else(|| format!("unknown strategy `{strategy}`"))?;
        let spec = marion_machines::load(machine);
        let options = CompileOptions {
            jobs: self.jobs,
            cache: self.cache.clone(),
            ..CompileOptions::default()
        };
        let compiler = Arc::new(Compiler::with_options(
            spec.machine,
            spec.escapes,
            kind,
            options,
        ));
        self.compilers
            .lock()
            .unwrap()
            .entry(key)
            .or_insert(compiler.clone());
        Ok(compiler)
    }

    fn module_for(&self, req: &Request) -> Result<Arc<marion_ir::Module>, String> {
        let key = match (&req.workload, &req.source) {
            (Some(w), _) => format!("workload:{w}"),
            (None, Some(s)) => format!("source:{s}"),
            (None, None) => return Err("request needs `workload` or `source`".to_string()),
        };
        if let Some(m) = self.modules.lock().unwrap().get(&key) {
            return Ok(m.clone());
        }
        let module = match (&req.workload, &req.source) {
            (Some(w), _) if w == "livermore" => marion_workloads::multi::combined_livermore(),
            (Some(w), _) => match w.strip_prefix("gen:").and_then(|rest| {
                let (count, seed) = rest.split_once(':')?;
                Some((count.parse::<u64>().ok()?, seed.parse::<u64>().ok()?))
            }) {
                Some((count, seed)) => marion_workloads::multi::combined_generated(count, seed),
                None => {
                    return Err(format!(
                        "unknown workload `{w}` (have: livermore, gen:<count>:<seed>)"
                    ))
                }
            },
            (None, Some(source)) => {
                marion_frontend::compile(source).map_err(|e| format!("frontend: {e}"))?
            }
            (None, None) => unreachable!(),
        };
        let module = Arc::new(module);
        self.modules
            .lock()
            .unwrap()
            .entry(key)
            .or_insert(module.clone());
        Ok(module)
    }

    /// Handles one raw request line, returning the response line and
    /// its accounting.
    pub fn handle_line(&self, line: &str) -> (String, Outcome) {
        let req = match parse_request(line) {
            Ok(req) => req,
            Err(e) => {
                return (
                    error_response(0, &e),
                    Outcome {
                        failed: true,
                        ..Outcome::default()
                    },
                )
            }
        };
        match req.cmd {
            Cmd::Compile => self.handle_compile(&req),
            Cmd::Stats => (self.stats_response(req.id), Outcome::default()),
            Cmd::Metrics => (self.metrics_response(req.id), Outcome::default()),
            Cmd::Machines => (machines_response(req.id), Outcome::default()),
            Cmd::Capabilities => (capabilities_response(req.id), Outcome::default()),
            Cmd::Shutdown => {
                let mut obj = ObjWriter::new();
                obj.int("id", req.id);
                obj.int("ok", 1);
                obj.str("cmd", "shutdown");
                (obj.finish(), Outcome::default())
            }
        }
    }

    fn handle_compile(&self, req: &Request) -> (String, Outcome) {
        let fail = |e: String| {
            (
                error_response(req.id, &e),
                Outcome {
                    failed: true,
                    ..Outcome::default()
                },
            )
        };
        let compiler = match self.compiler(&req.machine, &req.strategy) {
            Ok(c) => c,
            Err(e) => return fail(e),
        };
        let module = match self.module_for(req) {
            Ok(m) => m,
            Err(e) => return fail(e),
        };
        let start = Instant::now();
        let program = match compiler.compile_module(&module) {
            Ok(p) => p,
            Err(e) => return fail(format!("compile: {e}")),
        };
        let wall_us = start.elapsed().as_micros() as i64;
        let summary = program.cache.unwrap_or_default();
        let mut obj = ObjWriter::new();
        obj.int("id", req.id);
        obj.int("ok", 1);
        obj.str("machine", &program.machine_name);
        obj.str("strategy", program.strategy.name());
        obj.int("funcs", program.stats.per_func.len() as i64);
        obj.int("insts", program.stats.insts_generated as i64);
        obj.int("spills", program.stats.spills as i64);
        obj.int("estimated_cycles", program.stats.estimated_cycles as i64);
        obj.int("nops", program.stats.nops_emitted as i64);
        obj.int("cache_hits", summary.hits as i64);
        obj.int("cache_misses", summary.misses as i64);
        obj.int("wall_us", wall_us);
        if req.emit_asm {
            obj.str("asm", &program.render(compiler.machine()));
        }
        (
            obj.finish(),
            Outcome {
                cache_hits: summary.hits,
                cache_misses: summary.misses,
                failed: false,
            },
        )
    }

    fn stats_response(&self, id: i64) -> String {
        let mut obj = ObjWriter::new();
        obj.int("id", id);
        obj.int("ok", 1);
        match &self.cache {
            Some(cache) => {
                let stats = cache.stats();
                obj.int("cache_enabled", 1);
                obj.int("entries", cache.len() as i64);
                obj.int("hits", stats.hits as i64);
                obj.int("misses", stats.misses as i64);
                obj.int("insertions", stats.insertions as i64);
                obj.int("evictions", stats.evictions as i64);
                obj.float("hit_rate", stats.hit_rate());
                if let Some(load) = cache.disk_load() {
                    obj.int("disk_loaded", load.loaded as i64);
                    obj.int("disk_corrupt", load.corrupt as i64);
                }
            }
            None => obj.int("cache_enabled", 0),
        }
        obj.finish()
    }

    fn metrics_response(&self, id: i64) -> String {
        let snap = self.metrics.snapshot();
        let mut obj = ObjWriter::new();
        obj.int("id", id);
        obj.int("ok", 1);
        obj.int("requests", snap.requests as i64);
        obj.int("failures", snap.failures as i64);
        obj.int("queue_depth", snap.queue_depth);
        obj.int("busy_workers", snap.busy_workers);
        obj.int("workers", snap.workers);
        write_hist(&mut obj, "service", &snap.service_us);
        write_hist(&mut obj, "queue_wait", &snap.queue_wait_us);
        if let Some(cache) = &self.cache {
            let stats = cache.stats();
            obj.int("cache_hits", stats.hits as i64);
            obj.int("cache_misses", stats.misses as i64);
            obj.int("cache_evictions", stats.evictions as i64);
            obj.float("cache_hit_rate", stats.hit_rate());
        }
        obj.finish()
    }
}

/// Writes one histogram into a flat response as `<prefix>_count`,
/// `<prefix>_sum_us`, `<prefix>_p50_us`/`p90`/`p99` (percentiles
/// omitted when empty), and the sparse `<prefix>_buckets` string
/// ([`Histogram::encode_counts`]).
fn write_hist(obj: &mut ObjWriter, prefix: &str, hist: &Histogram) {
    obj.int(&format!("{prefix}_count"), hist.count() as i64);
    obj.int(
        &format!("{prefix}_sum_us"),
        i64::try_from(hist.sum()).unwrap_or(i64::MAX),
    );
    for (label, p) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
        if let Some(v) = hist.percentile(p) {
            obj.int(
                &format!("{prefix}_{label}_us"),
                i64::try_from(v).unwrap_or(i64::MAX),
            );
        }
    }
    obj.str(&format!("{prefix}_buckets"), &hist.encode_counts());
}

/// The `machines` response: everything a client needs to discover
/// before issuing compile requests.
fn machines_response(id: i64) -> String {
    let strategies: Vec<&str> = StrategyKind::ALL.iter().map(|k| k.name()).collect();
    let mut obj = ObjWriter::new();
    obj.int("id", id);
    obj.int("ok", 1);
    obj.str("machines", &marion_machines::EXTENDED.join(","));
    obj.str("strategies", &strategies.join(","));
    obj.int("protocol_version", PROTOCOL_VERSION);
    obj.int("cache_format_version", marion_core::fcache::FORMAT_VERSION);
    obj.finish()
}

/// The `capabilities` response: per-machine scheduling detail so a
/// client can pick a target without consulting the Maril sources.
///
/// For each served machine: `<name>_issue_width` (long-word elements,
/// min 1 for single-issue targets), `<name>_clocks` (declared temporal
/// clocks), `<name>_reg_classes` (`class:count` pairs), and
/// `<name>_temporals` (`latch@clock` pairs).
fn capabilities_response(id: i64) -> String {
    let mut obj = ObjWriter::new();
    obj.int("id", id);
    obj.int("ok", 1);
    obj.int("protocol_version", PROTOCOL_VERSION);
    obj.str("machines", &marion_machines::EXTENDED.join(","));
    for name in marion_machines::EXTENDED {
        let machine = marion_machines::load(name).machine;
        let issue_width = machine.elements().len().max(1);
        obj.int(
            &format!("{name}_issue_width"),
            i64::try_from(issue_width).unwrap_or(i64::MAX),
        );
        obj.str(&format!("{name}_clocks"), &machine.clocks().join(","));
        let classes: Vec<String> = machine
            .reg_classes()
            .iter()
            .map(|c| format!("{}:{}", c.name, c.count))
            .collect();
        obj.str(&format!("{name}_reg_classes"), &classes.join(","));
        let temporals: Vec<String> = machine
            .temporals()
            .iter()
            .map(|t| format!("{}@{}", t.name, machine.clocks()[t.clock.0 as usize]))
            .collect();
        obj.str(&format!("{name}_temporals"), &temporals.join(","));
    }
    obj.finish()
}

fn error_response(id: i64, error: &str) -> String {
    let mut obj = ObjWriter::new();
    obj.int("id", id);
    obj.int("ok", 0);
    obj.str("error", error);
    obj.finish()
}

fn is_shutdown(line: &str) -> bool {
    matches!(parse_request(line), Ok(req) if req.cmd == Cmd::Shutdown)
}

/// Serves `input` to `output`: requests dispatch to `workers` threads
/// through a bounded queue of `queue` entries (backpressure — the
/// reader blocks when the pool is saturated), and responses stream
/// back **in request order**. Returns after end-of-input or a
/// `shutdown` request, with every queued request answered.
///
/// # Errors
///
/// I/O failures reading `input` or writing `output`.
///
/// # Panics
///
/// Panics if a worker thread panics (poisoned internal channels).
pub fn run_stream<R: BufRead, W: Write + Send>(
    service: &Service,
    input: R,
    output: W,
    workers: usize,
    queue: usize,
) -> io::Result<ServeStats> {
    let workers = workers.max(1);
    let queue = queue.max(1);
    let metrics = service.metrics();
    metrics.workers.store(workers as i64, Ordering::Relaxed);
    let (work_tx, work_rx) = mpsc::sync_channel::<(u64, String, Instant)>(queue);
    let work_rx = Mutex::new(work_rx);
    let (done_tx, done_rx) = mpsc::channel::<(u64, String)>();
    let requests = AtomicU64::new(0);
    let failures = AtomicU64::new(0);
    let hits = AtomicU64::new(0);
    let misses = AtomicU64::new(0);

    let (read_result, write_result) = std::thread::scope(|s| {
        let writer = s.spawn(move || -> io::Result<()> {
            let mut out = output;
            let mut pending: BTreeMap<u64, String> = BTreeMap::new();
            let mut next = 0u64;
            for (seq, line) in done_rx {
                pending.insert(seq, line);
                while let Some(line) = pending.remove(&next) {
                    out.write_all(line.as_bytes())?;
                    out.write_all(b"\n")?;
                    out.flush()?;
                    next += 1;
                }
            }
            Ok(())
        });
        for _ in 0..workers {
            let done_tx = done_tx.clone();
            let work_rx = &work_rx;
            let requests = &requests;
            let failures = &failures;
            let hits = &hits;
            let misses = &misses;
            s.spawn(move || loop {
                let msg = work_rx.lock().unwrap().recv();
                let Ok((seq, line, enqueued)) = msg else {
                    break;
                };
                let queue_wait_us = enqueued.elapsed().as_micros() as u64;
                metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
                metrics.busy_workers.fetch_add(1, Ordering::Relaxed);
                let served = Instant::now();
                let (response, outcome) = service.handle_line(&line);
                metrics.busy_workers.fetch_sub(1, Ordering::Relaxed);
                // Recorded *after* handle_line, so a `metrics` request
                // snapshots only requests completed before it — and
                // the bucket-count/request equality stays exact.
                metrics.record(
                    queue_wait_us,
                    served.elapsed().as_micros() as u64,
                    outcome.failed,
                );
                requests.fetch_add(1, Ordering::Relaxed);
                failures.fetch_add(outcome.failed as u64, Ordering::Relaxed);
                hits.fetch_add(outcome.cache_hits, Ordering::Relaxed);
                misses.fetch_add(outcome.cache_misses, Ordering::Relaxed);
                if done_tx.send((seq, response)).is_err() {
                    break;
                }
            });
        }
        drop(done_tx);

        // Read on the calling thread; `send` blocks when the queue is
        // full, which is the backpressure.
        let read = (|| -> io::Result<()> {
            let mut seq = 0u64;
            for line in input.lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                let stop = is_shutdown(&line);
                metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
                if work_tx.send((seq, line, Instant::now())).is_err() {
                    metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
                    break;
                }
                seq += 1;
                if stop {
                    break;
                }
            }
            Ok(())
        })();
        drop(work_tx);
        (read, writer.join().expect("writer thread panicked"))
    });
    read_result?;
    write_result?;
    Ok(ServeStats {
        requests: requests.into_inner(),
        failures: failures.into_inner(),
        cache_hits: hits.into_inner(),
        cache_misses: misses.into_inner(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use marion_trace::Value;

    fn respond(service: &Service, requests: &str, workers: usize) -> (Vec<String>, ServeStats) {
        let mut out: Vec<u8> = Vec::new();
        let stats = run_stream(service, requests.as_bytes(), &mut out, workers, 4).expect("stream");
        let lines = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect();
        (lines, stats)
    }

    fn field(line: &str, name: &str) -> Option<Value> {
        parse_flat(line)
            .unwrap()
            .into_iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    #[test]
    fn compile_request_round_trips_and_second_hits_cache() {
        let service = Service::new(&ServeConfig::default()).unwrap();
        let req = r#"{"id":1,"cmd":"compile","machine":"toyp","strategy":"Postpass","source":"int main() { return 41 + 1; }","emit_asm":1}"#;
        let requests = format!("{req}\n{}\n", req.replace("\"id\":1", "\"id\":2"));
        let (lines, stats) = respond(&service, &requests, 1);
        assert_eq!(lines.len(), 2);
        assert_eq!(field(&lines[0], "ok"), Some(Value::Int(1)));
        assert_eq!(field(&lines[0], "cache_hits"), Some(Value::Int(0)));
        assert_eq!(field(&lines[0], "cache_misses"), Some(Value::Int(1)));
        assert_eq!(field(&lines[1], "cache_hits"), Some(Value::Int(1)));
        assert_eq!(field(&lines[1], "cache_misses"), Some(Value::Int(0)));
        // Identical output either way.
        assert_eq!(field(&lines[0], "asm"), field(&lines[1], "asm"));
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.failures, 0);
    }

    #[test]
    fn responses_come_back_in_request_order() {
        let service = Service::new(&ServeConfig::default()).unwrap();
        // Mix heavy (livermore) and trivial requests so out-of-order
        // completion is likely, then check ordering by id.
        let mut requests = String::new();
        for id in 0..6 {
            if id % 2 == 0 {
                requests.push_str(&format!(
                    "{{\"id\":{id},\"machine\":\"r2000\",\"strategy\":\"Postpass\",\"workload\":\"gen:2:7\"}}\n"
                ));
            } else {
                requests.push_str(&format!(
                    "{{\"id\":{id},\"machine\":\"toyp\",\"strategy\":\"Postpass\",\"source\":\"int main() {{ return {id}; }}\"}}\n"
                ));
            }
        }
        let (lines, stats) = respond(&service, &requests, 4);
        assert_eq!(lines.len(), 6);
        for (i, line) in lines.iter().enumerate() {
            assert_eq!(field(line, "id"), Some(Value::Int(i as i64)), "line {i}");
            assert_eq!(field(line, "ok"), Some(Value::Int(1)), "line {i}");
        }
        assert_eq!(stats.requests, 6);
    }

    #[test]
    fn bad_requests_fail_without_killing_the_stream() {
        let service = Service::new(&ServeConfig::default()).unwrap();
        let requests = concat!(
            "{\"id\":1,\"machine\":\"vax\",\"strategy\":\"IPS\",\"workload\":\"livermore\"}\n",
            "not json at all\n",
            "{\"id\":3,\"machine\":\"toyp\",\"strategy\":\"Postpass\",\"source\":\"int main() { return 0; }\"}\n",
        );
        let (lines, stats) = respond(&service, requests, 2);
        assert_eq!(lines.len(), 3);
        assert_eq!(field(&lines[0], "ok"), Some(Value::Int(0)));
        assert!(field(&lines[0], "error")
            .and_then(|v| v.as_str().map(|s| s.contains("unknown machine")))
            .unwrap_or(false));
        assert_eq!(field(&lines[1], "ok"), Some(Value::Int(0)));
        assert_eq!(field(&lines[2], "ok"), Some(Value::Int(1)));
        assert_eq!(stats.failures, 2);
    }

    #[test]
    fn shutdown_answers_and_stops_reading() {
        let service = Service::new(&ServeConfig::default()).unwrap();
        let requests = concat!(
            "{\"id\":1,\"machine\":\"toyp\",\"strategy\":\"Postpass\",\"source\":\"int main() { return 1; }\"}\n",
            "{\"id\":2,\"cmd\":\"shutdown\"}\n",
            "{\"id\":3,\"machine\":\"toyp\",\"strategy\":\"Postpass\",\"source\":\"int main() { return 3; }\"}\n",
        );
        let (lines, stats) = respond(&service, requests, 2);
        assert_eq!(lines.len(), 2, "request after shutdown must not run");
        assert_eq!(field(&lines[1], "cmd"), Some(Value::Str("shutdown".into())));
        assert_eq!(stats.requests, 2);
    }

    #[test]
    fn stats_reports_cache_counters() {
        let service = Service::new(&ServeConfig::default()).unwrap();
        let requests = concat!(
            "{\"id\":1,\"machine\":\"toyp\",\"strategy\":\"Postpass\",\"source\":\"int main() { return 1; }\"}\n",
            "{\"id\":2,\"cmd\":\"stats\"}\n",
        );
        let (lines, _) = respond(&service, requests, 1);
        assert_eq!(field(&lines[1], "cache_enabled"), Some(Value::Int(1)));
        assert_eq!(field(&lines[1], "entries"), Some(Value::Int(1)));
        assert_eq!(field(&lines[1], "misses"), Some(Value::Int(1)));
    }

    #[test]
    fn metrics_bucket_counts_exactly_equal_requests_served() {
        let service = Service::new(&ServeConfig::default()).unwrap();
        let mut requests = String::new();
        for id in 1..=5 {
            requests.push_str(&format!(
                "{{\"id\":{id},\"machine\":\"toyp\",\"strategy\":\"Postpass\",\"source\":\"int main() {{ return {id}; }}\"}}\n"
            ));
        }
        requests.push_str("{\"id\":6,\"cmd\":\"metrics\"}\n");
        let (lines, stream_stats) = respond(&service, &requests, 1);
        assert_eq!(lines.len(), 6);
        let metrics = &lines[5];
        assert_eq!(field(metrics, "ok"), Some(Value::Int(1)));
        // Acceptance invariant: with one worker, the snapshot covers
        // exactly the five compiles served before it, and the
        // histogram bucket counts sum to that same number.
        assert_eq!(field(metrics, "requests"), Some(Value::Int(5)));
        assert_eq!(field(metrics, "service_count"), Some(Value::Int(5)));
        let buckets = field(metrics, "service_buckets").unwrap();
        let hist = Histogram::from_parts(buckets.as_str().unwrap(), 0).unwrap();
        assert_eq!(hist.count(), 5, "sum of bucket counts == requests");
        assert_eq!(field(metrics, "queue_wait_count"), Some(Value::Int(5)));
        assert_eq!(field(metrics, "workers"), Some(Value::Int(1)));
        assert_eq!(field(metrics, "failures"), Some(Value::Int(0)));
        // Percentiles exist once there is data.
        assert!(field(metrics, "service_p50_us").is_some());
        assert!(field(metrics, "service_p99_us").is_some());
        // The stream total counts the metrics request itself too.
        assert_eq!(stream_stats.requests, 6);
        // After the stream drains, the cumulative snapshot agrees with
        // the stream accounting and the invariant still holds.
        let snap = service.metrics().snapshot();
        assert_eq!(snap.requests, 6);
        assert_eq!(snap.service_us.count(), snap.requests);
        assert_eq!(snap.queue_wait_us.count(), snap.requests);
        assert_eq!(snap.queue_depth, 0);
        assert_eq!(snap.busy_workers, 0);
    }

    #[test]
    fn metrics_snapshot_stays_consistent_under_concurrent_requests() {
        let service = Service::new(&ServeConfig::default()).unwrap();
        // Many workers, interleaved compiles and metrics probes: every
        // snapshot must satisfy count(service_us) == requests, however
        // the threads interleave.
        let mut requests = String::new();
        for id in 0..24 {
            if id % 3 == 2 {
                requests.push_str(&format!("{{\"id\":{id},\"cmd\":\"metrics\"}}\n"));
            } else {
                requests.push_str(&format!(
                    "{{\"id\":{id},\"machine\":\"toyp\",\"strategy\":\"Postpass\",\"source\":\"int main() {{ return {id}; }}\"}}\n"
                ));
            }
        }
        let (lines, stats) = respond(&service, &requests, 4);
        assert_eq!(lines.len(), 24);
        let mut probes = 0;
        for line in &lines {
            let Some(requests_seen) = field(line, "requests").and_then(|v| v.as_int()) else {
                continue;
            };
            probes += 1;
            assert_eq!(
                field(line, "service_count"),
                Some(Value::Int(requests_seen)),
                "snapshot torn: {line}"
            );
            let buckets = field(line, "service_buckets").unwrap();
            let hist = Histogram::from_parts(buckets.as_str().unwrap(), 0).unwrap();
            assert_eq!(hist.count(), requests_seen as u64, "buckets vs requests");
            // Gauges stay within configuration bounds.
            let busy = field(line, "busy_workers")
                .and_then(|v| v.as_int())
                .unwrap();
            assert!((0..=4).contains(&busy), "busy_workers {busy}");
        }
        assert_eq!(probes, 8);
        assert_eq!(stats.requests, 24);
        let snap = service.metrics().snapshot();
        assert_eq!(snap.requests, 24);
        assert_eq!(snap.service_us.count(), 24);
    }

    #[test]
    fn machines_lists_targets_strategies_and_versions() {
        let service = Service::new(&ServeConfig::default()).unwrap();
        let (lines, _) = respond(&service, "{\"id\":7,\"cmd\":\"machines\"}\n", 1);
        let line = &lines[0];
        assert_eq!(field(line, "ok"), Some(Value::Int(1)));
        let machines = field(line, "machines").unwrap();
        let machines = machines.as_str().unwrap();
        for m in marion_machines::EXTENDED {
            assert!(machines.split(',').any(|x| x == m), "missing {m}");
        }
        assert_eq!(
            field(line, "strategies"),
            Some(Value::Str("Postpass,IPS,RASE".into()))
        );
        assert_eq!(
            field(line, "protocol_version"),
            Some(Value::Int(PROTOCOL_VERSION))
        );
        assert_eq!(
            field(line, "cache_format_version"),
            Some(Value::Int(marion_core::fcache::FORMAT_VERSION))
        );
    }

    #[test]
    fn capabilities_reports_per_machine_detail() {
        let service = Service::new(&ServeConfig::default()).unwrap();
        let (lines, _) = respond(&service, "{\"id\":8,\"cmd\":\"capabilities\"}\n", 1);
        let line = &lines[0];
        assert_eq!(field(line, "ok"), Some(Value::Int(1)));
        assert_eq!(
            field(line, "protocol_version"),
            Some(Value::Int(PROTOCOL_VERSION))
        );
        for m in marion_machines::EXTENDED {
            let width = field(line, &format!("{m}_issue_width")).unwrap();
            let width = width.as_int().unwrap();
            assert!(width >= 1, "{m}: issue width {width}");
            assert!(field(line, &format!("{m}_clocks")).is_some(), "{m} clocks");
            let classes = field(line, &format!("{m}_reg_classes")).unwrap();
            let classes = classes.as_str().unwrap().to_string();
            // Every target declares at least one class, `name:count`.
            assert!(
                classes.split(',').all(|c| {
                    let (name, count) = c.split_once(':').unwrap_or(("", ""));
                    !name.is_empty() && count.parse::<u32>().is_ok()
                }),
                "{m}: bad reg_classes `{classes}`"
            );
        }
        // The i860 is the paper's LIW target: multiple long-word
        // elements, plus temporal latches on its adder/multiplier
        // clocks. Scalar machines report width 1.
        let width = field(line, "i860_issue_width").unwrap();
        assert!(width.as_int().unwrap() > 1, "i860 must be multi-issue");
        assert_eq!(
            field(line, "r2000_issue_width").and_then(|v| v.as_int()),
            Some(1)
        );
        let temporals = field(line, "i860_temporals").unwrap();
        assert!(
            temporals.as_str().unwrap().contains('@'),
            "i860 temporals should be latch@clock pairs"
        );
    }

    #[test]
    fn stats_reports_disk_load_and_corrupt_lines() {
        let dir = std::env::temp_dir().join(format!("marion-serve-stats-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let store = dir.join("store.jsonl");
        // First service populates the disk store.
        {
            let service = Service::new(&ServeConfig {
                cache_disk: Some(store.clone()),
                ..ServeConfig::default()
            })
            .unwrap();
            let (lines, _) = respond(
                &service,
                "{\"id\":1,\"machine\":\"toyp\",\"strategy\":\"Postpass\",\"source\":\"int main() { return 1; }\"}\n",
                1,
            );
            assert_eq!(field(&lines[0], "ok"), Some(Value::Int(1)));
        }
        // Corrupt the store with a garbage line, then reopen: `stats`
        // must report both what loaded and what was rejected.
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&store)
            .unwrap();
        writeln!(f, "this is not a cache entry").unwrap();
        drop(f);
        let service = Service::new(&ServeConfig {
            cache_disk: Some(store.clone()),
            ..ServeConfig::default()
        })
        .unwrap();
        let (lines, _) = respond(&service, "{\"id\":2,\"cmd\":\"stats\"}\n", 1);
        let line = &lines[0];
        assert_eq!(field(line, "cache_enabled"), Some(Value::Int(1)));
        assert_eq!(field(line, "disk_loaded"), Some(Value::Int(1)));
        assert_eq!(field(line, "disk_corrupt"), Some(Value::Int(1)));
        assert!(field(line, "insertions").is_some());
        assert!(field(line, "evictions").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn no_cache_service_still_serves() {
        let service = Service::new(&ServeConfig {
            cache: false,
            ..ServeConfig::default()
        })
        .unwrap();
        let req =
            "{\"id\":1,\"machine\":\"toyp\",\"strategy\":\"Postpass\",\"source\":\"int main() { return 9; }\"}\n";
        let (lines, stats) = respond(&service, &format!("{req}{req}"), 1);
        assert_eq!(field(&lines[0], "ok"), Some(Value::Int(1)));
        assert_eq!(field(&lines[1], "cache_hits"), Some(Value::Int(0)));
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_misses, 0);
    }
}
