//! Self-contained HTML observability report.
//!
//! [`render_html`] turns an aggregated [`TraceData`] — plus, when
//! available, one `metrics` response line from the compile service —
//! into a single HTML page with **zero external assets**: all CSS is
//! inline in one `<style>` block, charts are plain `<div>` bars, and
//! collapsible sections use `<details>`, so the page renders fully
//! offline from a `file:` URL. The renderer never emits a link or an
//! embedded-resource attribute; CI grep-asserts that the output stays
//! that way.
//!
//! Sections mirror the text report (`marion-report`): phase wall-clock
//! timing, per-function counters, stall attribution per scheduling
//! strategy, the log2 sample distributions recorded by
//! `Tracer::observe`, cache effectiveness, reservation tables with
//! their scheduler narratives — and, when serve metrics are supplied,
//! request-latency distributions and worker utilization.

use marion_trace::{hist, Histogram, Record, TraceData, Value};
use std::collections::BTreeMap;

/// Escapes text for HTML body and attribute positions.
fn esc(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// A horizontal bar scaled to `value / max`, labelled on the right.
fn bar(out: &mut String, label: &str, value: f64, max: f64, text: &str) {
    let pct = if max > 0.0 {
        (value / max * 100.0).clamp(0.0, 100.0)
    } else {
        0.0
    };
    out.push_str(&format!(
        "<div class=\"barrow\"><span class=\"barlabel\">{}</span>\
         <span class=\"bartrack\"><span class=\"bar\" style=\"width:{pct:.1}%\"></span></span>\
         <span class=\"barvalue\">{}</span></div>\n",
        esc(label),
        esc(text)
    ));
}

fn section(out: &mut String, title: &str) {
    out.push_str(&format!("<h2>{}</h2>\n", esc(title)));
}

fn tile(out: &mut String, label: &str, value: &str) {
    out.push_str(&format!(
        "<div class=\"tile\"><div class=\"tilevalue\">{}</div>\
         <div class=\"tilelabel\">{}</div></div>\n",
        esc(value),
        esc(label)
    ));
}

fn table_open(out: &mut String, headers: &[&str]) {
    out.push_str("<table><thead><tr>");
    for h in headers {
        out.push_str(&format!("<th>{}</th>", esc(h)));
    }
    out.push_str("</tr></thead><tbody>\n");
}

fn table_row(out: &mut String, cells: &[String]) {
    out.push_str("<tr>");
    for (i, c) in cells.iter().enumerate() {
        let class = if i == 0 { " class=\"name\"" } else { "" };
        out.push_str(&format!("<td{class}>{}</td>", esc(c)));
    }
    out.push_str("</tr>\n");
}

fn table_close(out: &mut String) {
    out.push_str("</tbody></table>\n");
}

/// Renders one log2 histogram as bucket bars plus a summary line.
fn hist_block(out: &mut String, title: &str, h: &Histogram, unit: &str) {
    out.push_str(&format!(
        "<div class=\"hist\"><div class=\"histtitle\">{} <span class=\"muted\">{}</span></div>\n",
        esc(title),
        esc(&h.summarize())
    ));
    let max = h.counts().iter().copied().max().unwrap_or(0) as f64;
    for (i, &c) in h.counts().iter().enumerate() {
        if c == 0 {
            continue;
        }
        let label = if i == 0 {
            format!("0 {unit}")
        } else {
            format!(
                "{}\u{2013}{} {unit}",
                hist::bucket_min(i),
                hist::bucket_max(i)
            )
        };
        bar(out, &label, c as f64, max, &c.to_string());
    }
    out.push_str("</div>\n");
}

fn event_str<'a>(fields: &'a [(String, Value)], name: &str) -> Option<&'a str> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .and_then(|(_, v)| v.as_str())
}

fn event_int(fields: &[(String, Value)], name: &str) -> Option<i64> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .and_then(|(_, v)| v.as_int())
}

const STALL_REASONS: [(&str, &str); 6] = [
    ("stall_dependence", "dependence"),
    ("stall_resource", "resource"),
    ("stall_class", "class"),
    ("stall_temporal", "temporal"),
    ("stall_pressure", "pressure"),
    ("stall_order", "order"),
];

const STYLE: &str = "\
:root{color-scheme:light dark}\
body{font-family:ui-monospace,monospace;margin:2rem auto;max-width:70rem;\
padding:0 1rem;line-height:1.5;background:#16181d;color:#d8dee9}\
h1{font-size:1.4rem;border-bottom:2px solid #3b4252;padding-bottom:.4rem}\
h2{font-size:1.05rem;margin-top:2rem;color:#88c0d0}\
h3{font-size:.95rem;margin:.8rem 0 .3rem;color:#a3be8c}\
table{border-collapse:collapse;margin:.5rem 0;font-size:.85rem}\
th,td{border:1px solid #3b4252;padding:.2rem .6rem;text-align:right}\
th{background:#242933;color:#88c0d0}\
td.name{text-align:left;color:#e5e9f0}\
.tiles{display:flex;flex-wrap:wrap;gap:.8rem;margin:.8rem 0}\
.tile{background:#242933;border:1px solid #3b4252;border-radius:6px;\
padding:.6rem 1rem;min-width:8rem;text-align:center}\
.tilevalue{font-size:1.3rem;color:#ebcb8b}\
.tilelabel{font-size:.75rem;color:#81a1c1}\
.barrow{display:flex;align-items:center;gap:.5rem;font-size:.8rem;margin:.12rem 0}\
.barlabel{flex:0 0 16rem;text-align:right;overflow:hidden;\
text-overflow:ellipsis;white-space:nowrap;color:#81a1c1}\
.bartrack{flex:1;background:#242933;border-radius:3px;height:.9rem;overflow:hidden}\
.bar{display:block;height:100%;background:#5e81ac}\
.barvalue{flex:0 0 10rem;color:#d8dee9}\
.hist{margin:.7rem 0 1rem;border-left:3px solid #3b4252;padding-left:.8rem}\
.histtitle{font-size:.9rem;margin-bottom:.2rem;color:#e5e9f0}\
.muted{color:#616e88;font-size:.78rem}\
pre{background:#242933;border:1px solid #3b4252;border-radius:4px;\
padding:.6rem;overflow-x:auto;font-size:.78rem}\
details{margin:.4rem 0}\
summary{cursor:pointer;color:#81a1c1}\
footer{margin-top:2.5rem;font-size:.75rem;color:#616e88;\
border-top:1px solid #3b4252;padding-top:.5rem}";

/// Renders the whole report. `serve` is the parsed flat-JSON field
/// list of one `metrics` response from the compile service (see
/// `serve::PROTOCOL_VERSION` docs); pass `None` for pure compile
/// traces.
pub fn render_html(data: &TraceData, serve: Option<&[(String, Value)]>) -> String {
    render_html_with(data, serve, &[])
}

/// [`render_html`] plus caller-supplied extra sections: `(title, svg)`
/// pairs appended before the footer. The SVG must itself be
/// self-contained (the inline-DAG renderer and the flamegraph
/// renderer both are); titles are escaped here.
pub fn render_html_with(
    data: &TraceData,
    serve: Option<&[(String, Value)]>,
    extra_svg: &[(String, String)],
) -> String {
    let mut out = String::with_capacity(16 * 1024);
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n");
    out.push_str("<title>Marion observability report</title>\n");
    out.push_str(&format!("<style>{STYLE}</style>\n"));
    out.push_str("</head><body>\n<h1>Marion observability report</h1>\n");

    // ---- aggregate the counters per ctx once ----
    let mut funcs: BTreeMap<&str, BTreeMap<&str, i64>> = BTreeMap::new();
    let mut phases: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for r in &data.records {
        match r {
            Record::Counter { name, ctx, value } => {
                *funcs.entry(ctx).or_default().entry(name).or_insert(0) += value;
            }
            Record::Span { name, dur_us, .. } => {
                let slot = phases.entry(name).or_insert((0, 0));
                slot.0 += dur_us;
                slot.1 += 1;
            }
            _ => {}
        }
    }
    let total = |name: &str| data.counter_total(name);

    // ---- summary tiles ----
    out.push_str("<div class=\"tiles\">\n");
    tile(&mut out, "functions", &funcs.len().to_string());
    tile(
        &mut out,
        "instructions",
        &total("insts_generated").to_string(),
    );
    tile(
        &mut out,
        "estimated cycles",
        &total("estimated_cycles").to_string(),
    );
    tile(
        &mut out,
        "stall cycles",
        &total("sched_stall_cycles").to_string(),
    );
    let wall: u64 = phases.values().map(|(t, _)| t).sum();
    tile(&mut out, "traced wall time", &format!("{wall} us"));
    out.push_str("</div>\n");

    // ---- phase timing ----
    if !phases.is_empty() {
        section(&mut out, "Phase timing (wall clock)");
        let mut rows: Vec<(&str, u64, u64)> =
            phases.iter().map(|(n, (t, c))| (*n, *t, *c)).collect();
        rows.sort_by_key(|(_, t, _)| std::cmp::Reverse(*t));
        let max = rows.first().map(|(_, t, _)| *t).unwrap_or(0) as f64;
        for (name, total, count) in rows {
            bar(
                &mut out,
                name,
                total as f64,
                max,
                &format!("{total} us / {count} span(s)"),
            );
        }
    }

    // ---- strategy-interior flamegraph ----
    // `prof` records (micro-span aggregation) render as a call-tree
    // flamegraph next to the phase bars: where `strategy`'s wall time
    // actually goes, loop by loop.
    let flame_root = crate::flame::flame_tree(data);
    if !flame_root.children.is_empty() {
        section(&mut out, "Where the time goes (self-profile flamegraph)");
        out.push_str(&crate::flame::render_svg(
            &flame_root,
            "micro-span wall-clock attribution (hover for self time)",
        ));
        // Top self-time frames as a table, for grep-ability.
        let mut rows: Vec<(String, u64, u64, u64)> = Vec::new();
        collect_self_rows(&flame_root, "", &mut rows);
        rows.sort_by_key(|(_, s, _, _)| std::cmp::Reverse(*s));
        rows.truncate(12);
        if !rows.is_empty() {
            table_open(&mut out, &["frame", "self us", "total us", "calls"]);
            for (path, self_us, total_us, count) in rows {
                table_row(
                    &mut out,
                    &[
                        path,
                        self_us.to_string(),
                        total_us.to_string(),
                        count.to_string(),
                    ],
                );
            }
            table_close(&mut out);
        }
    }

    // ---- per-function counters ----
    if !funcs.is_empty() {
        section(&mut out, "Per-function summary");
        let cols = [
            ("insts_generated", "insts"),
            ("spills", "spills"),
            ("estimated_cycles", "est cycles"),
            ("delay_slots_filled", "filled"),
            ("nops_emitted", "nops"),
            ("sched_stall_cycles", "stalls"),
            ("packed_words", "packed"),
        ];
        let mut headers = vec!["machine/function"];
        headers.extend(cols.iter().map(|(_, h)| *h));
        table_open(&mut out, &headers);
        for (ctx, counters) in &funcs {
            let mut cells = vec![(*ctx).to_string()];
            cells.extend(
                cols.iter()
                    .map(|(key, _)| counters.get(key).copied().unwrap_or(0).to_string()),
            );
            table_row(&mut out, &cells);
        }
        table_close(&mut out);
    }

    // ---- stall reasons per strategy pass ----
    // Final sched_block events carry a per-pass label ("sched:ips",
    // "sched:postpass-final", …) and typed stall cycles; summing per
    // (pass, reason) gives the strategy-by-strategy breakdown.
    let mut by_pass: BTreeMap<String, BTreeMap<&str, i64>> = BTreeMap::new();
    for (_, fields) in data.events_named("sched_block") {
        if event_int(fields, "final") != Some(1) {
            continue;
        }
        let pass = event_str(fields, "pass").unwrap_or("?").to_string();
        let slot = by_pass.entry(pass).or_default();
        for (key, reason) in STALL_REASONS {
            *slot.entry(reason).or_insert(0) += event_int(fields, key).unwrap_or(0);
        }
    }
    by_pass.retain(|_, reasons| reasons.values().any(|&v| v > 0));
    if !by_pass.is_empty() {
        section(&mut out, "Stall reasons by strategy");
        let max = by_pass
            .values()
            .flat_map(|r| r.values())
            .copied()
            .max()
            .unwrap_or(0) as f64;
        for (pass, reasons) in &by_pass {
            out.push_str(&format!("<h3>{}</h3>\n", esc(pass)));
            for (key, reason) in STALL_REASONS {
                let _ = key;
                let cycles = reasons.get(reason).copied().unwrap_or(0);
                if cycles > 0 {
                    bar(
                        &mut out,
                        reason,
                        cycles as f64,
                        max,
                        &format!("{cycles} cycle(s)"),
                    );
                }
            }
        }
    }

    // ---- sample distributions (log2 histograms) ----
    let hists: Vec<(&str, &str, &Histogram)> = data
        .records
        .iter()
        .filter_map(|r| match r {
            Record::Hist { name, ctx, hist } => Some((ctx.as_str(), name.as_str(), hist.as_ref())),
            _ => None,
        })
        .collect();
    if !hists.is_empty() {
        section(&mut out, "Sample distributions (log2 buckets)");
        for (ctx, name, h) in hists {
            hist_block(&mut out, &format!("{ctx} \u{2014} {name}"), h, "");
        }
    }

    // ---- gauges ----
    let gauges: Vec<(&str, &str, i64)> = data
        .records
        .iter()
        .filter_map(|r| match r {
            Record::Gauge { name, ctx, value } => Some((ctx.as_str(), name.as_str(), *value)),
            _ => None,
        })
        .collect();
    if !gauges.is_empty() {
        section(&mut out, "Gauges (high-water)");
        table_open(&mut out, &["context", "gauge", "value"]);
        for (ctx, name, value) in gauges {
            table_row(
                &mut out,
                &[ctx.to_string(), name.to_string(), value.to_string()],
            );
        }
        table_close(&mut out);
    }

    // ---- cache effectiveness ----
    let hits = total("cache_hit");
    let misses = total("cache_miss");
    let evicts = total("cache_evict");
    if hits + misses + evicts > 0 {
        section(&mut out, "Compile-cache effectiveness");
        let lookups = hits + misses;
        let rate = if lookups > 0 {
            hits as f64 * 100.0 / lookups as f64
        } else {
            0.0
        };
        out.push_str("<div class=\"tiles\">\n");
        tile(&mut out, "hits", &hits.to_string());
        tile(&mut out, "misses", &misses.to_string());
        tile(&mut out, "evictions", &evicts.to_string());
        tile(&mut out, "hit rate", &format!("{rate:.0}%"));
        out.push_str("</div>\n");
    }

    // ---- reservation tables + narratives ----
    let mut narratives: BTreeMap<(String, String), Vec<String>> = BTreeMap::new();
    for (ctx, fields) in data.events_named("sched_explain") {
        let pass = event_str(fields, "pass").unwrap_or("?").to_string();
        if let Some(text) = event_str(fields, "narrative") {
            narratives
                .entry((ctx.to_string(), pass))
                .or_default()
                .push(text.to_string());
        }
    }
    let tables = data.events_named("reservation_table");
    if !tables.is_empty() || !narratives.is_empty() {
        section(&mut out, "Reservation tables and scheduler narratives");
        for (ctx, fields) in tables {
            let pass = event_str(fields, "pass").unwrap_or("?").to_string();
            out.push_str(&format!(
                "<details><summary>{} [{}]</summary>\n",
                esc(ctx),
                esc(&pass)
            ));
            if let Some(table) = event_str(fields, "table") {
                out.push_str(&format!("<pre>{}</pre>\n", esc(table)));
            }
            if let Some(texts) = narratives.remove(&(ctx.to_string(), pass)) {
                for text in texts {
                    out.push_str(&format!("<pre>{}</pre>\n", esc(&text)));
                }
            }
            out.push_str("</details>\n");
        }
        for ((ctx, pass), texts) in narratives {
            out.push_str(&format!(
                "<details><summary>{} [{}] (narrative)</summary>\n",
                esc(&ctx),
                esc(&pass)
            ));
            for text in texts {
                out.push_str(&format!("<pre>{}</pre>\n", esc(&text)));
            }
            out.push_str("</details>\n");
        }
    }

    // ---- serve metrics ----
    if let Some(fields) = serve {
        render_serve_section(&mut out, fields);
    }

    // ---- caller-supplied SVG sections (inline DAGs and the like) ----
    for (title, svg) in extra_svg {
        section(&mut out, title);
        out.push_str(svg);
    }

    out.push_str(
        "<footer>marion-report \u{2014} single-file report, no external assets; \
         percentiles are log2-bucket upper bounds (&lt;2\u{00d7} relative error).</footer>\n",
    );
    out.push_str("</body></html>\n");
    out
}

/// Renders a before/after table of strategy-subphase self-times from
/// two `BENCH_compile.json` documents (the committed baseline and a
/// fresh run). Each row is one subphase (`ready_scan`, `ig_build`, …)
/// with its self time summed over every `runs[]` entry of each file
/// and the signed percent change. Returns a self-contained HTML
/// fragment for [`render_html_with`]'s extra-sections slot.
///
/// # Errors
///
/// Either document fails to parse, or neither carries a
/// `subphase_self_ms` map (a pre-subphase-era bench file).
pub fn subphase_diff_table(old_text: &str, new_text: &str) -> Result<String, String> {
    use crate::diff::{parse, Json};
    let totals = |text: &str| -> Result<BTreeMap<String, f64>, String> {
        let doc = parse(text)?;
        let mut sums = BTreeMap::new();
        let Json::Obj(top) = &doc else {
            return Err("bench document is not an object".into());
        };
        let runs = top
            .iter()
            .find(|(k, _)| k == "runs")
            .map(|(_, v)| v)
            .ok_or("bench document has no runs[]")?;
        let Json::Arr(runs) = runs else {
            return Err("runs is not an array".into());
        };
        for run in runs {
            let Json::Obj(fields) = run else { continue };
            let Some((_, Json::Obj(subs))) = fields.iter().find(|(k, _)| k == "subphase_self_ms")
            else {
                continue;
            };
            for (name, v) in subs {
                if let Json::Num(ms) = v {
                    *sums.entry(name.clone()).or_insert(0.0) += ms;
                }
            }
        }
        Ok(sums)
    };
    let (before, after) = (totals(old_text)?, totals(new_text)?);
    if before.is_empty() && after.is_empty() {
        return Err("neither bench file carries subphase_self_ms".into());
    }
    let mut names: Vec<&String> = before.keys().chain(after.keys()).collect();
    names.sort();
    names.dedup();
    let mut out = String::new();
    table_open(
        &mut out,
        &["subphase", "before self ms", "after self ms", "change"],
    );
    for name in names {
        let b = before.get(name).copied();
        let a = after.get(name).copied();
        let change = match (b, a) {
            (Some(b), Some(a)) if b > 0.0 => format!("{:+.1}%", (a - b) / b * 100.0),
            (Some(_), None) => "below floor".into(),
            (None, Some(_)) => "new".into(),
            _ => "\u{2014}".into(),
        };
        let fmt = |v: Option<f64>| {
            v.map(|v| format!("{v:.3}"))
                .unwrap_or_else(|| "\u{2014}".into())
        };
        table_row(&mut out, &[name.clone(), fmt(b), fmt(a), change]);
    }
    table_close(&mut out);
    out.push_str(
        "<p class=\"muted\">self time = wall time minus nested micro-spans, \
         summed over all machines and workloads of each bench file; \
         sub-floor entries are omitted at recording time.</p>\n",
    );
    Ok(out)
}

/// Renders the retargeting-fuzz section from a `BENCH_retarget.json`
/// file (written by `marion-fuzz`): the audit-coverage headline
/// numbers and, when the run found anything, the failing machines.
///
/// # Errors
///
/// Returns a description of the problem when the text is not a
/// retarget bench document.
pub fn retarget_section(text: &str) -> Result<String, String> {
    use crate::diff::{parse, Json};
    let doc = parse(text)?;
    let Json::Obj(top) = &doc else {
        return Err("bench document is not an object".into());
    };
    let field = |key: &str| top.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    match field("bench") {
        Some(Json::Str(s)) if s == "retarget" => {}
        _ => return Err("not a retarget bench document (bench != \"retarget\")".into()),
    }
    let num = |key: &str| -> Option<f64> {
        match field(key) {
            Some(Json::Num(n)) => Some(*n),
            _ => None,
        }
    };
    let mut out = String::new();
    table_open(&mut out, &["metric", "value"]);
    let rows: &[(&str, &str, usize)] = &[
        ("machines generated", "count", 0),
        ("distinct machine texts", "distinct_machines", 0),
        ("workloads per machine", "workloads", 0),
        ("strategies per workload", "strategies", 0),
        ("compilations", "compilations", 0),
        ("blocks audited", "blocks_audited", 0),
        ("failing machines", "failing_machines", 0),
        ("quality observations", "quality_runs", 0),
        ("cross-strategy quality anomalies", "quality_anomalies", 0),
        ("elapsed (s)", "elapsed_sec", 1),
        ("machines / sec", "machines_per_sec", 3),
    ];
    for (label, key, decimals) in rows {
        if let Some(v) = num(key) {
            table_row(
                &mut out,
                &[(*label).to_string(), format!("{v:.*}", decimals)],
            );
        }
    }
    table_close(&mut out);
    // Failing runs, when any: seed and knob summary point straight at
    // the corpus entry the fuzzer wrote.
    let mut failures = String::new();
    if let Some(Json::Arr(runs)) = field("runs") {
        for run in runs {
            let Json::Obj(fields) = run else { continue };
            let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
            if !matches!(get("status"), Some(Json::Str(s)) if s == "fail") {
                continue;
            }
            let seed = match get("seed") {
                Some(Json::Num(n)) => format!("{n:.0}"),
                _ => "?".into(),
            };
            let summary = match get("summary") {
                Some(Json::Str(s)) => s.clone(),
                _ => String::new(),
            };
            table_row(&mut failures, &[seed, summary]);
        }
    }
    if failures.is_empty() {
        out.push_str(
            "<p class=\"muted\">every generated machine passed the full \
             differential audit (interp vs sim, per-block legality and \
             provenance, byte-identical recompile).</p>\n",
        );
    } else {
        table_open(&mut out, &["failing seed", "machine"]);
        out.push_str(&failures);
        table_close(&mut out);
        out.push_str(
            "<p class=\"muted\">each failing seed has a minimised reproducer \
             under <code>corpus/</code>.</p>\n",
        );
    }
    Ok(out)
}

/// Renders the quality-observatory section from a
/// `BENCH_quality.json` file (written by `marion-bench quality`): a
/// strategy × machine cycle heatmap (geomean over workloads, shaded
/// by distance from the best strategy on that machine), the
/// stall-reason composition per strategy, the estimate-vs-sim drift
/// table, and the per-Livermore-kernel speedup reproduction of the
/// paper's Table 4 headline.
///
/// # Errors
///
/// Returns a description of the problem when the text is not a
/// quality bench document.
pub fn quality_section(text: &str) -> Result<String, String> {
    use crate::diff::{parse, Json};
    let doc = parse(text)?;
    let Json::Obj(top) = &doc else {
        return Err("bench document is not an object".into());
    };
    let field = |key: &str| top.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    match field("bench") {
        Some(Json::Str(s)) if s == "quality" => {}
        _ => return Err("not a quality bench document (bench != \"quality\")".into()),
    }
    struct Row {
        machine: String,
        strategy: String,
        workload: String,
        sim: f64,
        drift: f64,
        stalls: Vec<(String, f64)>,
        stall_total: f64,
        util: f64,
    }
    let mut rows: Vec<Row> = Vec::new();
    let Some(Json::Arr(runs)) = field("runs") else {
        return Err("quality document has no runs[]".into());
    };
    for run in runs {
        let Json::Obj(fields) = run else { continue };
        let get_str = |key: &str| match fields.iter().find(|(k, _)| k == key) {
            Some((_, Json::Str(s))) => Some(s.clone()),
            _ => None,
        };
        let get_num = |key: &str| match fields.iter().find(|(k, _)| k == key) {
            Some((_, Json::Num(n))) => Some(*n),
            _ => None,
        };
        let stalls = fields
            .iter()
            .filter_map(|(k, v)| match v {
                Json::Num(n) if k.starts_with("stall_") && k != "stall_total" => {
                    Some((k["stall_".len()..].to_string(), *n))
                }
                _ => None,
            })
            .collect();
        rows.push(Row {
            machine: get_str("machine").ok_or("run missing machine")?,
            strategy: get_str("strategy").ok_or("run missing strategy")?,
            workload: get_str("workload").ok_or("run missing workload")?,
            sim: get_num("sim_cycles").ok_or("run missing sim_cycles")?,
            drift: get_num("drift_pct").unwrap_or(0.0),
            stalls,
            stall_total: get_num("stall_total").unwrap_or(0.0),
            util: get_num("issue_utilization").unwrap_or(0.0),
        });
    }
    if rows.is_empty() {
        return Err("quality document has no runs".into());
    }
    let mut machines: Vec<String> = Vec::new();
    let mut strategies: Vec<String> = Vec::new();
    for r in &rows {
        if !machines.contains(&r.machine) {
            machines.push(r.machine.clone());
        }
        if !strategies.contains(&r.strategy) {
            strategies.push(r.strategy.clone());
        }
    }
    let geo = |xs: &[f64]| crate::geomean(xs);
    let cell = |machine: &str, strategy: &str| -> Vec<f64> {
        rows.iter()
            .filter(|r| r.machine == machine && r.strategy == strategy)
            .map(|r| r.sim)
            .collect()
    };

    let mut out = String::new();
    // ---- strategy × machine cycle heatmap ----
    out.push_str("<h3>sim-measured cycles (geomean over workloads)</h3>\n");
    out.push_str("<table><thead><tr><th>machine</th>");
    for s in &strategies {
        out.push_str(&format!("<th>{}</th>", esc(s)));
    }
    out.push_str("<th>best</th></tr></thead><tbody>\n");
    for m in &machines {
        let cycles: Vec<f64> = strategies.iter().map(|s| geo(&cell(m, s))).collect();
        let best = cycles.iter().copied().fold(f64::INFINITY, f64::min);
        out.push_str(&format!("<tr><td class=\"name\">{}</td>", esc(m)));
        for c in &cycles {
            // Shade by distance from the machine's best strategy:
            // transparent at parity, saturating red at +30% cycles.
            let excess = if best > 0.0 { c / best - 1.0 } else { 0.0 };
            let alpha = (excess / 0.30).clamp(0.0, 1.0) * 0.55;
            out.push_str(&format!(
                "<td style=\"background:rgba(200,72,56,{alpha:.2})\">{c:.0}</td>"
            ));
        }
        let winner = strategies
            .iter()
            .zip(&cycles)
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(s, _)| s.as_str())
            .unwrap_or("\u{2014}");
        out.push_str(&format!("<td>{}</td></tr>\n", esc(winner)));
    }
    out.push_str("</tbody></table>\n");

    // ---- stall-reason composition per strategy ----
    out.push_str("<h3>stall-cycle composition by strategy</h3>\n");
    let mut max_stall = 0.0f64;
    // (strategy, per-reason stall sums, total stall cycles)
    type StallSums = Vec<(String, f64)>;
    let mut per_strategy: Vec<(String, StallSums, f64)> = Vec::new();
    for s in &strategies {
        let mut sums: Vec<(String, f64)> = Vec::new();
        let mut total = 0.0;
        for r in rows.iter().filter(|r| &r.strategy == s) {
            total += r.stall_total;
            for (reason, cycles) in &r.stalls {
                match sums.iter_mut().find(|(k, _)| k == reason) {
                    Some((_, sum)) => *sum += cycles,
                    None => sums.push((reason.clone(), *cycles)),
                }
            }
        }
        max_stall = max_stall.max(sums.iter().map(|(_, v)| *v).fold(0.0, f64::max));
        per_strategy.push((s.clone(), sums, total));
    }
    for (s, sums, total) in &per_strategy {
        out.push_str(&format!(
            "<div class=\"histtitle\">{} <span class=\"muted\">{total:.0} stall cycles \
             across the whole matrix</span></div>\n",
            esc(s)
        ));
        for (reason, cycles) in sums {
            if *cycles > 0.0 {
                bar(
                    &mut out,
                    reason,
                    *cycles,
                    max_stall,
                    &format!("{cycles:.0}"),
                );
            }
        }
    }

    // ---- estimate drift ----
    out.push_str("<h3>estimate vs sim drift</h3>\n");
    table_open(
        &mut out,
        &[
            "machine",
            "strategy",
            "mean drift %",
            "max drift %",
            "issue util",
        ],
    );
    for m in &machines {
        for s in &strategies {
            let sel: Vec<&Row> = rows
                .iter()
                .filter(|r| &r.machine == m && &r.strategy == s)
                .collect();
            if sel.is_empty() {
                continue;
            }
            let mean = sel.iter().map(|r| r.drift).sum::<f64>() / sel.len() as f64;
            let max = sel.iter().map(|r| r.drift.abs()).fold(0.0, f64::max);
            let util = sel.iter().map(|r| r.util).sum::<f64>() / sel.len() as f64;
            table_row(
                &mut out,
                &[
                    m.clone(),
                    s.clone(),
                    format!("{mean:+.2}"),
                    format!("{max:.2}"),
                    format!("{util:.3}"),
                ],
            );
        }
    }
    table_close(&mut out);
    out.push_str(
        "<p class=\"muted\">drift = (sim \u{2212} estimate) / estimate; the simulator \
         adds cache and memory-system cycles the schedule estimate deliberately \
         excludes, so small positive drift is expected.</p>\n",
    );

    // ---- per-Livermore-kernel speedups vs Postpass ----
    let kernels: Vec<&String> = {
        let mut ks: Vec<&String> = rows
            .iter()
            .map(|r| &r.workload)
            .filter(|w| w.starts_with("LL"))
            .collect();
        ks.sort_by_key(|w| w[2..].parse::<u32>().unwrap_or(0));
        ks.dedup();
        ks
    };
    let is_postpass = |s: &str| s.eq_ignore_ascii_case("postpass");
    let others: Vec<&String> = strategies.iter().filter(|s| !is_postpass(s)).collect();
    if !kernels.is_empty() && strategies.iter().any(|s| is_postpass(s)) && !others.is_empty() {
        out.push_str(
            "<h3>Livermore kernel speedups over Postpass (geomean across machines)</h3>\n",
        );
        let mut headers = vec!["kernel"];
        for s in &others {
            headers.push(s.as_str());
        }
        table_open(&mut out, &headers);
        for k in &kernels {
            let mut cells = vec![(*k).clone()];
            for s in &others {
                let ratios: Vec<f64> = machines
                    .iter()
                    .filter_map(|m| {
                        let base = rows.iter().find(|r| {
                            &r.machine == m && is_postpass(&r.strategy) && &r.workload == *k
                        })?;
                        let new = rows
                            .iter()
                            .find(|r| &r.machine == m && r.strategy == **s && &r.workload == *k)?;
                        (new.sim > 0.0).then(|| base.sim / new.sim)
                    })
                    .collect();
                cells.push(if ratios.is_empty() {
                    "\u{2014}".into()
                } else {
                    format!("{:.3}x", geo(&ratios))
                });
            }
            table_row(&mut out, &cells);
        }
        table_close(&mut out);
    }
    Ok(out)
}

/// Depth-first collection of `(path, self_us, total_us, count)` rows
/// from the flame tree, for the top-frames table.
fn collect_self_rows(
    node: &crate::flame::FlameNode,
    prefix: &str,
    rows: &mut Vec<(String, u64, u64, u64)>,
) {
    for child in &node.children {
        let path = if prefix.is_empty() {
            child.name.clone()
        } else {
            format!("{prefix}/{}", child.name)
        };
        rows.push((path.clone(), child.self_us(), child.total_us, child.count));
        collect_self_rows(child, &path, rows);
    }
}

/// The service section: request-latency distributions, utilization
/// gauges, and cache rates from one `metrics` response line.
fn render_serve_section(out: &mut String, fields: &[(String, Value)]) {
    let int = |name: &str| event_int(fields, name);
    let str_of = |name: &str| event_str(fields, name);
    section(out, "Compile service");
    out.push_str("<div class=\"tiles\">\n");
    for (name, label) in [
        ("requests", "requests served"),
        ("failures", "failures"),
        ("queue_depth", "queue depth"),
        ("busy_workers", "busy workers"),
        ("workers", "workers"),
    ] {
        if let Some(v) = int(name) {
            tile(out, label, &v.to_string());
        }
    }
    if let (Some(busy), Some(workers)) = (int("busy_workers"), int("workers")) {
        if workers > 0 {
            tile(
                out,
                "utilization",
                &format!("{:.0}%", busy as f64 * 100.0 / workers as f64),
            );
        }
    }
    if let Some((_, Value::Float(rate))) = fields.iter().find(|(k, _)| k == "cache_hit_rate") {
        tile(out, "cache hit rate", &format!("{:.0}%", rate * 100.0));
    }
    out.push_str("</div>\n");
    for (prefix, title) in [("service", "Service time"), ("queue_wait", "Queue wait")] {
        let Some(buckets) = str_of(&format!("{prefix}_buckets")) else {
            continue;
        };
        let sum = int(&format!("{prefix}_sum_us")).unwrap_or(0).max(0) as u64;
        if let Some(h) = Histogram::from_parts(buckets, sum) {
            hist_block(out, title, &h, "us");
        }
    }
}

/// Extra styles for the dashboard page, appended to [`STYLE`].
const DASH_STYLE: &str = "\
.spark{margin:.6rem 0 1rem;border-left:3px solid #3b4252;padding-left:.8rem}\
.sparktitle{font-size:.85rem;color:#e5e9f0;margin-bottom:.2rem}\
.ok{color:#a3be8c}\
.bad{color:#bf616a;font-weight:bold}";

/// One sparkline: the per-window values as a self-contained inline SVG
/// polyline (no external assets), labelled with the last and max
/// values.
fn sparkline(out: &mut String, title: &str, points: &[f64]) {
    const W: f64 = 720.0;
    const H: f64 = 48.0;
    const PAD: f64 = 4.0;
    let max = points.iter().copied().fold(0.0f64, f64::max);
    let last = points.last().copied().unwrap_or(0.0);
    out.push_str(&format!(
        "<div class=\"spark\"><div class=\"sparktitle\">{} \
         <span class=\"muted\">last {} \u{00b7} max {}</span></div>\n",
        esc(title),
        fmt_value(last),
        fmt_value(max)
    ));
    let step = W / (points.len().max(2) - 1) as f64;
    let mut pts = String::new();
    for (i, v) in points.iter().enumerate() {
        let x = i as f64 * step;
        let y = if max > 0.0 {
            H - PAD - (v / max) * (H - 2.0 * PAD)
        } else {
            H - PAD
        };
        pts.push_str(&format!("{x:.1},{y:.1} "));
    }
    out.push_str(&format!(
        "<svg viewBox=\"0 0 {W} {H}\" width=\"100%\" height=\"48\" \
         preserveAspectRatio=\"none\" role=\"img\" aria-label=\"{}\">\
         <rect x=\"0\" y=\"0\" width=\"{W}\" height=\"{H}\" fill=\"#242933\"/>\
         <polyline points=\"{}\" fill=\"none\" stroke=\"#88c0d0\" stroke-width=\"1.5\"/>\
         </svg></div>\n",
        esc(title),
        pts.trim_end()
    ));
}

/// Compact number for tile/sparkline labels.
fn fmt_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Renders the `dashboard` protocol command's page: a self-contained
/// HTML status view of one running service — summary tiles, rolling
/// sparklines, SLO budgets, and tail-sampled exemplar flamegraphs.
/// Same self-containment contract as [`render_html`] (CI grep-asserts
/// it): inline CSS/SVG only, no links, no external assets.
pub fn render_dashboard(d: &crate::serve::DashboardData) -> String {
    let snap = &d.snap;
    let win = &d.windowed;
    let mut out = String::with_capacity(16 * 1024);
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n");
    out.push_str("<title>marion-serve dashboard</title>\n");
    out.push_str(&format!("<style>{STYLE}{DASH_STYLE}</style>\n"));
    out.push_str("</head><body>\n<h1>marion-serve dashboard</h1>\n");

    // ---- lifetime tiles ----
    out.push_str("<div class=\"tiles\">\n");
    tile(
        &mut out,
        "uptime",
        &format!("{:.1} s", snap.uptime_us as f64 / 1e6),
    );
    tile(&mut out, "requests served", &snap.requests.to_string());
    tile(&mut out, "started", &snap.started.to_string());
    tile(
        &mut out,
        "in flight",
        &snap.started.saturating_sub(snap.requests).to_string(),
    );
    tile(&mut out, "failures", &snap.failures.to_string());
    tile(&mut out, "queue depth", &snap.queue_depth.to_string());
    tile(&mut out, "workers", &snap.workers.to_string());
    if let Some(rate) = d.cache_hit_rate {
        tile(&mut out, "cache hit rate", &format!("{:.0}%", rate * 100.0));
    }
    out.push_str("</div>\n");

    // ---- windowed tiles ----
    section(
        &mut out,
        &format!(
            "Last {} window(s) \u{2014} {:.0} s",
            win.windows, win.covered_s
        ),
    );
    out.push_str("<div class=\"tiles\">\n");
    tile(&mut out, "requests", &win.requests.to_string());
    tile(&mut out, "requests / s", &fmt_value(win.rps));
    tile(
        &mut out,
        "hit rate",
        &format!("{:.0}%", win.hit_rate * 100.0),
    );
    tile(
        &mut out,
        "error rate",
        &format!("{:.1}%", win.error_rate * 100.0),
    );
    if let Some(p) = win.p50_us {
        tile(&mut out, "p50", &format!("{p} us"));
    }
    if let Some(p) = win.p99_us {
        tile(&mut out, "p99", &format!("{p} us"));
    }
    out.push_str("</div>\n");

    // ---- sparklines ----
    section(
        &mut out,
        &format!(
            "Rolling windows ({} \u{00d7} {} ms)",
            snap.service_ts.num_windows(),
            snap.window_ms
        ),
    );
    for s in &d.series {
        sparkline(&mut out, &s.title, &s.points);
    }

    // ---- SLOs ----
    section(&mut out, "Service-level objectives");
    if d.slos.is_empty() {
        out.push_str(
            "<p class=\"muted\">none configured \u{2014} start marion-serve \
             with --slo to track error budgets here.</p>\n",
        );
    } else {
        table_open(
            &mut out,
            &[
                "objective",
                "target",
                "bad/total",
                "budget used",
                "burn rate",
                "status",
            ],
        );
        for eval in &d.slos {
            let status = if eval.violated { "VIOLATED" } else { "ok" };
            table_row(
                &mut out,
                &[
                    eval.slo.name.clone(),
                    fmt_value(eval.slo.target),
                    format!("{}/{}", eval.bad, eval.total),
                    format!("{:.1}%", eval.budget_used * 100.0),
                    format!("{:.2}\u{00d7}", eval.burn_rate),
                    status.to_string(),
                ],
            );
        }
        table_close(&mut out);
    }

    // ---- tail exemplars ----
    section(&mut out, "Slowest requests (tail exemplars)");
    if d.exemplars.is_empty() {
        out.push_str(
            "<p class=\"muted\">no exemplars yet \u{2014} compiles are traced \
             and the slowest per window are kept here.</p>\n",
        );
    } else {
        for ex in &d.exemplars {
            out.push_str(&format!(
                "<details open><summary>r{} \u{2014} {}/{} \u{2014} {:.1} ms \
                 <span class=\"muted\">(queue {:.1} ms, {} hit / {} miss, \
                 {} func(s), window {})</span></summary>\n",
                ex.request_id,
                esc(&ex.machine),
                esc(&ex.strategy),
                ex.service_us as f64 / 1000.0,
                ex.queue_wait_us as f64 / 1000.0,
                ex.cache_hits,
                ex.cache_misses,
                ex.funcs,
                ex.window
            ));
            let tree = crate::flame::flame_tree(&ex.trace);
            if tree.children.is_empty() {
                out.push_str(
                    "<p class=\"muted\">no profile for this request: every \
                     function replayed from the cache, and cached entries \
                     carry no timing.</p>\n",
                );
            } else {
                out.push_str(&crate::flame::render_svg(
                    &tree,
                    &format!("r{} wall-clock attribution", ex.request_id),
                ));
            }
            out.push_str("</details>\n");
        }
    }

    // ---- lifetime distributions ----
    section(&mut out, "Lifetime latency distributions");
    hist_block(&mut out, "Service time", &snap.service_us, "us");
    hist_block(&mut out, "Queue wait", &snap.queue_wait_us, "us");

    out.push_str(
        "<footer>marion-serve dashboard \u{2014} single-file page, no external \
         assets; percentiles are log2-bucket upper bounds (&lt;2\u{00d7} \
         relative error).</footer>\n",
    );
    out.push_str("</body></html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use marion_trace::{TraceConfig, Tracer};

    fn sample_trace() -> TraceData {
        let t = Tracer::new(TraceConfig {
            reservation_tables: true,
            explanations: true,
        });
        t.add("r2000/kernel", "insts_generated", 42);
        t.add("r2000/kernel", "sched_stall_cycles", 7);
        t.add("r2000/kernel", "cache_miss", 1);
        t.observe("r2000", "block_stall_cycles", 3);
        t.observe("r2000", "block_stall_cycles", 900);
        t.gauge("module", "workers", 4);
        t.event(
            "r2000/kernel/b0",
            "sched_block",
            &[
                ("pass", Value::from("sched:ips-final")),
                ("final", Value::Int(1)),
                ("stall_dependence", Value::Int(5)),
                ("stall_resource", Value::Int(2)),
            ],
        );
        t.event(
            "r2000/kernel/b0",
            "reservation_table",
            &[
                ("pass", Value::from("final")),
                ("table", Value::from("cyc0 ALU <raw> & stuff")),
            ],
        );
        t.event(
            "r2000/kernel/b0",
            "sched_explain",
            &[
                ("pass", Value::from("final")),
                ("narrative", Value::from("cycle 1: stalled")),
            ],
        );
        let mut data = t.finish().unwrap();
        for (name, dur_us) in [("select", 120u64), ("sched", 80)] {
            data.records.push(Record::Span {
                name: name.to_string(),
                ctx: "module".to_string(),
                depth: 0,
                start_us: 0,
                dur_us,
            });
        }
        for (path, count, total_us, child_us) in [
            ("compile_func", 1u64, 200u64, 180u64),
            ("compile_func/strategy", 1, 180, 100),
            ("compile_func/strategy/regalloc", 1, 100, 0),
        ] {
            data.records.push(Record::Prof {
                path: path.to_string(),
                count,
                total_us,
                child_us,
            });
        }
        data
    }

    #[test]
    fn page_is_self_contained_with_no_network_references() {
        let html = render_html(&sample_trace(), None);
        // The CI contract, asserted at the source: nothing that could
        // trigger a network fetch or an external asset load.
        assert!(!html.contains("http:"), "no absolute links");
        assert!(!html.contains("https:"), "no absolute links");
        assert!(!html.contains("src="), "no embedded resources");
        assert!(!html.contains("href="), "no links");
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.ends_with("</html>\n"));
        assert!(html.contains("<style>"), "inline styles present");
    }

    #[test]
    fn sections_render_from_a_compile_trace() {
        let html = render_html(&sample_trace(), None);
        for needle in [
            "Phase timing",
            "self-profile flamegraph",
            "<svg ",
            "Per-function summary",
            "Stall reasons by strategy",
            "sched:ips-final",
            "Sample distributions",
            "block_stall_cycles",
            "Gauges",
            "Compile-cache effectiveness",
            "Reservation tables",
        ] {
            assert!(html.contains(needle), "missing section `{needle}`");
        }
        // Raw event text is escaped, not injected.
        assert!(html.contains("&lt;raw&gt; &amp; stuff"));
        assert!(!html.contains("<raw>"));
    }

    #[test]
    fn serve_metrics_render_latency_and_utilization() {
        let mut service_us = Histogram::new();
        for v in [100u64, 250, 900, 40_000] {
            service_us.record(v);
        }
        let fields = vec![
            ("requests".to_string(), Value::Int(4)),
            ("failures".to_string(), Value::Int(0)),
            ("queue_depth".to_string(), Value::Int(1)),
            ("busy_workers".to_string(), Value::Int(2)),
            ("workers".to_string(), Value::Int(4)),
            ("cache_hit_rate".to_string(), Value::Float(0.75)),
            (
                "service_buckets".to_string(),
                Value::Str(service_us.encode_counts()),
            ),
            (
                "service_sum_us".to_string(),
                Value::Int(service_us.sum() as i64),
            ),
        ];
        let html = render_html(&TraceData::default(), Some(&fields));
        assert!(html.contains("Compile service"));
        assert!(html.contains("Service time"));
        assert!(html.contains("requests served"));
        assert!(html.contains("50%"), "utilization tile: 2 of 4 busy");
        assert!(html.contains("75%"), "cache hit rate tile");
        assert!(!html.contains("https:"));
        assert!(!html.contains("href="));
    }

    #[test]
    fn extra_svg_sections_append_and_stay_self_contained() {
        let extra = vec![(
            "Dependence DAG — main b1".to_string(),
            "<svg viewBox=\"0 0 10 10\"><rect x=\"0\" y=\"0\" width=\"5\" height=\"5\"/></svg>\n"
                .to_string(),
        )];
        let html = render_html_with(&sample_trace(), None, &extra);
        assert!(html.contains("Dependence DAG"));
        assert!(!html.contains("http:") && !html.contains("https:"));
        assert!(!html.contains("src=") && !html.contains("href="));
    }

    #[test]
    fn subphase_diff_table_renders_before_after_and_deltas() {
        let old = r#"{"runs": [
            {"machine": "a", "subphase_self_ms": {"ready_scan": 2.0, "ig_build": 1.0}},
            {"machine": "b", "subphase_self_ms": {"ready_scan": 2.0, "evict_scan": 0.5}}
        ]}"#;
        let new = r#"{"runs": [
            {"machine": "a", "subphase_self_ms": {"ready_scan": 1.0, "ig_build": 1.5}},
            {"machine": "b", "subphase_self_ms": {"ready_scan": 1.0, "prep": 0.2}}
        ]}"#;
        let table = subphase_diff_table(old, new).expect("renders");
        // ready_scan: 4.0 -> 2.0 = -50%; ig_build: 1.0 -> 1.5 = +50%.
        assert!(table.contains("ready_scan"), "{table}");
        assert!(table.contains("-50.0%"), "{table}");
        assert!(table.contains("+50.0%"), "{table}");
        // One-sided rows render as dropped/new, not as errors.
        assert!(table.contains("below floor"), "{table}");
        assert!(table.contains("new"), "{table}");
        // Files without the map are a structured error, not a panic.
        assert!(subphase_diff_table(r#"{"runs": []}"#, r#"{"runs": []}"#).is_err());
    }

    #[test]
    fn quality_section_renders_heatmap_stalls_drift_and_speedups() {
        let text = r#"{
          "bench": "quality",
          "runs": [
            {"machine": "r2000", "strategy": "Postpass", "workload": "LL1",
             "sim_cycles": 1200, "est_cycles": 1100, "drift_pct": 9.09,
             "stall_dependence": 40, "stall_resource": 10, "stall_total": 50,
             "issue_utilization": 0.61},
            {"machine": "r2000", "strategy": "IPS", "workload": "LL1",
             "sim_cycles": 1000, "est_cycles": 950, "drift_pct": 5.26,
             "stall_dependence": 20, "stall_resource": 5, "stall_total": 25,
             "issue_utilization": 0.70},
            {"machine": "r2000", "strategy": "RASE", "workload": "LL1",
             "sim_cycles": 960, "est_cycles": 900, "drift_pct": 6.67,
             "stall_dependence": 15, "stall_resource": 5, "stall_total": 20,
             "issue_utilization": 0.72}
          ]
        }"#;
        let html = quality_section(text).expect("renders");
        // Heatmap: per-machine winner column picks the fewest cycles.
        assert!(html.contains("sim-measured cycles"), "{html}");
        assert!(html.contains("<td>RASE</td>"), "{html}");
        // Stall composition bars carry the per-reason labels.
        assert!(html.contains("stall-cycle composition"), "{html}");
        assert!(html.contains("dependence"), "{html}");
        // Drift table and the Livermore speedup reproduction.
        assert!(html.contains("estimate vs sim drift"), "{html}");
        assert!(html.contains("speedups over Postpass"), "{html}");
        // 1200/1000 and 1200/960 as geomean over one machine.
        assert!(html.contains("1.200x"), "{html}");
        assert!(html.contains("1.250x"), "{html}");
        // Self-contained: no external references, escaped content only.
        assert!(!html.contains("http:") && !html.contains("https:"));
        assert!(!html.contains("src=") && !html.contains("href="));
        // Wrong document kinds are structured errors, not panics.
        assert!(quality_section(r#"{"bench": "serve"}"#).is_err());
        assert!(quality_section("{").is_err());
    }

    #[test]
    fn empty_trace_still_renders_a_valid_page() {
        let html = render_html(&TraceData::default(), None);
        assert!(html.contains("<h1>"));
        assert!(html.ends_with("</html>\n"));
        assert!(!html.contains("Phase timing"), "empty sections elided");
    }
}
