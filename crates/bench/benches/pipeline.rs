//! Criterion micro-benchmarks for the compiler pipeline itself:
//! description parsing (the code generator generator), instruction
//! selection, scheduling, and whole-program compilation per strategy,
//! plus simulator throughput.
//!
//! The paper notes "Marion compilers are not fast" (Table 3); these
//! benches characterise where this reproduction spends its time.

use criterion::{criterion_group, criterion_main, Criterion};
use marion_core::{sched, select, Compiler, StrategyKind};
use std::hint::black_box;

fn bench_parse_descriptions(c: &mut Criterion) {
    let mut g = c.benchmark_group("maril-parse");
    for name in marion_machines::ALL {
        let text = match name {
            "toyp" => marion_machines::toyp::text(),
            "r2000" => marion_machines::r2000::text(),
            "m88k" => marion_machines::m88k::text(),
            _ => marion_machines::i860::text(),
        };
        g.bench_function(name, |b| {
            b.iter(|| marion_maril::Machine::parse(name, black_box(text)).unwrap())
        });
    }
    g.finish();
}

fn kernel_module() -> marion_ir::Module {
    let kernels = marion_workloads::livermore::kernels();
    let ll7 = kernels.iter().find(|k| k.name == "LL7").unwrap();
    let mut module = ll7.module();
    // Raw selection needs the driver's float-constant pool.
    marion_core::driver::materialize_float_constants(&mut module);
    module
}

fn bench_select(c: &mut Criterion) {
    let module = kernel_module();
    let mut g = c.benchmark_group("select-LL7");
    for name in ["r2000", "i860"] {
        let spec = marion_machines::load(name);
        let mut funcs = module.funcs.clone();
        for f in &mut funcs {
            marion_core::glue::apply_glue(&spec.machine, f).unwrap();
        }
        g.bench_function(name, |b| {
            b.iter(|| {
                for f in &funcs {
                    black_box(
                        select::select_func(&spec.machine, &spec.escapes, &module, f).unwrap(),
                    );
                }
            })
        });
    }
    g.finish();
}

fn bench_schedule(c: &mut Criterion) {
    let module = kernel_module();
    let mut g = c.benchmark_group("schedule-LL7");
    for name in ["r2000", "i860"] {
        let spec = marion_machines::load(name);
        let mut f = module.funcs[0].clone();
        marion_core::glue::apply_glue(&spec.machine, &mut f).unwrap();
        let code = select::select_func(&spec.machine, &spec.escapes, &module, &f).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| {
                for block in &code.blocks {
                    black_box(sched::schedule_block_robust(
                        &spec.machine,
                        &code,
                        block,
                        &Default::default(),
                    ));
                }
            })
        });
    }
    g.finish();
}

fn bench_compile_strategies(c: &mut Criterion) {
    let module = kernel_module();
    let mut g = c.benchmark_group("compile-LL7-r2000");
    let spec = marion_machines::load("r2000");
    for strategy in StrategyKind::ALL {
        let compiler = Compiler::new(spec.machine.clone(), spec.escapes.clone(), strategy);
        g.bench_function(strategy.name(), |b| {
            b.iter(|| black_box(compiler.compile_module(black_box(&module)).unwrap()))
        });
    }
    g.finish();
}

fn bench_simulate(c: &mut Criterion) {
    let kernels = marion_workloads::livermore::kernels();
    let ll12 = kernels.iter().find(|k| k.name == "LL12").unwrap();
    let module = ll12.module();
    let spec = marion_machines::load("r2000");
    let compiler = Compiler::new(
        spec.machine.clone(),
        spec.escapes.clone(),
        StrategyKind::Postpass,
    );
    let program = compiler.compile_module(&module).unwrap();
    c.bench_function("simulate-LL12-r2000", |b| {
        b.iter(|| {
            black_box(
                marion_sim::run_program(
                    &spec.machine,
                    &program,
                    "main",
                    &[],
                    Some(marion_maril::Ty::Int),
                    &marion_sim::SimConfig::default(),
                )
                .unwrap(),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_parse_descriptions,
    bench_select,
    bench_schedule,
    bench_compile_strategies,
    bench_simulate
);
criterion_main!(benches);
