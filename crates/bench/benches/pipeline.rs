//! Micro-benchmarks for the compiler pipeline itself: description
//! parsing (the code generator generator), instruction selection,
//! scheduling, and whole-program compilation per strategy, plus
//! simulator throughput.
//!
//! The paper notes "Marion compilers are not fast" (Table 3); these
//! benches characterise where this reproduction spends its time.
//!
//! Uses a plain `std::time::Instant` harness (median of several
//! batches) so the workspace needs no external bench framework and
//! builds offline. Run with `cargo bench -p marion-bench`.

use marion_core::{sched, select, Compiler, StrategyKind};
use std::hint::black_box;
use std::time::Instant;

/// Times `f` in `batches` batches of `iters` calls and reports the
/// median per-iteration time.
fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    const BATCHES: usize = 7;
    // Warm-up.
    f();
    let mut per_iter: Vec<f64> = (0..BATCHES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[BATCHES / 2];
    let (value, unit) = if median < 1e-6 {
        (median * 1e9, "ns")
    } else if median < 1e-3 {
        (median * 1e6, "µs")
    } else {
        (median * 1e3, "ms")
    };
    println!("{name:<40} {value:>10.2} {unit}/iter  ({iters} iters x {BATCHES} batches)");
}

fn bench_parse_descriptions() {
    for name in marion_machines::ALL {
        let text = match name {
            "toyp" => marion_machines::toyp::text(),
            "r2000" => marion_machines::r2000::text(),
            "m88k" => marion_machines::m88k::text(),
            _ => marion_machines::i860::text(),
        };
        bench(&format!("maril-parse/{name}"), 20, || {
            black_box(marion_maril::Machine::parse(name, black_box(text)).unwrap());
        });
    }
}

fn kernel_module() -> marion_ir::Module {
    let kernels = marion_workloads::livermore::kernels();
    let ll7 = kernels.iter().find(|k| k.name == "LL7").unwrap();
    let mut module = ll7.module();
    // Raw selection needs the driver's float-constant pool.
    marion_core::driver::materialize_float_constants(&mut module);
    module
}

fn bench_select() {
    let module = kernel_module();
    for name in ["r2000", "i860"] {
        let spec = marion_machines::load(name);
        let mut funcs = module.funcs.clone();
        for f in &mut funcs {
            marion_core::glue::apply_glue(&spec.machine, f).unwrap();
        }
        bench(&format!("select-LL7/{name}"), 50, || {
            for f in &funcs {
                black_box(select::select_func(&spec.machine, &spec.escapes, &module, f).unwrap());
            }
        });
    }
}

fn bench_schedule() {
    let module = kernel_module();
    for name in ["r2000", "i860"] {
        let spec = marion_machines::load(name);
        let mut f = module.funcs[0].clone();
        marion_core::glue::apply_glue(&spec.machine, &mut f).unwrap();
        let code = select::select_func(&spec.machine, &spec.escapes, &module, &f).unwrap();
        bench(&format!("schedule-LL7/{name}"), 50, || {
            for block in &code.blocks {
                black_box(sched::schedule_block_robust(
                    &spec.machine,
                    &code,
                    block,
                    &Default::default(),
                ));
            }
        });
    }
}

fn bench_compile_strategies() {
    let module = kernel_module();
    let spec = marion_machines::load("r2000");
    for strategy in StrategyKind::ALL {
        let compiler = Compiler::new(spec.machine.clone(), spec.escapes.clone(), strategy);
        bench(
            &format!("compile-LL7-r2000/{}", strategy.name()),
            20,
            || {
                black_box(compiler.compile_module(black_box(&module)).unwrap());
            },
        );
    }
}

fn bench_simulate() {
    let kernels = marion_workloads::livermore::kernels();
    let ll12 = kernels.iter().find(|k| k.name == "LL12").unwrap();
    let module = ll12.module();
    let spec = marion_machines::load("r2000");
    let compiler = Compiler::new(
        spec.machine.clone(),
        spec.escapes.clone(),
        StrategyKind::Postpass,
    );
    let program = compiler.compile_module(&module).unwrap();
    bench("simulate-LL12-r2000", 5, || {
        black_box(
            marion_sim::run_program(
                &spec.machine,
                &program,
                "main",
                &[],
                Some(marion_maril::Ty::Int),
                &marion_sim::SimConfig::default(),
            )
            .unwrap(),
        );
    });
}

fn main() {
    // `cargo bench` passes harness flags like `--bench`; ignore them.
    bench_parse_descriptions();
    bench_select();
    bench_schedule();
    bench_compile_strategies();
    bench_simulate();
}
