//! Retarget Marion to a machine that did not exist five minutes ago.
//!
//! ```sh
//! cargo run --example custom_machine
//! ```
//!
//! This is the paper's whole thesis: a new RISC back end is a Maril
//! description, not a compiler. Below, "ZEPHYR" is a machine invented
//! inline — an integer pipe and a floating-point unit with disjoint
//! resources (so an integer instruction and an FP instruction can
//! issue in the same cycle, i860-style), a slow iterative multiplier,
//! delayed loads and one branch delay slot — and Marion compiles and
//! schedules real code for it immediately. Try editing a latency or a
//! resource vector and watch the schedule change.

use marion::backend::{Compiler, EscapeRegistry, StrategyKind};
use marion::maril::Machine;
use marion::sim::{run_program, SimConfig};

const ZEPHYR: &str = r#"
/* ZEPHYR: an invented RISC. The core pipe (P1, P2 stages) and the
 * floating unit (FP) use disjoint resources, so one integer and one
 * floating instruction can issue per cycle. */
declare {
    %reg r[0:15] (int);
    %reg d[0:7] (double);
    %equiv r[0] d[0];
    %resource P1; P2; MEM; MUL; FP;
    %def imm12 [-2048:2047];
    %def addr20 [0:1048575] +abs;
    %label off [-32768:32767] +relative;
    %memory m[0:268435455];
}
cwvm {
    %general (int) r;
    %general (double) d;
    %general (float) d;
    %allocable r[1:11];
    %allocable d[1:4];
    %calleesave r[8:13];
    %sp r[15] +down;
    %fp r[14] +down;
    %retaddr r[13];
    %hard r[0] 0;
    %arg (int) r[2] 1;
    %arg (int) r[3] 2;
    %arg (double) d[3] 1;
    %result r[2] (int);
    %result d[1] (double);
}
instr {
    %instr add r, r, r (int) {$1 = $2 + $3;} [P1;] (1,1,0)
    %instr addi r, r, #imm12 (int) {$1 = $2 + $3;} [P1;] (1,1,0)
    %instr li r, r[0], #imm12 (int) {$1 = $3;} [P1;] (1,1,0)
    %instr la r, r[0], #addr20 (int) {$1 = $3;} [P1;] (1,1,0)
    %instr sub r, r, r (int) {$1 = $2 - $3;} [P1;] (1,1,0)
    %instr subi r, r, #imm12 (int) {$1 = $2 - $3;} [P1;] (1,1,0)
    %instr neg r, r (int) {$1 = -$2;} [P1;] (1,1,0)
    %instr not r, r (int) {$1 = ~$2;} [P1;] (1,1,0)
    %instr and r, r, r (int) {$1 = $2 & $3;} [P2;] (1,1,0)
    %instr or r, r, r (int) {$1 = $2 | $3;} [P2;] (1,1,0)
    %instr xor r, r, r (int) {$1 = $2 ^ $3;} [P2;] (1,1,0)
    %instr shl r, r, r (int) {$1 = $2 << $3;} [P2;] (1,1,0)
    %instr shli r, r, #imm12 (int) {$1 = $2 << $3;} [P2;] (1,1,0)
    %instr shr r, r, r (int) {$1 = $2 >> $3;} [P2;] (1,1,0)
    %instr shri r, r, #imm12 (int) {$1 = $2 >> $3;} [P2;] (1,1,0)
    %instr mul r, r, r (int) {$1 = $2 * $3;} [P1; MUL; MUL; MUL;] (1,4,0)
    %instr div r, r, r (int) {$1 = $2 / $3;} [P1; MUL; MUL; MUL; MUL; MUL; MUL; MUL; MUL; MUL; MUL; MUL;] (1,18,0)
    %instr rem r, r, r (int) {$1 = $2 % $3;} [P1; MUL; MUL; MUL; MUL; MUL; MUL; MUL; MUL; MUL; MUL; MUL;] (1,18,0)
    %instr cmp r, r, r (int) {$1 = $2 :: $3;} [P1;] (1,1,0)
    %instr fcmp r, d, d (int) {$1 = $2 :: $3;} [FP; FP;] (1,3,0)

    %instr ld r, r, #imm12 (int) {$1 = m[$2+$3];} [P1; MEM;] (1,3,0)
    %instr st r, r, #imm12 (int) {m[$2+$3] = $1;} [P1; MEM;] (1,1,0)
    %instr ld.b r, r, #imm12 (char) {$1 = m[$2+$3];} [P1; MEM;] (1,3,0)
    %instr st.b r, r, #imm12 (char) {m[$2+$3] = $1;} [P1; MEM;] (1,1,0)
    %instr ld.h r, r, #imm12 (short) {$1 = m[$2+$3];} [P1; MEM;] (1,3,0)
    %instr st.h r, r, #imm12 (short) {m[$2+$3] = $1;} [P1; MEM;] (1,1,0)
    %instr ld.d d, r, #imm12 (double) {$1 = m[$2+$3];} [P1; MEM; MEM;] (1,3,0)
    %instr st.d d, r, #imm12 (double) {m[$2+$3] = $1;} [P1; MEM; MEM;] (1,2,0)
    %instr ld.s d, r, #imm12 (float) {$1 = m[$2+$3];} [P1; MEM;] (1,3,0)
    %instr st.s d, r, #imm12 (float) {m[$2+$3] = $1;} [P1; MEM;] (1,1,0)

    %instr fadd d, d, d (double) {$1 = $2 + $3;} [FP; FP; FP;] (1,3,0)
    %instr fsub d, d, d (double) {$1 = $2 - $3;} [FP; FP; FP;] (1,3,0)
    %instr fneg d, d (double) {$1 = -$2;} [FP;] (1,1,0)
    %instr fmul d, d, d (double) {$1 = $2 * $3;} [FP; FP; FP; FP; FP;] (1,5,0)
    %instr fdiv d, d, d (double) {$1 = $2 / $3;} [FP; FP; FP; FP; FP; FP; FP; FP; FP; FP; FP; FP; FP; FP;] (1,15,0)
    %instr fadd.s d, d, d (float) {$1 = $2 + $3;} [FP; FP;] (1,2,0)
    %instr fsub.s d, d, d (float) {$1 = $2 - $3;} [FP; FP;] (1,2,0)
    %instr fneg.s d, d (float) {$1 = -$2;} [FP;] (1,1,0)
    %instr fmul.s d, d, d (float) {$1 = $2 * $3;} [FP; FP; FP;] (1,3,0)
    %instr fdiv.s d, d, d (float) {$1 = $2 / $3;} [FP; FP; FP; FP; FP; FP; FP; FP;] (1,9,0)
    %instr fcmp.s r, d, d (int) {$1 = $2 :: $3;} [FP; FP;] (1,3,0)

    %instr cvt.w r, r (int) {$1 = (int)$2;} [] (0,0,0)
    %instr itod d, r (double) {$1 = (double)$2;} [FP; FP;] (1,3,0)
    %instr dtoi r, d (int) {$1 = (int)$2;} [FP; FP;] (1,3,0)
    %instr itos d, r (float) {$1 = (float)$2;} [FP; FP;] (1,3,0)
    %instr stoi r, d (int) {$1 = (int)$2;} [FP; FP;] (1,3,0)
    %instr dtos d, d (float) {$1 = (float)$2;} [FP;] (1,1,0)
    %instr stod d, d (double) {$1 = (double)$2;} [FP;] (1,1,0)
    %instr *cvt8 r, r (char) {$1 = (char)$2;} [] (0,0,0)
    %instr *cvt16 r, r (short) {$1 = (short)$2;} [] (0,0,0)

    %instr beq0 r, #off {if ($1 == 0) goto $2;} [P1;] (1,2,1)
    %instr bne0 r, #off {if ($1 != 0) goto $2;} [P1;] (1,2,1)
    %instr blt0 r, #off {if ($1 < 0) goto $2;} [P1;] (1,2,1)
    %instr ble0 r, #off {if ($1 <= 0) goto $2;} [P1;] (1,2,1)
    %instr bgt0 r, #off {if ($1 > 0) goto $2;} [P1;] (1,2,1)
    %instr bge0 r, #off {if ($1 >= 0) goto $2;} [P1;] (1,2,1)
    %instr jmp #off {goto $1;} [P1;] (1,1,1)
    %instr call #off {call $1;} [P1;] (1,1,1)
    %instr ret {return;} [P1;] (1,1,1)
    %instr nop {} [P1;] (1,1,0)

    %move mov r, r, r[0] {$1 = $2;} [P1;] (1,1,0)
    %move *movd d, d {$1 = $2;} [] (0,0,0)

    %aux ld : st (1.$1 == 2.$1) (4)
    %aux fadd : st.d (1.$1 == 2.$1) (4)

    %glue r, r {($1 == $2) ==> (($1 :: $2) == 0);}
    %glue r, r {($1 != $2) ==> (($1 :: $2) != 0);}
    %glue r, r {($1 < $2) ==> (($1 :: $2) < 0);}
    %glue r, r {($1 <= $2) ==> (($1 :: $2) <= 0);}
    %glue d, d {($1 == $2) ==> (($1 :: $2) == 0);}
    %glue d, d {($1 != $2) ==> (($1 :: $2) != 0);}
    %glue d, d {($1 < $2) ==> (($1 :: $2) < 0);}
    %glue d, d {($1 <= $2) ==> (($1 :: $2) <= 0);}
}
"#;

/// ZEPHYR's `*movd` — doubles live in integer register pairs, so a
/// double move is two single moves on the halves, exactly like TOYP.
fn movd(
    ctx: &mut marion::backend::EscapeCtx<'_, '_>,
    ops: &[marion::backend::Operand],
) -> Result<(), marion::backend::CodegenError> {
    let class = ctx.machine().reg_class_by_name("r").expect("class r");
    let r0 = marion::backend::Operand::Phys(marion::maril::PhysReg::new(class, 0));
    for half in 0..2u8 {
        let d = ctx.half(ops[0], half)?;
        let s = ctx.half(ops[1], half)?;
        ctx.emit("mov", vec![d, s, r0])?;
    }
    Ok(())
}

fn narrow(
    ctx: &mut marion::backend::EscapeCtx<'_, '_>,
    ops: &[marion::backend::Operand],
    bits: i64,
) -> Result<(), marion::backend::CodegenError> {
    let sh = marion::backend::Operand::Imm(marion::backend::ImmVal::Const(bits));
    ctx.emit("shli", vec![ops[0], ops[1], sh])?;
    ctx.emit("shri", vec![ops[0], ops[0], sh])?;
    Ok(())
}

fn main() {
    // The code generator generator: description text in, back end out.
    let machine = match Machine::parse("zephyr", ZEPHYR) {
        Ok(m) => m,
        Err(e) => panic!("{}", e.render("zephyr.maril", ZEPHYR)),
    };
    let mut escapes = EscapeRegistry::new();
    escapes.register("movd", movd);
    escapes.register("cvt8", |ctx, ops| narrow(ctx, ops, 24));
    escapes.register("cvt16", |ctx, ops| narrow(ctx, ops, 16));

    println!(
        "ZEPHYR compiled: {} instructions, {} resources, {} registers\n",
        machine.templates().len(),
        machine.resources().len(),
        machine.unit_count()
    );

    let source = "
        int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
        double poly(double t) { return 1.0 + t * (0.5 + t * (0.25 + t * 0.125)); }
        int main() {
            double acc = 0.0;
            int i;
            for (i = 0; i < 20; i++) acc += poly(0.1 * i);
            return fib(15) + (int)acc;
        }";
    let module = marion::frontend::compile(source).expect("front end");
    let compiler = Compiler::new(machine.clone(), escapes, StrategyKind::Ips);
    let program = compiler.compile_module(&module).expect("codegen");

    let run = run_program(
        &machine,
        &program,
        "main",
        &[],
        Some(marion::maril::Ty::Int),
        &SimConfig::default(),
    )
    .expect("simulation");
    println!("result  = {:?}   (fib(15) = 610 + poly sum)", run.result);
    println!("cycles  = {}", run.cycles);
    println!(
        "insts   = {} generated, {} executed",
        program.stats.insts_generated, run.insts_executed
    );

    // Dual issue at work: count cycles in which both pipes fired.
    let text = program.render(&machine);
    println!("\n--- first lines of generated code ---");
    for line in text.lines().take(24) {
        println!("{line}");
    }
}
