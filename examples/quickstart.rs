//! Quickstart: compile a C function with Marion and watch it run.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! The pipeline is the paper's: the C subset front end produces the
//! intermediate language; glue transformations adapt comparisons to
//! the target; the tree pattern matcher selects instructions; the
//! chosen *code generation strategy* orders register allocation and
//! list scheduling; and the emitted code runs on a pipeline-accurate
//! simulator built from the same machine description.

use marion::backend::{Compiler, StrategyKind};
use marion::sim::{run_program, SimConfig};

fn main() {
    let source = "
        double x[64]; double y[64];
        double dot(int n) {
            int i;
            double s = 0.0;
            for (i = 0; i < n; i++) s += x[i] * y[i];
            return s;
        }
        int main() {
            int i;
            for (i = 0; i < 64; i++) { x[i] = 0.5 * i; y[i] = 0.25 * i; }
            return (int)dot(64);
        }";

    // 1. Front end: C subset -> IR.
    let module = marion::frontend::compile(source).expect("front end");
    println!(
        "front end: {} functions, {} globals",
        module.funcs.len(),
        module.globals.len()
    );

    // 2. Pick a machine description (here: the MIPS R2000 lookalike)
    //    and a strategy, and build a code generator from them.
    let spec = marion::machines::load("r2000");
    let compiler = Compiler::new(spec.machine.clone(), spec.escapes, StrategyKind::Ips);
    let program = compiler.compile_module(&module).expect("codegen");
    println!(
        "back end ({} / {}): {} instructions, {} spills",
        program.machine_name, program.strategy, program.stats.insts_generated, program.stats.spills
    );

    // 3. Inspect the generated assembly.
    println!("\n--- dot, as compiled ---");
    let text = program.render(&spec.machine);
    for line in text.lines().take(30) {
        println!("{line}");
    }
    println!("    ...");

    // 4. Execute on the pipeline simulator.
    let run = run_program(
        &spec.machine,
        &program,
        "main",
        &[],
        Some(marion::maril::Ty::Int),
        &SimConfig::default(),
    )
    .expect("simulation");
    println!("\nresult        = {:?}", run.result);
    println!("cycles        = {}", run.cycles);
    println!("instructions  = {}", run.insts_executed);
    println!("stall cycles  = {}", run.stall_cycles);
    println!("miss cycles   = {}", run.miss_cycles);
}
