//! Retargetability in one screen: the same program compiled for every
//! bundled machine description, with per-target code size, cycles and
//! stalls.
//!
//! ```sh
//! cargo run --example cross_compile
//! ```
//!
//! The point of the Marion system is that each of these back ends was
//! "written" as a few hundred lines of Maril, not as a compiler.

use marion::backend::{Compiler, StrategyKind};
use marion::sim::{run_program, SimConfig};

fn main() {
    let source = "
        double a[48]; double b[48]; double c[48];
        int main() {
            int i, it;
            double s = 0.0;
            for (i = 0; i < 48; i++) { a[i] = 0.25 * i; b[i] = 1.5 - 0.125 * i; }
            for (it = 0; it < 10; it++)
                for (i = 1; i < 47; i++)
                    c[i] = a[i] * b[i] + 0.5 * (a[i - 1] + a[i + 1]);
            for (i = 0; i < 48; i++) s += c[i];
            return (int)(s * 100.0);
        }";
    let module = marion::frontend::compile(source).expect("front end");

    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "machine", "insts", "cycles", "stalls", "misses", "result"
    );
    for name in marion::machines::ALL {
        let spec = marion::machines::load(name);
        let compiler = Compiler::new(spec.machine.clone(), spec.escapes, StrategyKind::Rase);
        let program = compiler.compile_module(&module).expect("codegen");
        let run = run_program(
            &spec.machine,
            &program,
            "main",
            &[],
            Some(marion::maril::Ty::Int),
            &SimConfig::default(),
        )
        .expect("simulation");
        println!(
            "{:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
            name,
            program.stats.insts_generated,
            run.cycles,
            run.stall_cycles,
            run.miss_cycles,
            match run.result {
                Some(marion::sim::Value::I(v)) => v.to_string(),
                other => format!("{other:?}"),
            }
        );
    }
    println!("\nEvery row ran the identical C program; only the Maril description changed.");
}
