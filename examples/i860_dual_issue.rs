//! The i860's explicitly advanced pipelines, up close.
//!
//! ```sh
//! cargo run --example i860_dual_issue
//! ```
//!
//! Compiles a floating-point expression for the i860 lookalike and
//! prints the schedule word by word, annotating:
//!
//! * EAP sub-operations (`M1 M2 M3 MWB` / `A1 A2 A3 AWB`) — the
//!   multiply and add pipelines advance only when one of their
//!   sub-operations issues;
//! * chaining (`A1m`) — the add pipe consuming the multiplier output
//!   latch `m3` directly;
//! * dual-operation long instruction words — sub-operations packed in
//!   one cycle when their packing classes intersect (e.g. `m12apm`),
//!   and core (integer) instructions dual-issued beside them.

use marion::backend::{Compiler, StrategyKind};

fn main() {
    let spec = marion::machines::load("i860");
    let source = "
        double a, b, x, y, z;
        double f() {
            a = (x + b) + (a * z);
            return (y + z);
        }";
    let module = marion::frontend::compile(source).expect("front end");
    let compiler = Compiler::new(
        spec.machine.clone(),
        spec.escapes.clone(),
        StrategyKind::Postpass,
    );
    let program = compiler.compile_module(&module).expect("codegen");

    println!("f():  a = (x + b) + (a * z);  return (y + z);   [i860, Postpass]\n");
    println!("{:>5}  {:<44} notes", "cycle", "word");
    let func = program.asm.func("f").expect("f");
    let mut cycle = 0;
    for block in &func.blocks {
        for word in &block.words {
            let text =
                marion::backend::emit::render_word(&spec.machine, word, &program.symbols, "f");
            let mut notes: Vec<&str> = Vec::new();
            if word.insts.len() > 1 {
                notes.push("packed word");
            }
            for inst in &word.insts {
                let t = spec.machine.template(inst.template);
                if let Some(clock) = t.affects_clock {
                    notes.push(if spec.machine.clocks()[clock.0 as usize] == "clk_m" {
                        "advances multiply pipe"
                    } else {
                        "advances add pipe"
                    });
                }
                if !t.effects.temporal_uses.is_empty() && !t.effects.temporal_defs.is_empty() {
                    let reads_m = t
                        .effects
                        .temporal_uses
                        .iter()
                        .any(|u| spec.machine.temporal(*u).name.starts_with('m'));
                    let writes_a = t
                        .effects
                        .temporal_defs
                        .iter()
                        .any(|d| spec.machine.temporal(*d).name.starts_with('a'));
                    if reads_m && writes_a {
                        notes.push("CHAINED: multiplier feeds adder");
                    }
                }
            }
            notes.dedup();
            println!("{cycle:>5}  {text:<44} {}", notes.join(", "));
            cycle += 1;
        }
    }
}
