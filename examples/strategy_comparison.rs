//! Postpass vs IPS vs RASE on one kernel.
//!
//! ```sh
//! cargo run --example strategy_comparison [machine] [LLn]
//! ```
//!
//! The strategy decides how register allocation and instruction
//! scheduling talk to each other (paper §2): Postpass allocates first
//! and schedules around the chosen registers; IPS schedules first
//! (with a limit on local register use) so the allocator sees the
//! better order; RASE hands the allocator per-block schedule cost
//! estimates. Compare spills, code size, estimated and actual cycles.

use marion::backend::{Compiler, StrategyKind};
use marion::sim::{run_program, SimConfig};

fn main() {
    let machine = std::env::args().nth(1).unwrap_or_else(|| "r2000".into());
    let kernel_name = std::env::args().nth(2).unwrap_or_else(|| "LL7".into());
    let kernels = marion::workloads::livermore::kernels();
    let kernel = kernels
        .iter()
        .find(|k| k.name == kernel_name)
        .unwrap_or_else(|| panic!("no kernel {kernel_name} (try LL1..LL14)"));
    let spec = marion::machines::load(&machine);
    let module = kernel.module();

    println!("{} ({}) on {machine}\n", kernel.name, kernel.description);
    println!(
        "{:>10} {:>8} {:>8} {:>12} {:>12} {:>7}",
        "strategy", "insts", "spills", "est cycles", "actual", "a/e"
    );
    for strategy in StrategyKind::ALL {
        let compiler = Compiler::new(spec.machine.clone(), spec.escapes.clone(), strategy);
        let program = compiler.compile_module(&module).expect("codegen");
        let run = run_program(
            &spec.machine,
            &program,
            "main",
            &[],
            Some(marion::maril::Ty::Int),
            &SimConfig::default(),
        )
        .expect("simulation");
        let est = marion::sim::run::estimated_cycles(&program, &run.block_counts);
        println!(
            "{:>10} {:>8} {:>8} {:>12} {:>12} {:>7.2}",
            strategy.name(),
            program.stats.insts_generated,
            program.stats.spills,
            est,
            run.cycles,
            run.cycles as f64 / est.max(1) as f64
        );
    }
}
