//! # Marion — retargetable instruction scheduling for RISCs
//!
//! A reproduction of *"The Marion System for Retargetable Instruction
//! Scheduling"* (Bradlee, Henry & Eggers, PLDI 1991). This facade
//! crate re-exports the workspace members:
//!
//! * [`maril`] — the Maril machine description language and its code
//!   generator generator;
//! * [`ir`] — the lcc-style typed intermediate language;
//! * [`frontend`] — a C-subset front end producing [`ir`] modules;
//! * [`backend`] — the target- and strategy-independent back end
//!   (selection, code DAG, scheduling, register allocation, the
//!   Postpass / IPS / RASE strategies);
//! * [`machines`] — ready-made descriptions of TOYP, the MIPS R2000,
//!   the Motorola 88000 and the Intel i860;
//! * [`sim`] — a pipeline-accurate simulator used to measure actual
//!   execution cycles of generated code;
//! * [`workloads`] — the Livermore loops and compile-suite programs
//!   used by the paper's evaluation;
//! * [`trace`] — zero-dependency span/counter/event collection wired
//!   through the whole pipeline (see `CompileOptions::trace`);
//! * [`cache`] — the content-addressed compile cache's storage layer
//!   (stable hashing, sharded LRU, checksummed disk store) used by
//!   `CompileOptions::cache` and the `marion-serve` daemon.
//!
//! ```
//! use marion::backend::{Compiler, StrategyKind};
//! use marion::sim::{run_program, SimConfig, Value};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let module = marion::frontend::compile(
//!     "int main() { int i, s = 0; for (i = 1; i <= 100; i++) s += i; return s; }",
//! )?;
//! let spec = marion::machines::load("r2000");
//! let compiler = Compiler::new(spec.machine.clone(), spec.escapes, StrategyKind::Ips);
//! let program = compiler.compile_module(&module)?;
//! let run = run_program(&spec.machine, &program, "main", &[],
//!                       Some(marion::maril::Ty::Int), &SimConfig::default())?;
//! assert_eq!(run.result, Some(Value::I(5050)));
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/quickstart.rs` for a guided tour.

pub use marion_cache as cache;
pub use marion_core as backend;
pub use marion_frontend as frontend;
pub use marion_ir as ir;
pub use marion_machines as machines;
pub use marion_maril as maril;
pub use marion_sim as sim;
pub use marion_trace as trace;
pub use marion_workloads as workloads;
