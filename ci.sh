#!/bin/sh
# Offline CI gate: formatting, lints, release build, tests.
# The workspace has zero external dependencies, so every step runs
# without network access (--offline keeps cargo honest about that).
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test"
cargo test --workspace -q --offline

echo "==> marion-explain --demo smoke (narrative + audit + DOT well-formedness)"
cargo run --release --offline -q -p marion-bench --bin marion-explain -- --demo --check > /dev/null

echo "==> selection cross-check (indexed == brute-force on every machine x workload x strategy)"
cargo run --release --offline -q -p marion-bench --bin marion-bench -- crosscheck

echo "==> compile bench smoke (single iteration, writes BENCH_compile_smoke.json)"
cargo run --release --offline -q -p marion-bench --bin marion-bench -- compile --smoke --out BENCH_compile_smoke.json

echo "==> quality bench smoke (writes BENCH_quality_smoke.json)"
cargo run --release --offline -q -p marion-bench --bin marion-bench -- quality --smoke --out BENCH_quality_smoke.json
grep -q '"bench": "quality"' BENCH_quality_smoke.json
grep -q '"sim_cycles":' BENCH_quality_smoke.json

echo "==> retargeting fuzz smoke (marion-fuzz --smoke: generated machines through the full differential audit)"
cargo run --release --offline -q -p marion-bench --bin marion-fuzz -- --smoke --out BENCH_retarget_smoke.json
grep -q '"bench": "retarget"' BENCH_retarget_smoke.json
grep -q '"failing_machines": 0' BENCH_retarget_smoke.json
# Cross-strategy quality differentials on every generated machine:
# zero unexplained anomalies on the committed smoke seed range.
grep -q '"quality_anomalies": 0' BENCH_retarget_smoke.json

echo "==> paper-table binaries (each reproduces one table/figure of §5)"
./target/release/table1 | grep -q 'Table 1: Maril machine description statistics'
./target/release/table2 | grep -q 'Table 2: Marion system source size'
./target/release/table3 | grep -q 'Table 3: back-end compile time'
./target/release/table4 toyp | grep -q 'Table 4: Livermore loops on toyp'
./target/release/fig7 | grep -q 'Figure 7: Marion i860 Postpass code'
./target/release/speedup --from BENCH_quality.json | grep -q 'Strategy speedups over Postpass'
./target/release/ablation | grep -q 'Ablation 1: what does list scheduling buy?'

echo "==> marion-serve round-trip (cache warm-up, metrics, dashboard, access log, SLOs)"
rm -f access.log access.log.1
serve_out="$(printf '%s\n' \
  '{"id":1,"machine":"r2000","strategy":"IPS","workload":"livermore"}' \
  '{"id":2,"machine":"r2000","strategy":"IPS","workload":"livermore"}' \
  '{"id":3,"cmd":"metrics"}' \
  '{"id":4,"cmd":"machines"}' \
  '{"id":5,"cmd":"capabilities"}' \
  '{"id":6,"cmd":"dashboard"}' \
  '{"id":7,"cmd":"shutdown"}' \
  | ./target/release/marion-serve --workers 1 \
      --access-log access.log --slo p99_ms=60000,error_rate=50%)"
printf '%s\n' "$serve_out" | sed -n '1,4p'
printf '%s\n' "$serve_out" | sed -n 1p | grep -q '"ok":1'
printf '%s\n' "$serve_out" | sed -n 1p | grep -q '"cache_hits":0,'
printf '%s\n' "$serve_out" | sed -n 2p | grep -q '"cache_misses":0,'
printf '%s\n' "$serve_out" | sed -n 2p | grep -Eq '"cache_hits":[1-9]'
# Every response echoes its stable request id.
for n in 1 2 3 4 5 6 7; do
  printf '%s\n' "$serve_out" | sed -n "${n}p" | grep -q "\"request_id\":\"r${n}\""
done
# The metrics snapshot covers exactly the two compiles served before it.
printf '%s\n' "$serve_out" | sed -n 3p | grep -q '"requests":2,'
printf '%s\n' "$serve_out" | sed -n 3p | grep -q '"service_count":2,'
printf '%s\n' "$serve_out" | sed -n 3p | grep -q '"service_p50_us":'
printf '%s\n' "$serve_out" | sed -n 3p | grep -q '"format_version":2'
printf '%s\n' "$serve_out" | sed -n 3p | grep -q '"uptime_s":'
printf '%s\n' "$serve_out" | sed -n 3p | grep -q '"started_requests":3,'
printf '%s\n' "$serve_out" | sed -n 3p | grep -q '"win_p99_us":'
printf '%s\n' "$serve_out" | sed -n 3p | grep -q '"slo_count":2,'
printf '%s\n' "$serve_out" | sed -n 3p | grep -q '"slo_violations":0'
printf '%s\n' "$serve_out" | sed -n 4p | grep -q '"machines":"toyp,'
printf '%s\n' "$serve_out" | sed -n 4p | grep -q '"strategies":"Postpass,IPS,RASE"'
printf '%s\n' "$serve_out" | sed -n 4p | grep -q '"protocol_version":1'
# Capabilities: per-machine issue width, clocks, and register classes.
printf '%s\n' "$serve_out" | sed -n 5p | grep -q '"ok":1'
printf '%s\n' "$serve_out" | sed -n 5p | grep -q '"i860_issue_width":'
printf '%s\n' "$serve_out" | sed -n 5p | grep -q '"r2000_issue_width":1'
printf '%s\n' "$serve_out" | sed -n 5p | grep -q '"i860_clocks":'
printf '%s\n' "$serve_out" | sed -n 5p | grep -q '"toyp_reg_classes":'
printf '%s\n' "$serve_out" | sed -n 3p > metrics_snapshot.json
printf '%s\n' "$serve_out" | sed -n 6p > dashboard_response.jsonl

echo "==> access log: exactly one line per request served"
test "$(wc -l < access.log)" = 7
grep -q '"request_id":"r1"' access.log
grep -q '"request_id":"r7"' access.log
test "$(grep -c '"cmd":"compile"' access.log)" = 2

echo "==> SLO gate: generous objectives pass (exit 0)"
./target/release/marion-report --check-slo metrics_snapshot.json

echo "==> SLO gate: an unsatisfiable objective is flagged (exit 1)"
slo_out="$(printf '%s\n' \
  '{"id":1,"machine":"toyp","strategy":"Postpass","source":"int main() { return 3; }"}' \
  '{"id":2,"cmd":"metrics"}' \
  '{"id":3,"cmd":"shutdown"}' \
  | ./target/release/marion-serve --workers 1 --slo p99_ms=0)"
printf '%s\n' "$slo_out" | sed -n 2p > metrics_violated.json
if ./target/release/marion-report --check-slo metrics_violated.json; then
  echo "check-slo failed to flag a violated objective" >&2
  exit 1
fi
rm -f metrics_violated.json

echo "==> dashboard HTML (extracted via marion-report, must be fully self-contained)"
./target/release/marion-report --dashboard dashboard_response.jsonl --out dashboard.html
test -s dashboard.html
! grep -Eq 'http://|https://' dashboard.html
! grep -Eq 'src=|href=' dashboard.html
grep -q '<style>' dashboard.html
grep -q 'marion-serve dashboard' dashboard.html
grep -q '<svg' dashboard.html
# The slowest request was tail-sampled and rendered as a flamegraph.
grep -q 'Slowest requests' dashboard.html
grep -q 'wall-clock attribution' dashboard.html
rm -f dashboard_response.jsonl

echo "==> HTML report from demo trace (flamegraph + DAG SVG + subphase diff, must be fully self-contained)"
cargo run --release --offline -q -p marion-bench --bin marion-report -- \
  --demo --html --serve metrics_snapshot.json \
  --bench-diff BENCH_compile.json BENCH_compile_smoke.json \
  --retarget BENCH_retarget_smoke.json \
  --quality BENCH_quality.json --out report.html
test -s report.html
# Self-containment contract: no network references, no external assets.
! grep -Eq 'http://|https://' report.html
! grep -Eq 'src=|href=' report.html
grep -q '<style>' report.html
grep -q 'Compile service' report.html
# The self-profile flamegraph and dependence-DAG SVGs are embedded.
grep -q 'self-profile flamegraph' report.html
grep -q '<svg ' report.html
grep -q 'Dependence DAG' report.html
# The before/after subphase self-time table is embedded.
grep -q 'subphase self-time' report.html
grep -q 'ready_scan' report.html
# The retargeting fuzz audit section is embedded.
grep -q 'Retargeting fuzz audit' report.html
grep -q 'blocks audited' report.html
# The quality observatory section is embedded.
grep -q 'Quality observatory' report.html
grep -q 'stall-cycle composition' report.html
grep -q 'speedups over Postpass' report.html

echo "==> perf-regression gate self-test (identical -> 0, 2x strategy time -> 1)"
./target/release/marion-bench diff BENCH_compile.json BENCH_compile.json --tolerance 5 > /dev/null
sed 's/"strategy": [0-9][0-9.]*/"strategy": 99999.0/' BENCH_compile.json > BENCH_regressed_tmp.json
if ./target/release/marion-bench diff BENCH_compile.json BENCH_regressed_tmp.json --tolerance 25 > /dev/null; then
  echo "diff gate failed to flag a synthetic regression" >&2
  rm -f BENCH_regressed_tmp.json
  exit 1
fi
rm -f BENCH_regressed_tmp.json

# Enforcing perf-regression gate. The committed BENCH_compile.json was
# produced on the reference runner; other machines differ in absolute
# speed, so the tolerance is wide (percent slowdown allowed per phase).
# Set MARION_PERF_GATE=off to skip on hosts whose speed falls outside
# even that band, or override MARION_PERF_GATE_TOLERANCE to retune.
if [ "${MARION_PERF_GATE:-on}" = "off" ]; then
  echo "==> perf-regression gate vs committed baseline (SKIPPED: MARION_PERF_GATE=off)"
else
  echo "==> perf-regression gate vs committed baseline (enforcing, tolerance ${MARION_PERF_GATE_TOLERANCE:-300}%)"
  ./target/release/marion-bench diff BENCH_compile.json BENCH_compile_smoke.json \
    --tolerance "${MARION_PERF_GATE_TOLERANCE:-300}"
fi

echo "==> quality-regression gate self-test (identical -> 0, +1 sim cycle -> 1)"
./target/release/marion-bench diff BENCH_quality.json BENCH_quality.json --tolerance 0 > /dev/null
sed 's/"sim_cycles": \([0-9][0-9]*\)/"sim_cycles": 1\1/' BENCH_quality.json > BENCH_quality_regressed_tmp.json
if ./target/release/marion-bench diff BENCH_quality.json BENCH_quality_regressed_tmp.json --tolerance 0 > /dev/null; then
  echo "quality gate failed to flag a synthetic cycle regression" >&2
  rm -f BENCH_quality_regressed_tmp.json
  exit 1
fi
rm -f BENCH_quality_regressed_tmp.json

# Enforcing quality-regression gate: the simulator is deterministic, so
# a fresh full sweep must reproduce the committed matrix cycle-for-cycle
# (tolerance 0). Any kernel whose sim or estimated cycles regress fails
# here; an intentional scheduler change regenerates the baseline with
# `marion-bench quality` and commits it alongside the change.
echo "==> quality-regression gate vs committed baseline (enforcing, tolerance 0)"
cargo run --release --offline -q -p marion-bench --bin marion-bench -- quality --out BENCH_quality_fresh.json > /dev/null
./target/release/marion-bench diff BENCH_quality.json BENCH_quality_fresh.json --tolerance 0
rm -f BENCH_quality_fresh.json

echo "==> serve bench smoke (cold vs warm over the shared cache, writes BENCH_serve_smoke.json)"
cargo run --release --offline -q -p marion-bench --bin marion-bench -- serve --smoke --out BENCH_serve_smoke.json

echo "CI OK"
