#!/bin/sh
# Offline CI gate: formatting, lints, release build, tests.
# The workspace has zero external dependencies, so every step runs
# without network access (--offline keeps cargo honest about that).
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test"
cargo test --workspace -q --offline

echo "==> marion-explain --demo smoke (narrative + audit + DOT well-formedness)"
cargo run --release --offline -q -p marion-bench --bin marion-explain -- --demo --check > /dev/null

echo "==> selection cross-check (indexed == brute-force on every machine x workload x strategy)"
cargo run --release --offline -q -p marion-bench --bin marion-bench -- crosscheck

echo "==> compile bench smoke (single iteration, writes BENCH_compile_smoke.json)"
cargo run --release --offline -q -p marion-bench --bin marion-bench -- compile --smoke --out BENCH_compile_smoke.json

echo "CI OK"
