//! The compile cache must be invisible: warm output byte-identical to
//! cold, keys that never collide for differing inputs, and corrupt
//! disk entries detected and recompiled rather than served.

use marion::backend::{CompileOptions, CompiledProgram, Compiler, FuncCache, StrategyKind};
use marion::cache::{CacheKey, StableHasher};
use marion::trace::{Record, TraceConfig};
use marion::workloads::rng::SplitMix64;
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

const MACHINES: [&str; 5] = ["toyp", "r2000", "m88k", "i860", "rs6000"];
const STRATEGIES: [StrategyKind; 3] = [
    StrategyKind::Postpass,
    StrategyKind::Ips,
    StrategyKind::Rase,
];

fn compile(
    machine: &str,
    strategy: StrategyKind,
    cache: Option<Arc<FuncCache>>,
) -> CompiledProgram {
    let spec = marion::machines::load(machine);
    let compiler = Compiler::with_options(
        spec.machine.clone(),
        spec.escapes,
        strategy,
        CompileOptions {
            trace: Some(TraceConfig::default()),
            cache,
            ..CompileOptions::default()
        },
    );
    let module = marion::workloads::multi::combined_generated(6, 42);
    compiler
        .compile_module(&module)
        .unwrap_or_else(|e| panic!("{machine}/{strategy:?}: {e}"))
}

/// All trace counters except the cache's own bookkeeping, which by
/// design exists only on cached runs.
fn counters(program: &CompiledProgram) -> BTreeMap<(String, String), i64> {
    let mut out = BTreeMap::new();
    for record in &program.trace.as_ref().expect("tracing was on").records {
        if let Record::Counter { name, ctx, value } = record {
            if name.starts_with("cache_") {
                continue;
            }
            *out.entry((ctx.clone(), name.clone())).or_insert(0) += value;
        }
    }
    out
}

#[test]
fn warm_cache_output_is_byte_identical_to_cold() {
    for machine in MACHINES {
        let render = |p: &CompiledProgram| p.render(&marion::machines::load(machine).machine);
        for strategy in STRATEGIES {
            let cold = compile(machine, strategy, None);
            let cache = Arc::new(FuncCache::in_memory(1024));
            let filling = compile(machine, strategy, Some(cache.clone()));
            let warm = compile(machine, strategy, Some(cache.clone()));

            let fill_summary = filling.cache.expect("cache accounting");
            let warm_summary = warm.cache.expect("cache accounting");
            assert_eq!(
                fill_summary.hits, 0,
                "{machine}/{strategy:?}: first run cold"
            );
            assert!(fill_summary.misses > 0);
            assert_eq!(
                warm_summary.misses, 0,
                "{machine}/{strategy:?}: second run fully warm"
            );
            assert_eq!(warm_summary.hits, fill_summary.misses);

            for run in [&filling, &warm] {
                assert_eq!(
                    render(&cold),
                    render(run),
                    "{machine}/{strategy:?}: assembly must not depend on the cache"
                );
                assert_eq!(cold.stats, run.stats, "{machine}/{strategy:?}: stats");
                assert_eq!(
                    counters(&cold),
                    counters(run),
                    "{machine}/{strategy:?}: trace counters (cache_* excluded)"
                );
            }
        }
    }
}

#[test]
fn warm_cache_is_identical_at_any_jobs_count() {
    let machine = "r2000";
    let cold = compile(machine, StrategyKind::Ips, None);
    let cache = Arc::new(FuncCache::in_memory(1024));
    let spec = marion::machines::load(machine);
    let module = marion::workloads::multi::combined_generated(6, 42);
    for jobs in [1usize, 4] {
        let compiler = Compiler::with_options(
            spec.machine.clone(),
            spec.escapes.clone(),
            StrategyKind::Ips,
            CompileOptions {
                trace: Some(TraceConfig::default()),
                cache: Some(cache.clone()),
                jobs: std::num::NonZeroUsize::new(jobs),
                ..CompileOptions::default()
            },
        );
        let program = compiler.compile_module(&module).expect("compiles");
        assert_eq!(
            cold.render(&spec.machine),
            program.render(&spec.machine),
            "jobs={jobs}"
        );
        assert_eq!(cold.stats, program.stats, "jobs={jobs}");
        assert_eq!(counters(&cold), counters(&program), "jobs={jobs}");
    }
    // First pass filled, second pass hit — across different job counts.
    let stats = cache.stats();
    assert!(stats.hits > 0 && stats.misses > 0);
}

#[test]
fn randomized_inputs_never_collide() {
    let mut rng = SplitMix64::new(0xC0FF_EE00_1234_5678);
    let mut keys: HashSet<CacheKey> = HashSet::new();
    // Random structured inputs: each distinct (byte-string, word
    // pair) must produce a distinct key.
    let mut inputs: HashSet<(Vec<u8>, u64, u64)> = HashSet::new();
    while inputs.len() < 4000 {
        let len = rng.index(48);
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        inputs.insert((bytes, rng.next_u64(), rng.next_u64()));
    }
    for (bytes, a, b) in &inputs {
        let mut h = StableHasher::new();
        h.write_bytes(bytes);
        h.write_u64(*a);
        h.write_u64(*b);
        assert!(
            keys.insert(h.finish()),
            "collision for {bytes:?} / {a:#x} / {b:#x}"
        );
    }
    // Flipping any single component must change the key.
    let mut h = StableHasher::new();
    h.write_str("machine");
    h.write_u64(7);
    h.write_str("function body");
    let base = h.finish();
    let variants = [
        {
            let mut h = StableHasher::new();
            h.write_str("machinf");
            h.write_u64(7);
            h.write_str("function body");
            h.finish()
        },
        {
            let mut h = StableHasher::new();
            h.write_str("machine");
            h.write_u64(8);
            h.write_str("function body");
            h.finish()
        },
        {
            let mut h = StableHasher::new();
            h.write_str("machine");
            h.write_u64(7);
            h.write_str("function bodz");
            h.finish()
        },
        // Shifting a boundary must not cancel out.
        {
            let mut h = StableHasher::new();
            h.write_str("machine7");
            h.write_u64(7);
            h.write_str("function body");
            h.finish()
        },
    ];
    for (i, v) in variants.iter().enumerate() {
        assert_ne!(base, *v, "variant {i} collided with the base key");
    }
}

#[test]
fn corrupted_disk_entry_is_recompiled_not_served() {
    let dir = std::env::temp_dir().join(format!("marion-cache-corrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("store.jsonl");
    let _ = std::fs::remove_file(&path);

    let machine = "r2000";
    let strategy = StrategyKind::Ips;
    let cold = compile(machine, strategy, None);

    // Fill a disk-backed cache.
    {
        let (cache, load) = FuncCache::with_disk(1024, &path).unwrap();
        assert_eq!(load.loaded, 0);
        let filling = compile(machine, strategy, Some(Arc::new(cache)));
        assert!(filling.cache.unwrap().misses > 0);
    }
    let entries = std::fs::read_to_string(&path).unwrap().lines().count();
    assert!(entries >= 6, "one disk entry per function, got {entries}");

    // Corrupt one entry: flip a payload byte without touching the
    // recorded checksum.
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    let target = lines[2]
        .find("\"payload\":\"")
        .expect("payload field present")
        + "\"payload\":\"".len()
        + 40;
    let mut bytes = lines[2].clone().into_bytes();
    bytes[target] = if bytes[target] == b'a' { b'b' } else { b'a' };
    lines[2] = String::from_utf8(bytes).unwrap();
    std::fs::write(&path, lines.join("\n") + "\n").unwrap();

    // Reload: the corrupt entry is counted, skipped, and recompiled.
    let (cache, load) = FuncCache::with_disk(1024, &path).unwrap();
    assert_eq!(load.corrupt, 1, "exactly the flipped entry is rejected");
    assert_eq!(load.loaded, entries - 1);
    let reloaded = compile(machine, strategy, Some(Arc::new(cache)));
    let summary = reloaded.cache.unwrap();
    assert_eq!(summary.misses, 1, "only the corrupt entry recompiles");
    assert_eq!(summary.hits as usize, entries - 1);
    assert_eq!(
        cold.render(&marion::machines::load(machine).machine),
        reloaded.render(&marion::machines::load(machine).machine),
        "recompiled output must match the cold compile"
    );
    assert_eq!(cold.stats, reloaded.stats);

    let _ = std::fs::remove_dir_all(&dir);
}
