//! The compile cache must be invisible: warm output byte-identical to
//! cold, keys that never collide for differing inputs, and corrupt
//! disk entries detected and recompiled rather than served.

use marion::backend::{CompileOptions, CompiledProgram, Compiler, FuncCache, StrategyKind};
use marion::cache::{CacheKey, StableHasher};
use marion::trace::{Record, TraceConfig};
use marion::workloads::rng::SplitMix64;
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

const MACHINES: [&str; 5] = ["toyp", "r2000", "m88k", "i860", "rs6000"];
const STRATEGIES: [StrategyKind; 3] = [
    StrategyKind::Postpass,
    StrategyKind::Ips,
    StrategyKind::Rase,
];

fn compile(
    machine: &str,
    strategy: StrategyKind,
    cache: Option<Arc<FuncCache>>,
) -> CompiledProgram {
    let spec = marion::machines::load(machine);
    let compiler = Compiler::with_options(
        spec.machine.clone(),
        spec.escapes,
        strategy,
        CompileOptions {
            trace: Some(TraceConfig::default()),
            cache,
            ..CompileOptions::default()
        },
    );
    let module = marion::workloads::multi::combined_generated(6, 42);
    compiler
        .compile_module(&module)
        .unwrap_or_else(|e| panic!("{machine}/{strategy:?}: {e}"))
}

/// All trace counters except the cache's own bookkeeping, which by
/// design exists only on cached runs.
fn counters(program: &CompiledProgram) -> BTreeMap<(String, String), i64> {
    let mut out = BTreeMap::new();
    for record in &program.trace.as_ref().expect("tracing was on").records {
        if let Record::Counter { name, ctx, value } = record {
            if name.starts_with("cache_") {
                continue;
            }
            *out.entry((ctx.clone(), name.clone())).or_insert(0) += value;
        }
    }
    out
}

#[test]
fn warm_cache_output_is_byte_identical_to_cold() {
    for machine in MACHINES {
        let render = |p: &CompiledProgram| p.render(&marion::machines::load(machine).machine);
        for strategy in STRATEGIES {
            let cold = compile(machine, strategy, None);
            let cache = Arc::new(FuncCache::in_memory(1024));
            let filling = compile(machine, strategy, Some(cache.clone()));
            let warm = compile(machine, strategy, Some(cache.clone()));

            let fill_summary = filling.cache.expect("cache accounting");
            let warm_summary = warm.cache.expect("cache accounting");
            assert_eq!(
                fill_summary.hits, 0,
                "{machine}/{strategy:?}: first run cold"
            );
            assert!(fill_summary.misses > 0);
            assert_eq!(
                warm_summary.misses, 0,
                "{machine}/{strategy:?}: second run fully warm"
            );
            assert_eq!(warm_summary.hits, fill_summary.misses);

            for run in [&filling, &warm] {
                assert_eq!(
                    render(&cold),
                    render(run),
                    "{machine}/{strategy:?}: assembly must not depend on the cache"
                );
                assert_eq!(cold.stats, run.stats, "{machine}/{strategy:?}: stats");
                assert_eq!(
                    counters(&cold),
                    counters(run),
                    "{machine}/{strategy:?}: trace counters (cache_* excluded)"
                );
            }
        }
    }
}

#[test]
fn warm_cache_is_identical_at_any_jobs_count() {
    let machine = "r2000";
    let cold = compile(machine, StrategyKind::Ips, None);
    let cache = Arc::new(FuncCache::in_memory(1024));
    let spec = marion::machines::load(machine);
    let module = marion::workloads::multi::combined_generated(6, 42);
    for jobs in [1usize, 4] {
        let compiler = Compiler::with_options(
            spec.machine.clone(),
            spec.escapes.clone(),
            StrategyKind::Ips,
            CompileOptions {
                trace: Some(TraceConfig::default()),
                cache: Some(cache.clone()),
                jobs: std::num::NonZeroUsize::new(jobs),
                ..CompileOptions::default()
            },
        );
        let program = compiler.compile_module(&module).expect("compiles");
        assert_eq!(
            cold.render(&spec.machine),
            program.render(&spec.machine),
            "jobs={jobs}"
        );
        assert_eq!(cold.stats, program.stats, "jobs={jobs}");
        assert_eq!(counters(&cold), counters(&program), "jobs={jobs}");
    }
    // First pass filled, second pass hit — across different job counts.
    let stats = cache.stats();
    assert!(stats.hits > 0 && stats.misses > 0);
}

#[test]
fn randomized_inputs_never_collide() {
    let mut rng = SplitMix64::new(0xC0FF_EE00_1234_5678);
    let mut keys: HashSet<CacheKey> = HashSet::new();
    // Random structured inputs: each distinct (byte-string, word
    // pair) must produce a distinct key.
    let mut inputs: HashSet<(Vec<u8>, u64, u64)> = HashSet::new();
    while inputs.len() < 4000 {
        let len = rng.index(48);
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        inputs.insert((bytes, rng.next_u64(), rng.next_u64()));
    }
    for (bytes, a, b) in &inputs {
        let mut h = StableHasher::new();
        h.write_bytes(bytes);
        h.write_u64(*a);
        h.write_u64(*b);
        assert!(
            keys.insert(h.finish()),
            "collision for {bytes:?} / {a:#x} / {b:#x}"
        );
    }
    // Flipping any single component must change the key.
    let mut h = StableHasher::new();
    h.write_str("machine");
    h.write_u64(7);
    h.write_str("function body");
    let base = h.finish();
    let variants = [
        {
            let mut h = StableHasher::new();
            h.write_str("machinf");
            h.write_u64(7);
            h.write_str("function body");
            h.finish()
        },
        {
            let mut h = StableHasher::new();
            h.write_str("machine");
            h.write_u64(8);
            h.write_str("function body");
            h.finish()
        },
        {
            let mut h = StableHasher::new();
            h.write_str("machine");
            h.write_u64(7);
            h.write_str("function bodz");
            h.finish()
        },
        // Shifting a boundary must not cancel out.
        {
            let mut h = StableHasher::new();
            h.write_str("machine7");
            h.write_u64(7);
            h.write_str("function body");
            h.finish()
        },
    ];
    for (i, v) in variants.iter().enumerate() {
        assert_ne!(base, *v, "variant {i} collided with the base key");
    }
}

/// The key an earlier fcache computed: `Debug`-render the machine and
/// the function into strings and hash those. Re-implemented here so
/// the structural `StableHash` scheme can be crosschecked against it:
/// wherever the render-based key distinguished two inputs, the
/// structural key must too.
fn debug_render_key(
    machine_render: &str,
    strategy: StrategyKind,
    fill_delay_slots: bool,
    module: &marion::ir::Module,
    func: &marion::ir::Function,
) -> CacheKey {
    let mut h = StableHasher::new();
    h.write_i64(marion::backend::fcache::FORMAT_VERSION);
    h.write_str(machine_render);
    h.write_str(strategy.name());
    h.write_u64(fill_delay_slots as u64);
    h.write_u64(0); // trace: None
    h.write_str(&format!("{func:?}"));
    h.write_u64(module.symbol_count() as u64);
    for i in 0..module.symbol_count() {
        h.write_str(module.symbol_name(marion::ir::SymbolId(i as u32)));
    }
    h.finish()
}

#[test]
fn structural_keys_are_injective_wherever_render_keys_were() {
    use marion::backend::fcache::{base_fingerprint, func_key};

    // A pool of functions: 18 linked modules over disjoint seed
    // ranges with varying unit counts. Driver `main`s repeat across
    // modules with equal unit counts (same calls, same symbol table) —
    // those are genuinely identical cache inputs, so dedupe by input
    // identity and demand equal keys for them instead.
    let modules: Vec<marion::ir::Module> = (0..18u64)
        .map(|s| marion::workloads::multi::combined_generated(6 + s % 5, 1000 + 100 * s))
        .collect();
    let symtabs: Vec<Vec<&str>> = modules
        .iter()
        .map(|m| {
            (0..m.symbol_count())
                .map(|i| m.symbol_name(marion::ir::SymbolId(i as u32)))
                .collect()
        })
        .collect();

    let mut old_keys: HashSet<CacheKey> = HashSet::new();
    let mut new_keys: HashSet<CacheKey> = HashSet::new();
    let mut seen: BTreeMap<String, (CacheKey, CacheKey)> = BTreeMap::new();
    for machine in MACHINES {
        let spec = marion::machines::load(machine);
        let machine_render = format!("{:?}", spec.machine);
        for strategy in STRATEGIES {
            for fill in [false, true] {
                let options = CompileOptions {
                    fill_delay_slots: fill,
                    ..CompileOptions::default()
                };
                let new_base = base_fingerprint(&spec.machine, strategy, &options);
                for (module, symtab) in modules.iter().zip(&symtabs) {
                    for func in &module.funcs {
                        let old = debug_render_key(&machine_render, strategy, fill, module, func);
                        let new = func_key(&new_base, module, func);
                        // Everything either key scheme covers, rendered
                        // as the input's identity.
                        let input = format!("{machine}/{strategy:?}/{fill}/{symtab:?}/{func:?}");
                        match seen.get(&input) {
                            Some(&(prev_old, prev_new)) => {
                                assert_eq!(prev_old, old, "render key not deterministic");
                                assert_eq!(prev_new, new, "structural key not deterministic");
                            }
                            None => {
                                assert!(
                                    old_keys.insert(old),
                                    "{machine}/{strategy:?}/fill={fill}: render-key collision \
                                     for {}",
                                    func.name
                                );
                                assert!(
                                    new_keys.insert(new),
                                    "{machine}/{strategy:?}/fill={fill}: structural-key \
                                     collision for {}",
                                    func.name
                                );
                                seen.insert(input, (old, new));
                            }
                        }
                    }
                }
            }
        }
    }
    assert!(
        seen.len() >= 4000,
        "need at least 4000 distinct machine x function variants, swept {}",
        seen.len()
    );
    assert_eq!(old_keys.len(), new_keys.len());
}

#[test]
fn shifting_a_field_boundary_flips_the_structural_key() {
    use marion::backend::stablehash::StableHash;
    use marion::ir::{Block, Function, Local, Terminator};

    // Two functions whose locals concatenate to the same byte string:
    // ("ab", "c") vs ("a", "bc"). A length-prefix-free encoding would
    // collide; the structural key must not.
    let func_with_locals = |names: [&str; 2]| Function {
        name: "f".to_string(),
        params: Vec::new(),
        ret_ty: None,
        vreg_tys: Vec::new(),
        locals: names
            .iter()
            .map(|n| Local {
                name: n.to_string(),
                size: 4,
            })
            .collect(),
        blocks: vec![Block {
            stmts: Vec::new(),
            term: Terminator::Ret(None),
        }],
        nodes: Vec::new(),
    };
    let key = |f: &Function| {
        let mut h = StableHasher::new();
        f.stable_hash(&mut h);
        h.finish()
    };
    assert_ne!(
        key(&func_with_locals(["ab", "c"])),
        key(&func_with_locals(["a", "bc"])),
        "local-name boundary shift must flip the function key"
    );

    // Same at the machine level: resources ("AB", "C") vs ("A", "BC").
    let machine_with_resources = |decl: &str| {
        let src = format!(
            r#"
            declare {{
                %reg r[0:3] (int);
                %resource {decl} IE;
                %def c16 [-32768:32767];
            }}
            cwvm {{
                %general (int) r;
                %allocable r[1:2];
                %sp r[3] +down;
                %fp r[0] +down;
                %retaddr r[1];
            }}
            instr {{
                %instr add r, r, r (int) {{$1 = $2 + $3;}} [IE;] (1,1,0)
            }}
        "#
        );
        marion::maril::Machine::parse("bshift", &src).expect("parses")
    };
    let mkey = |m: &marion::maril::Machine| {
        let mut h = StableHasher::new();
        m.stable_hash(&mut h);
        h.finish()
    };
    assert_ne!(
        mkey(&machine_with_resources("AB; C;")),
        mkey(&machine_with_resources("A; BC;")),
        "resource-name boundary shift must flip the machine key"
    );
}

#[test]
fn corrupted_disk_entry_is_recompiled_not_served() {
    let dir = std::env::temp_dir().join(format!("marion-cache-corrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("store.jsonl");
    let _ = std::fs::remove_file(&path);

    let machine = "r2000";
    let strategy = StrategyKind::Ips;
    let cold = compile(machine, strategy, None);

    // Fill a disk-backed cache.
    {
        let (cache, load) = FuncCache::with_disk(1024, &path).unwrap();
        assert_eq!(load.loaded, 0);
        let filling = compile(machine, strategy, Some(Arc::new(cache)));
        assert!(filling.cache.unwrap().misses > 0);
    }
    let entries = std::fs::read_to_string(&path).unwrap().lines().count();
    assert!(entries >= 6, "one disk entry per function, got {entries}");

    // Corrupt one entry: flip a payload byte without touching the
    // recorded checksum.
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    let target = lines[2]
        .find("\"payload\":\"")
        .expect("payload field present")
        + "\"payload\":\"".len()
        + 40;
    let mut bytes = lines[2].clone().into_bytes();
    bytes[target] = if bytes[target] == b'a' { b'b' } else { b'a' };
    lines[2] = String::from_utf8(bytes).unwrap();
    std::fs::write(&path, lines.join("\n") + "\n").unwrap();

    // Reload: the corrupt entry is counted, skipped, and recompiled.
    let (cache, load) = FuncCache::with_disk(1024, &path).unwrap();
    assert_eq!(load.corrupt, 1, "exactly the flipped entry is rejected");
    assert_eq!(load.loaded, entries - 1);
    let reloaded = compile(machine, strategy, Some(Arc::new(cache)));
    let summary = reloaded.cache.unwrap();
    assert_eq!(summary.misses, 1, "only the corrupt entry recompiles");
    assert_eq!(summary.hits as usize, entries - 1);
    assert_eq!(
        cold.render(&marion::machines::load(machine).machine),
        reloaded.render(&marion::machines::load(machine).machine),
        "recompiled output must match the cold compile"
    );
    assert_eq!(cold.stats, reloaded.stats);

    let _ = std::fs::remove_dir_all(&dir);
}
