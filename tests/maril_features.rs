//! End-to-end tests of the Maril language features the paper
//! highlights: auxiliary latencies, packing classes, temporal
//! scheduling, delay slots and escapes — observed through the whole
//! compiler rather than unit-by-unit.

use marion::backend::{dag::build_dag, sched, select, Compiler, StrategyKind};
use marion::maril::Machine;

/// `%aux` must stretch the producer-consumer distance in real
/// schedules: storing a just-computed `fadd.d` result on TOYP costs 7
/// cycles instead of 6 (Figure 3's example).
#[test]
fn aux_latency_changes_schedules() {
    let spec = marion::machines::load("toyp");
    let src = "double a, b, c;
               void f() { c = a + b; }";
    let module = marion::frontend::compile(src).unwrap();
    let mut func = module.funcs[0].clone();
    marion::backend::glue::apply_glue(&spec.machine, &mut func).unwrap();
    let code = select::select_func(&spec.machine, &spec.escapes, &module, &func).unwrap();
    // Find the block with fadd.d followed by st.d of its result.
    let fadd = spec.machine.template_by_mnemonic("fadd.d").unwrap();
    let st = spec.machine.template_by_mnemonic("st.d").unwrap();
    let mut found = false;
    for block in &code.blocks {
        let fi = block.insts.iter().position(|i| i.template == fadd);
        let si = block.insts.iter().position(|i| i.template == st);
        if let (Some(fi), Some(si)) = (fi, si) {
            let dag = build_dag(&spec.machine, block, true);
            let sch = sched::schedule_block(&spec.machine, &code, block, &dag, &Default::default())
                .unwrap();
            assert!(
                sch.inst_cycle[si] >= sch.inst_cycle[fi] + 7,
                "aux latency (7) not honoured: fadd at {}, st at {}",
                sch.inst_cycle[fi],
                sch.inst_cycle[si]
            );
            found = true;
        }
    }
    assert!(found, "expected an fadd.d/st.d pair");
}

/// Two sub-operations pack only when their classes intersect: an i860
/// `A1` (class ⊇ {pfadd, m12apm, ...}) and `S1` (class ⊇ {pfsub, ...})
/// can never share a word, while `A1` and `M1` can (via `m12apm`).
#[test]
fn packing_classes_restrict_words() {
    let m = marion::machines::i860::load();
    let class_of = |mnem: &str| {
        let t = m.template_by_mnemonic(mnem).unwrap();
        m.class(m.template(t).class.unwrap()).elements
    };
    assert!(class_of("A1").intersects(&class_of("M1")));
    assert!(!class_of("A1").intersects(&class_of("S1")));
    assert!(class_of("A1m").intersects(&class_of("M2")));
}

/// Branch delay slots are filled with `nop`s (§4.4) — count them in an
/// emitted function with branches on a 1-slot machine.
#[test]
fn delay_slots_filled_with_nops() {
    let spec = marion::machines::load("r2000");
    let src = "int f(int n) {
        int s = 0, i;
        for (i = 0; i < n; i++) if (i % 3 == 0) s += i;
        return s;
    }";
    let module = marion::frontend::compile(src).unwrap();
    let compiler = Compiler::new(
        spec.machine.clone(),
        spec.escapes.clone(),
        StrategyKind::Postpass,
    );
    let program = compiler.compile_module(&module).unwrap();
    let func = program.asm.func("f").unwrap();
    let nop = spec.machine.nop_template().unwrap();
    // Every control word must be followed (in its block or the layout)
    // by something — and at least one nop should exist somewhere,
    // since tight loop branches rarely find fillers for every slot.
    let words: Vec<_> = func.blocks.iter().flat_map(|b| b.words.iter()).collect();
    let mut after_branch_ok = true;
    for (i, w) in words.iter().enumerate() {
        let slots: u32 = w
            .insts
            .iter()
            .filter(|inst| spec.machine.template(inst.template).effects.is_control())
            .map(|inst| spec.machine.template(inst.template).slots.unsigned_abs())
            .max()
            .unwrap_or(0);
        for s in 1..=slots {
            if i + s as usize >= words.len() {
                after_branch_ok = false;
            }
        }
    }
    assert!(after_branch_ok, "a control word is missing its delay slot");
    let nops = words
        .iter()
        .flat_map(|w| w.insts.iter())
        .filter(|i| i.template == nop)
        .count();
    assert!(nops > 0, "expected nop-filled delay slots");
}

/// The same Maril text always compiles to the same machine.
#[test]
fn description_compilation_is_deterministic() {
    let a = Machine::parse("t", marion::machines::r2000::text()).unwrap();
    let b = Machine::parse("t", marion::machines::r2000::text()).unwrap();
    assert_eq!(a, b);
}

/// Escapes really expand: a double register copy on TOYP becomes two
/// `[s.movs]`-labelled single moves (paper §3.4).
#[test]
fn toyp_movd_escape_expands_to_half_moves() {
    let spec = marion::machines::load("toyp");
    let src = "double g(double x) { double y; y = x; return y; }";
    let module = marion::frontend::compile(src).unwrap();
    let compiler = Compiler::new(
        spec.machine.clone(),
        spec.escapes.clone(),
        StrategyKind::Postpass,
    );
    let program = compiler.compile_module(&module).unwrap();
    let smovs = spec.machine.template_by_label("s.movs").unwrap();
    let count = program
        .asm
        .func("g")
        .unwrap()
        .blocks
        .iter()
        .flat_map(|b| b.words.iter())
        .flat_map(|w| w.insts.iter())
        .filter(|i| i.template == smovs)
        .count();
    assert!(count >= 2, "expected pairs of single moves, found {count}");
    assert_eq!(count % 2, 0, "half-moves must come in pairs");
}

/// The generic compare `::` + glue covers all six relations on every
/// machine: each relation both taken and not taken.
#[test]
fn all_comparisons_work_everywhere() {
    let src = "int main() {
        int a = 5, b = 9, s = 0;
        double x = 1.5, y = 2.5;
        if (a == 5) s += 1;
        if (a != b) s += 2;
        if (a < b) s += 4;
        if (a <= 5) s += 8;
        if (b > a) s += 16;
        if (b >= 9) s += 32;
        if (x < y) s += 64;
        if (y >= 2.5) s += 128;
        if (x == 1.5) s += 256;
        if (x != y) s += 512;
        if (b < a) s += 1024;
        if (y <= x) s += 2048;
        return s;
    }";
    let module = marion::frontend::compile(src).unwrap();
    for name in marion::machines::ALL {
        let spec = marion::machines::load(name);
        let compiler = Compiler::new(
            spec.machine.clone(),
            spec.escapes.clone(),
            StrategyKind::Postpass,
        );
        let program = compiler.compile_module(&module).unwrap();
        let run = marion::sim::run_program(
            &spec.machine,
            &program,
            "main",
            &[],
            Some(marion::maril::Ty::Int),
            &marion::sim::SimConfig::default(),
        )
        .unwrap();
        assert_eq!(
            run.result,
            Some(marion::sim::Value::I(1023)),
            "comparison semantics broken on {name}"
        );
    }
}

/// The §4.4 optional pass: delay slots get useful instructions when a
/// safe candidate exists, and the filled program still computes the
/// right answer (covered globally by the differential tests; here we
/// check the filler actually fires).
#[test]
fn delay_slot_filler_replaces_some_nops() {
    let spec = marion::machines::load("r2000");
    // A loop with independent work before the back-branch gives the
    // filler candidates.
    let src = "int a[32];
        int f() {
            int i, s = 0, t = 0;
            for (i = 0; i < 32; i++) { a[i] = i * 3; t += 2; }
            return s + t;
        }";
    let module = marion::frontend::compile(src).unwrap();
    let compiler = Compiler::new(
        spec.machine.clone(),
        spec.escapes.clone(),
        StrategyKind::Postpass,
    );
    let program = compiler.compile_module(&module).unwrap();
    assert!(
        program.stats.delay_slots_filled > 0,
        "filler never fired:\n{}",
        program.render(&spec.machine)
    );
}

/// The i860's single floating write-back bus: MWB and AWB share the
/// FWB resource, so two write-backs can never issue in one cycle —
/// the structural hazard model of §4.3.
#[test]
fn i860_shared_writeback_bus_serialises() {
    use marion::backend::{dag::build_dag, select::select_func};
    let spec = marion::machines::load("i860");
    // Two independent multiplies and two independent adds: four
    // pipeline results all wanting the write-back bus.
    let src = "double a, b, c, d2, e, f, g, h;
               void k() { e = a * b; f = c * d2; g = a + c; h = b + d2; }";
    let mut module = marion::frontend::compile(src).unwrap();
    marion::backend::driver::materialize_float_constants(&mut module);
    let mut func = module.funcs[0].clone();
    marion::backend::glue::apply_glue(&spec.machine, &mut func).unwrap();
    let code = select_func(&spec.machine, &spec.escapes, &module, &func).unwrap();
    let mwb = spec.machine.template_by_mnemonic("MWB").unwrap();
    let awb = spec.machine.template_by_mnemonic("AWB").unwrap();
    for block in &code.blocks {
        let wbs: Vec<usize> = block
            .insts
            .iter()
            .enumerate()
            .filter(|(_, i)| i.template == mwb || i.template == awb)
            .map(|(i, _)| i)
            .collect();
        if wbs.len() < 2 {
            continue;
        }
        let dag = build_dag(&spec.machine, block, true);
        let s =
            sched::schedule_block(&spec.machine, &code, block, &dag, &Default::default()).unwrap();
        for (i, &a) in wbs.iter().enumerate() {
            for &b in &wbs[i + 1..] {
                assert_ne!(
                    s.inst_cycle[a], s.inst_cycle[b],
                    "two write-backs shared the FWB bus in one cycle"
                );
            }
        }
        return;
    }
    panic!("expected a block with several write-backs");
}

/// A `%glue` *value* rule end to end: TOYP strength-reduces `x * 2`
/// into `x + x` before selection, avoiding the 5-cycle multiplier.
#[test]
fn glue_value_rule_strength_reduces_on_toyp() {
    let spec = marion::machines::load("toyp");
    let src = "int f(int x) { return x * 2; }
               int g(int x) { return x * 3; }";
    let module = marion::frontend::compile(src).unwrap();
    let compiler = Compiler::new(
        spec.machine.clone(),
        spec.escapes.clone(),
        StrategyKind::Postpass,
    );
    let program = compiler.compile_module(&module).unwrap();
    let mul = spec.machine.template_by_mnemonic("mul").unwrap();
    let count_mnemonic = |name: &str, t| {
        program
            .asm
            .func(name)
            .unwrap()
            .blocks
            .iter()
            .flat_map(|b| b.words.iter())
            .flat_map(|w| w.insts.iter())
            .filter(|i| i.template == t)
            .count()
    };
    assert_eq!(count_mnemonic("f", mul), 0, "x*2 should become x+x");
    assert_eq!(count_mnemonic("g", mul), 1, "x*3 keeps the multiply");
    // And the rewritten code is still correct.
    let run = marion::sim::run_program(
        &spec.machine,
        &program,
        "f",
        &[marion::sim::Value::I(21)],
        Some(marion::maril::Ty::Int),
        &marion::sim::SimConfig::default(),
    )
    .unwrap();
    assert_eq!(run.result, Some(marion::sim::Value::I(42)));
}
