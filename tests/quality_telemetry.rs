//! The quality-telemetry invariants, swept over the whole bundled
//! matrix:
//!
//! * the DAG critical path is a true lower bound — for every machine ×
//!   strategy × Livermore kernel, `critical_path ≤ est_cycles` holds
//!   per function and in aggregate (enforced by
//!   `ProgramQuality::validate`);
//! * estimate-vs-sim drift stays inside the documented plausibility
//!   band: the simulator adds cache and memory-system cycles the
//!   schedule estimate deliberately excludes, so sim/estimate must
//!   land in 0.5..10 (the same band the retargeting fuzzer's anomaly
//!   detector uses);
//! * quality telemetry is cache-invisible — warm compiles replay
//!   byte-identical per-block quality, so `QualityRecord`s assembled
//!   from a warm program equal the cold ones exactly.

use marion::backend::quality::records_for_program;
use marion::backend::{CompileOptions, CompiledProgram, Compiler, FuncCache, StrategyKind};
use marion::sim::{run_program, RunResult, SimConfig};
use std::sync::Arc;

const STRATEGIES: [StrategyKind; 3] = [
    StrategyKind::Postpass,
    StrategyKind::Ips,
    StrategyKind::Rase,
];

/// Sim/estimate plausibility band (see module doc).
const DRIFT_RANGE: (f64, f64) = (0.5, 10.0);

fn compile_and_run(
    machine: &str,
    strategy: StrategyKind,
    w: &marion::workloads::Workload,
) -> (CompiledProgram, RunResult) {
    let spec = marion::machines::load(machine);
    let compiler = Compiler::new(spec.machine.clone(), spec.escapes, strategy);
    let program = compiler
        .compile_module(&w.module())
        .unwrap_or_else(|e| panic!("{machine}/{strategy:?}/{}: {e}", w.name));
    let run = run_program(
        &spec.machine,
        &program,
        "main",
        &[],
        Some(marion::maril::Ty::Int),
        &SimConfig::default(),
    )
    .unwrap_or_else(|e| panic!("{machine}/{strategy:?}/{}: {e}", w.name));
    (program, run)
}

/// Every machine × strategy × Livermore kernel: assemble the quality
/// record, check the critical-path invariant and the drift band.
fn check_machine(machine: &str) {
    for w in marion::workloads::livermore::kernels() {
        for strategy in STRATEGIES {
            let (program, run) = compile_and_run(machine, strategy, &w);
            let quality = marion::backend::ProgramQuality::assemble(
                &program,
                &w.name,
                run.cycles,
                run.nops_retired,
                &run.block_counts,
            );
            // critical_path <= est_cycles, per function and aggregate.
            quality
                .validate()
                .unwrap_or_else(|e| panic!("{machine}/{strategy:?}/{}: {e}", w.name));
            let total = quality.total();
            assert!(
                total.est_cycles > 0,
                "{machine}/{strategy:?}/{}: zero estimate",
                w.name
            );
            let ratio = quality.sim_cycles as f64 / total.est_cycles as f64;
            assert!(
                ratio >= DRIFT_RANGE.0 && ratio <= DRIFT_RANGE.1,
                "{machine}/{strategy:?}/{}: sim {} vs est {} — ratio {ratio:.2} \
                 outside the documented {:?} band",
                w.name,
                quality.sim_cycles,
                total.est_cycles,
                DRIFT_RANGE
            );
        }
    }
}

#[test]
fn invariants_hold_on_toyp() {
    check_machine("toyp");
}

#[test]
fn invariants_hold_on_r2000() {
    check_machine("r2000");
}

#[test]
fn invariants_hold_on_m88k() {
    check_machine("m88k");
}

#[test]
fn invariants_hold_on_i860() {
    check_machine("i860");
}

#[test]
fn invariants_hold_on_rs6000() {
    check_machine("rs6000");
}

/// Warm-cache compiles must replay the exact per-block quality the
/// cold compile recorded: the assembled `QualityRecord`s are compared
/// for full structural equality under the same execution profile.
#[test]
fn warm_cache_quality_records_are_identical() {
    let machine = "r2000";
    let spec = marion::machines::load(machine);
    let module = marion::workloads::multi::combined_livermore();
    let compile = |cache: Option<Arc<FuncCache>>| -> CompiledProgram {
        Compiler::with_options(
            spec.machine.clone(),
            spec.escapes.clone(),
            StrategyKind::Ips,
            CompileOptions {
                cache,
                ..CompileOptions::default()
            },
        )
        .compile_module(&module)
        .expect("compiles")
    };
    let cold = compile(None);
    let cache = Arc::new(FuncCache::in_memory(1024));
    let filling = compile(Some(cache.clone()));
    let warm = compile(Some(cache.clone()));
    assert_eq!(filling.cache.as_ref().expect("accounting").hits, 0);
    assert_eq!(warm.cache.as_ref().expect("accounting").misses, 0);

    // One execution profile, shared across all three programs (they
    // render byte-identically, so block indices line up).
    let run = run_program(
        &spec.machine,
        &cold,
        "main",
        &[],
        Some(marion::maril::Ty::Int),
        &SimConfig::default(),
    )
    .expect("runs");
    let cold_records = records_for_program(&cold, &run.block_counts);
    assert!(!cold_records.is_empty());
    for (label, program) in [("filling", &filling), ("warm", &warm)] {
        assert_eq!(
            cold.render(&spec.machine),
            program.render(&spec.machine),
            "{label}: assembly must not depend on the cache"
        );
        assert_eq!(
            cold_records,
            records_for_program(program, &run.block_counts),
            "{label}: quality records must be byte-identical to cold"
        );
    }
}
