//! The trace must agree with the compiler's own statistics: for every
//! function, the JSONL-visible counters equal the `CompileStats`
//! per-function breakdown, on a tiny machine (TOYP, where spills are
//! easy to provoke) and a real one (R2000). Also covers the
//! reservation-table events on the dual-issue i860 and the JSONL
//! round trip of a whole compile trace.

use marion::backend::{CompileOptions, Compiler, StrategyKind};
use marion::trace::{TraceConfig, TraceData};

/// Enough simultaneously-live values to exceed TOYP's five allocable
/// integer registers, plus a call and branches for delay slots.
const PRESSURE: &str = "
int leaf(int x) { return x + 1; }
int main() {
    int a = 1, b = 2, c = 3, d = 4, e = 5, f = 6, g = 7, h = 8;
    int i;
    for (i = 0; i < 4; i++) {
        a += b * c; b += c * d; c += d * e; d += e * f;
        e += f * g; f += g * h; g += h * a; h += a * b;
    }
    return leaf(a + b + c + d + e + f + g + h);
}
";

fn compile_traced(
    machine: &str,
    strategy: StrategyKind,
    reservation_tables: bool,
) -> marion::backend::CompiledProgram {
    let module = marion::frontend::compile(PRESSURE).unwrap();
    let spec = marion::machines::load(machine);
    let compiler = Compiler::with_options(
        spec.machine.clone(),
        spec.escapes.clone(),
        strategy,
        CompileOptions {
            trace: Some(TraceConfig {
                reservation_tables,
                explanations: false,
            }),
            ..CompileOptions::default()
        },
    );
    compiler.compile_module(&module).unwrap()
}

fn assert_trace_matches_stats(machine: &str, strategy: StrategyKind) {
    let program = compile_traced(machine, strategy, false);
    let trace = program.trace.as_ref().expect("tracing was on");
    assert_eq!(program.stats.per_func.len(), 2, "leaf and main");
    for fs in &program.stats.per_func {
        let ctx = format!("{machine}/{}", fs.name);
        for (counter, expected) in [
            ("insts_generated", fs.insts_generated as i64),
            ("spills", fs.spills as i64),
            ("delay_slots_filled", fs.delay_slots_filled as i64),
            ("schedule_passes", fs.schedule_passes as i64),
            ("estimated_cycles", fs.estimated_cycles as i64),
            ("nops_emitted", fs.nops_emitted as i64),
        ] {
            // A counter that was never bumped (e.g. spills == 0) may
            // be absent from the trace; that still means zero.
            let got = trace.counter(&ctx, counter).unwrap_or(0);
            assert_eq!(
                got, expected,
                "{ctx}: trace {counter} = {got}, stats say {expected}"
            );
        }
    }
    // The aggregate equals the sum of the per-function breakdown.
    let per_func_insts: usize = program
        .stats
        .per_func
        .iter()
        .map(|f| f.insts_generated)
        .sum();
    assert_eq!(program.stats.insts_generated, per_func_insts);
    let per_func_spills: usize = program.stats.per_func.iter().map(|f| f.spills).sum();
    assert_eq!(program.stats.spills, per_func_spills);
    // Phase spans exist for every function.
    assert_eq!(trace.spans_named("compile_func").len(), 2);
    for phase in ["glue", "select", "strategy", "emit"] {
        assert_eq!(trace.spans_named(phase).len(), 2, "{phase} spans");
    }
}

#[test]
fn trace_counters_match_stats_on_toyp() {
    // TOYP has 5 allocable integer registers: PRESSURE must spill, so
    // the spills counter is exercised with a non-zero value.
    let program = compile_traced("toyp", StrategyKind::Postpass, false);
    assert!(
        program.stats.spills > 0,
        "PRESSURE should spill on TOYP (got {} spills)",
        program.stats.spills
    );
    assert_trace_matches_stats("toyp", StrategyKind::Postpass);
}

#[test]
fn trace_counters_match_stats_on_r2000() {
    assert_trace_matches_stats("r2000", StrategyKind::Ips);
    assert_trace_matches_stats("r2000", StrategyKind::Rase);
}

#[test]
fn delay_slot_filling_respects_compile_options() {
    let module = marion::frontend::compile(PRESSURE).unwrap();
    let spec = marion::machines::load("r2000");
    let unfilled = Compiler::with_options(
        spec.machine.clone(),
        spec.escapes.clone(),
        StrategyKind::Postpass,
        CompileOptions {
            fill_delay_slots: false,
            ..CompileOptions::default()
        },
    )
    .compile_module(&module)
    .unwrap();
    assert_eq!(unfilled.stats.delay_slots_filled, 0);
    assert!(unfilled.trace.is_none());
    let filled = Compiler::with_options(
        spec.machine.clone(),
        spec.escapes.clone(),
        StrategyKind::Postpass,
        CompileOptions {
            fill_delay_slots: true,
            ..CompileOptions::default()
        },
    )
    .compile_module(&module)
    .unwrap();
    assert!(
        filled.stats.delay_slots_filled > 0,
        "R2000 branches have delay slots to fill"
    );
    assert!(
        filled.stats.nops_emitted < unfilled.stats.nops_emitted,
        "filling must remove nops ({} vs {})",
        filled.stats.nops_emitted,
        unfilled.stats.nops_emitted
    );
}

#[test]
fn reservation_tables_recorded_for_dual_issue_i860() {
    let program = compile_traced("i860", StrategyKind::Postpass, true);
    let trace = program.trace.as_ref().unwrap();
    let tables = trace.events_named("reservation_table");
    assert!(!tables.is_empty(), "no reservation tables recorded");
    for (ctx, fields) in &tables {
        assert!(ctx.starts_with("i860/"), "table ctx {ctx}");
        let table = fields
            .iter()
            .find(|(k, _)| k == "table")
            .and_then(|(_, v)| v.as_str())
            .expect("table field");
        // Header plus at least one cycle row, mentioning a resource.
        assert!(table.lines().count() >= 2, "thin table:\n{table}");
        assert!(table.contains("cycle |"), "missing header:\n{table}");
    }
    // The per-block scheduler events carry the DAG shape.
    let blocks = trace.events_named("sched_block");
    assert!(!blocks.is_empty());
    for (_, fields) in &blocks {
        let get = |key: &str| {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.as_int())
                .unwrap_or_else(|| panic!("missing {key}"))
        };
        assert!(get("dag_nodes") > 0);
        assert!(get("issue_slots_used") == get("insts"));
        assert!(get("issue_cycles") <= get("length"));
        assert!(get("ready_high_water") >= 1);
    }
}

#[test]
fn compile_trace_round_trips_through_jsonl() {
    let program = compile_traced("r2000", StrategyKind::Ips, true);
    let trace = program.trace.unwrap();
    let jsonl = trace.to_jsonl();
    let parsed = TraceData::parse_jsonl(&jsonl).unwrap();
    assert_eq!(parsed, trace);
    // Spot-check against the stats through the serialised form too.
    assert_eq!(
        parsed.counter_total("insts_generated"),
        program.stats.insts_generated as i64
    );
    assert_eq!(parsed.counter_total("spills"), program.stats.spills as i64);
}
