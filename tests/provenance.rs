//! Schedule provenance properties:
//!
//! * `audit_schedule` is a real, independent checker — mutate a valid
//!   schedule (swap two cycles, issue under a latency) and it must
//!   pinpoint the offending instruction and constraint family;
//! * corrupted stall records are caught by the provenance audit;
//! * the acceptance identity `issue − ready == Σ stall cycles` holds
//!   for every instruction of every block over SplitMix64-generated
//!   TOYP programs, with the auditor agreeing throughout;
//! * the annotated DOT export is structurally well-formed and
//!   `check_dot` rejects tampering.

use marion::backend::dag::{build_dag, CodeDag};
use marion::backend::explain::{self, StallReason};
use marion::backend::regalloc::allocate;
use marion::backend::sched::{self, Schedule};
use marion::backend::select::select_func;
use marion::backend::{audit_schedule, code::CodeBlock};
use marion::machines::MachineSpec;
use marion::maril::Machine;
use marion::workloads::gen::{random_program, GenConfig};
use marion::workloads::rng::SplitMix64;

const DOT_PRODUCT: &str = "int a[64]; int b[64];
int main() {
    int i; int s = 0;
    for (i = 0; i < 64; i++) s = s + a[i] * b[i];
    return s;
}";

/// Compiles `src` on `machine_name` Postpass-style and returns every
/// nonempty block with a Rule-1 schedule (blocks that needed a
/// fallback discipline are skipped — the mutation tests want the
/// primary path).
fn scheduled_blocks(spec: &MachineSpec, src: &str) -> Vec<(CodeBlock, CodeDag, Schedule)> {
    let mut module = marion::frontend::compile(src).unwrap();
    marion::backend::driver::materialize_float_constants(&mut module);
    let mut out = Vec::new();
    for f in &module.funcs {
        let mut f = f.clone();
        marion::backend::glue::apply_glue(&spec.machine, &mut f).unwrap();
        let mut code = select_func(&spec.machine, &spec.escapes, &module, &f).unwrap();
        if allocate(&spec.machine, &mut code, &Default::default()).is_err() {
            continue;
        }
        for block in &code.blocks {
            if block.insts.is_empty() {
                continue;
            }
            let dag = build_dag(&spec.machine, block, true);
            if let Ok(s) =
                sched::schedule_block(&spec.machine, &code, block, &dag, &Default::default())
            {
                out.push((block.clone(), dag, s));
            }
        }
    }
    out
}

/// Moves instruction `i` from its scheduled cycle to `to`, keeping
/// `cycles` and `inst_cycle` mutually consistent (so the coverage
/// audit passes and the interesting family reports instead).
fn move_inst(schedule: &mut Schedule, i: usize, to: u32) {
    let from = schedule.inst_cycle[i] as usize;
    schedule.cycles[from].retain(|&x| x != i);
    if schedule.cycles.len() <= to as usize {
        schedule.cycles.resize(to as usize + 1, Vec::new());
    }
    schedule.cycles[to as usize].push(i);
    schedule.inst_cycle[i] = to;
}

#[test]
fn audit_pinpoints_latency_violation() {
    let spec = marion::machines::load("toyp");
    let blocks = scheduled_blocks(&spec, DOT_PRODUCT);
    // Find a binding edge with real latency and issue its sink one
    // cycle too early.
    let mut tested = 0;
    for (block, dag, schedule) in &blocks {
        let Some(e) = dag.edges.iter().find(|e| {
            e.latency >= 2 && schedule.inst_cycle[e.to] == schedule.inst_cycle[e.from] + e.latency
        }) else {
            continue;
        };
        let mut bad = schedule.clone();
        move_inst(&mut bad, e.to, schedule.inst_cycle[e.to] - 1);
        let err = audit_schedule(&spec.machine, block, dag, &bad, true)
            .expect_err("latency violation must be caught");
        assert_eq!(err.kind, "dependence", "wrong family: {err}");
        assert_eq!(err.inst, Some(e.to), "wrong instruction: {err}");
        tested += 1;
    }
    assert!(tested > 0, "no block with a latency-binding edge found");
}

#[test]
fn audit_pinpoints_swapped_cycles() {
    let spec = marion::machines::load("toyp");
    let blocks = scheduled_blocks(&spec, DOT_PRODUCT);
    let mut tested = 0;
    for (block, dag, schedule) in &blocks {
        // Swap the cycles of two dependent instructions.
        let Some(e) = dag
            .edges
            .iter()
            .find(|e| e.latency >= 1 && schedule.inst_cycle[e.from] < schedule.inst_cycle[e.to])
        else {
            continue;
        };
        let (cf, ct) = (schedule.inst_cycle[e.from], schedule.inst_cycle[e.to]);
        let mut bad = schedule.clone();
        move_inst(&mut bad, e.from, ct);
        move_inst(&mut bad, e.to, cf);
        let err = audit_schedule(&spec.machine, block, dag, &bad, true)
            .expect_err("swapped dependent instructions must be caught");
        assert_eq!(err.kind, "dependence", "wrong family: {err}");
        assert_eq!(err.inst, Some(e.to), "wrong instruction: {err}");
        tested += 1;
    }
    assert!(tested > 0, "no block with a dependence edge found");
}

#[test]
fn audit_rejects_corrupted_stall_records() {
    let spec = marion::machines::load("toyp");
    let blocks = scheduled_blocks(&spec, DOT_PRODUCT);
    let mut tested = 0;
    for (block, dag, schedule) in &blocks {
        let Some(victim) = schedule
            .explanation
            .records
            .iter()
            .position(|r| !r.stalls.is_empty())
        else {
            continue;
        };
        // Claim the stall was a conflict on a resource the
        // instruction never uses and nobody holds.
        let mut bad = schedule.clone();
        bad.explanation.records[victim].stalls[0].reason = StallReason::Resource { resource: 200 };
        let err = audit_schedule(&spec.machine, block, dag, &bad, true)
            .expect_err("fabricated stall reason must be caught");
        assert_eq!(err.kind, "provenance", "wrong family: {err}");
        assert_eq!(err.inst, Some(victim), "wrong instruction: {err}");
        tested += 1;
    }
    assert!(tested > 0, "no stalled instruction found to corrupt");
}

/// Schedules one random TOYP program's blocks and asserts the
/// acceptance identity plus auditor agreement on each.
fn check_toyp_program(spec: &MachineSpec, seed: u64) {
    let src = random_program(seed, &GenConfig::default());
    for (block, dag, schedule) in &scheduled_blocks(spec, &src) {
        let ex = &schedule.explanation;
        assert_eq!(ex.records.len(), block.insts.len(), "seed {seed}");
        for r in &ex.records {
            assert_eq!(
                r.stall_cycles(),
                r.issue_cycle - r.ready_cycle,
                "seed {seed}: [{}] ready {} issue {} stalls {:?}",
                r.inst,
                r.ready_cycle,
                r.issue_cycle,
                r.stalls
            );
            assert!(r.earliest_cycle >= r.ready_cycle, "seed {seed}");
            assert!(r.issue_cycle >= r.earliest_cycle, "seed {seed}");
        }
        audit_schedule(&spec.machine, block, dag, schedule, true)
            .unwrap_or_else(|e| panic!("seed {seed}: audit: {e}"));
    }
}

#[test]
fn stalls_account_for_every_wait_cycle_on_toyp() {
    let spec = marion::machines::load("toyp");
    let mut rng = SplitMix64::new(0xA11D17);
    for _ in 0..12 {
        check_toyp_program(&spec, rng.below(100_000));
    }
}

fn dot_for(machine: &Machine, block: &CodeBlock, dag: &CodeDag, schedule: &Schedule) -> String {
    explain::dag_to_dot(machine, block, dag, schedule, "test/b0")
}

#[test]
fn dot_export_is_well_formed_and_tamper_evident() {
    let spec = marion::machines::load("toyp");
    let blocks = scheduled_blocks(&spec, DOT_PRODUCT);
    assert!(!blocks.is_empty());
    let mut checked = 0;
    for (block, dag, schedule) in &blocks {
        let dot = dot_for(&spec.machine, block, dag, schedule);
        explain::check_dot(&dot, dag).unwrap_or_else(|e| panic!("malformed DOT: {e}\n{dot}"));
        checked += 1;
        if dag.n >= 2 && !dag.edges.is_empty() {
            // Drop one node statement: count mismatch.
            let cut: Vec<&str> = dot
                .lines()
                .filter(|l| !l.trim_start().starts_with("n0 ["))
                .collect();
            assert!(explain::check_dot(&cut.join("\n"), dag).is_err());
            // Unbalance the braces.
            assert!(explain::check_dot(dot.trim_end().trim_end_matches('}'), dag).is_err());
        }
    }
    assert!(checked > 0);
}
