//! Randomised differential testing: random generated programs must
//! produce identical results in the IR reference interpreter and when
//! compiled by Marion and executed on the pipeline simulator.
//!
//! This is the strongest whole-system invariant the repository has:
//! it exercises the front end, glue, selection (including escapes and
//! immediate materialisation), scheduling (including EAP temporal
//! scheduling on the i860), register allocation (including spills and
//! register pairs) and the simulator in one property.
//!
//! Seeds are drawn deterministically from the in-repo
//! [`marion::workloads::rng::SplitMix64`] generator (no external
//! fuzzing dependency), so failures reproduce exactly: re-run with the
//! printed seed via `check_seed`.

use marion::backend::{Compiler, StrategyKind};
use marion::ir::interp::{Interp, Value};
use marion::sim::{run_program, SimConfig};
use marion::workloads::gen::{random_program, GenConfig};
use marion::workloads::rng::SplitMix64;

/// Cases per machine/strategy pair (the proptest suite ran 24).
const CASES: u64 = 24;

fn check_seed(seed: u64, machine_name: &str, strategy: StrategyKind) {
    let config = GenConfig::default();
    let src = random_program(seed, &config);
    let module = marion::frontend::compile(&src)
        .unwrap_or_else(|e| panic!("seed {seed}: front end: {e}\n{src}"));
    let mut interp = Interp::new(&module, 1 << 20).with_budget(50_000_000);
    let expected = interp
        .call_by_name("main", &[])
        .unwrap_or_else(|e| panic!("seed {seed}: interp: {e}\n{src}"))
        .unwrap();
    let spec = marion::machines::load(machine_name);
    let compiler = Compiler::new(spec.machine.clone(), spec.escapes.clone(), strategy);
    let program = compiler
        .compile_module(&module)
        .unwrap_or_else(|e| panic!("seed {seed} on {machine_name}/{strategy}: {e}\n{src}"));
    let run = run_program(
        &spec.machine,
        &program,
        "main",
        &[],
        Some(marion::maril::Ty::Int),
        &SimConfig::default(),
    )
    .unwrap_or_else(|e| panic!("seed {seed} on {machine_name}/{strategy}: sim: {e}\n{src}"));
    let got = run.result.unwrap();
    let matches = matches!((expected, got), (Value::I(a), Value::I(b)) if a == b);
    assert!(
        matches,
        "seed {seed} on {machine_name}/{strategy}: interp {expected:?} != sim {got:?}\n{src}\n{}",
        program.render(&spec.machine)
    );
}

/// Draws `CASES` program seeds from a per-configuration stream and
/// checks each one.
fn check_many(stream_seed: u64, machine_name: &str, strategy: StrategyKind) {
    let mut rng = SplitMix64::new(stream_seed);
    for _ in 0..CASES {
        check_seed(rng.below(100_000), machine_name, strategy);
    }
}

#[test]
fn random_programs_agree_on_r2000() {
    check_many(0xA11CE, "r2000", StrategyKind::Ips);
}

#[test]
fn random_programs_agree_on_i860() {
    check_many(0xB0B, "i860", StrategyKind::Postpass);
}

#[test]
fn random_programs_agree_on_toyp() {
    check_many(0xCAFE, "toyp", StrategyKind::Rase);
}

#[test]
fn random_programs_agree_on_m88k() {
    check_many(0xD00D, "m88k", StrategyKind::Ips);
}

#[test]
fn random_programs_agree_on_rs6000() {
    check_many(0xE66, "rs6000", StrategyKind::Rase);
}
