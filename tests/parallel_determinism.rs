//! Parallel compilation must be invisible in the output: for any
//! worker count, the assembly is byte-identical to the serial
//! compile, the statistics agree, and the merged trace counters sum
//! to the serial totals. Also pins the indexed-selection cross-check:
//! the `SelectionIndex` fast path picks exactly the templates the
//! brute-force matcher would.

use marion::backend::{CompileOptions, CompiledProgram, Compiler, StrategyKind};
use marion::ir::Module;
use marion::trace::TraceConfig;
use std::num::NonZeroUsize;

const MACHINES: [&str; 3] = ["toyp", "r2000", "i860"];
const STRATEGIES: [StrategyKind; 3] = [
    StrategyKind::Postpass,
    StrategyKind::Ips,
    StrategyKind::Rase,
];

fn compile(
    machine: &str,
    strategy: StrategyKind,
    module: &Module,
    jobs: usize,
    indexed: bool,
    trace: bool,
) -> CompiledProgram {
    let spec = marion::machines::load(machine);
    let compiler = Compiler::with_options(
        spec.machine.clone(),
        spec.escapes.clone(),
        strategy,
        CompileOptions {
            jobs: NonZeroUsize::new(jobs),
            indexed_select: indexed,
            trace: trace.then(TraceConfig::default),
            ..CompileOptions::default()
        },
    );
    compiler
        .compile_module(module)
        .unwrap_or_else(|e| panic!("{machine}/{strategy:?}: {e}"))
}

fn render(machine: &str, program: &CompiledProgram) -> String {
    program.render(&marion::machines::load(machine).machine)
}

#[test]
fn parallel_assembly_is_byte_identical_to_serial() {
    let module = marion::workloads::multi::combined_livermore();
    for machine in MACHINES {
        for strategy in STRATEGIES {
            let serial = compile(machine, strategy, &module, 1, true, false);
            let parallel = compile(machine, strategy, &module, 8, true, false);
            assert_eq!(
                render(machine, &serial),
                render(machine, &parallel),
                "{machine}/{strategy:?}: jobs=8 changed the assembly"
            );
            assert_eq!(
                serial.stats, parallel.stats,
                "{machine}/{strategy:?}: jobs=8 changed the statistics"
            );
        }
    }
}

#[test]
fn parallel_trace_counters_match_serial() {
    let module = marion::workloads::multi::combined_livermore();
    let serial = compile("r2000", StrategyKind::Ips, &module, 1, true, true);
    let parallel = compile("r2000", StrategyKind::Ips, &module, 8, true, true);
    let st = serial.trace.expect("serial trace");
    let pt = parallel.trace.expect("parallel trace");
    for counter in [
        "insts_generated",
        "spills",
        "delay_slots_filled",
        "schedule_passes",
        "estimated_cycles",
        "nops_emitted",
    ] {
        assert_eq!(
            st.counter_total(counter),
            pt.counter_total(counter),
            "merged {counter} diverges from serial"
        );
    }
    // The per-function spans all arrived, one per function.
    assert_eq!(
        st.spans_named("compile_func").len(),
        pt.spans_named("compile_func").len()
    );
    assert_eq!(pt.spans_named("compile_func").len(), module.funcs.len());
}

#[test]
fn compiling_the_same_module_twice_is_deterministic() {
    // Guards against hash-iteration-order leaks anywhere in the
    // pipeline (the RASE cost biasing and the allocator's eviction
    // path have been bitten before).
    let module = marion::workloads::multi::combined_generated(6, 42);
    for machine in MACHINES {
        for strategy in STRATEGIES {
            let a = compile(machine, strategy, &module, 1, true, false);
            let b = compile(machine, strategy, &module, 1, true, false);
            assert_eq!(
                render(machine, &a),
                render(machine, &b),
                "{machine}/{strategy:?}: two identical compiles differ"
            );
        }
    }
}

#[test]
fn fifty_repeated_compiles_per_strategy_are_byte_identical() {
    // Regression guard for hash-iteration-order nondeterminism in the
    // scheduler: same-clock serialisation once walked a `HashMap` of
    // clock buckets in iteration order, so the chain chosen for the
    // i860's explicitly clocked pipelines (and hence the successor
    // lists, priorities and final schedule) could differ from run to
    // run. Fifty identical compiles per strategy on the clocked
    // machine must render the same bytes, serial or parallel.
    let module = marion::workloads::multi::combined_generated(2, 9);
    let machine = "i860";
    for strategy in STRATEGIES {
        let baseline = compile(machine, strategy, &module, 1, true, false);
        let expected = render(machine, &baseline);
        for run in 1..50usize {
            let jobs = if run % 2 == 0 { 1 } else { 4 };
            let again = compile(machine, strategy, &module, jobs, true, false);
            assert_eq!(
                expected,
                render(machine, &again),
                "{machine}/{strategy:?}: run {run} (jobs={jobs}) diverged"
            );
            assert_eq!(
                baseline.stats, again.stats,
                "{machine}/{strategy:?}: run {run} (jobs={jobs}) stats diverged"
            );
        }
    }
}

#[test]
fn indexed_selection_matches_brute_force() {
    let module = marion::workloads::multi::combined_livermore();
    for machine in MACHINES {
        let indexed = compile(machine, StrategyKind::Ips, &module, 1, true, false);
        let brute = compile(machine, StrategyKind::Ips, &module, 1, false, false);
        assert_eq!(
            render(machine, &indexed),
            render(machine, &brute),
            "{machine}: SelectionIndex and brute-force matching diverge"
        );
        assert_eq!(indexed.stats, brute.stats);
    }
}
