//! Property: every schedule the compiler produces satisfies the
//! paper's constraints — dependences, structural hazards, packing
//! classes and Rule 1 — as checked by
//! [`marion::backend::sched::verify_schedule`]. Random programs on
//! every machine, plus the Livermore kernels on the EAP machine.
//!
//! Random programs come from deterministic in-repo seeds
//! ([`marion::workloads::rng::SplitMix64`]); a failure names its seed
//! and reproduces exactly.

use marion::backend::{audit_schedule, sched::Schedule};
use marion::backend::{dag::build_dag, regalloc::allocate, sched, select::select_func};
use marion::workloads::gen::{random_program, GenConfig};
use marion::workloads::rng::SplitMix64;

/// Every placed instruction's stall tiles must exactly account for
/// the gap between its ready and issue cycles (the provenance
/// acceptance identity).
fn assert_stalls_account(machine_name: &str, schedule: &Schedule) {
    for r in &schedule.explanation.records {
        assert_eq!(
            r.stall_cycles(),
            r.issue_cycle - r.ready_cycle,
            "{machine_name}: [{}] stall tiles don't cover ready {} .. issue {}: {:?}",
            r.inst,
            r.ready_cycle,
            r.issue_cycle,
            r.stalls
        );
    }
}

/// Select, allocate (Postpass-style) and schedule every block,
/// verifying each schedule.
fn check_all_schedules(machine_name: &str, src: &str) {
    let spec = marion::machines::load(machine_name);
    let mut module = marion::frontend::compile(src).unwrap();
    marion::backend::driver::materialize_float_constants(&mut module);
    for f in &module.funcs {
        let mut f = f.clone();
        marion::backend::glue::apply_glue(&spec.machine, &mut f).unwrap();
        let code_res = select_func(&spec.machine, &spec.escapes, &module, &f);
        let mut code = code_res.unwrap_or_else(|e| panic!("{machine_name}: select: {e}"));
        if allocate(&spec.machine, &mut code, &Default::default()).is_err() {
            // Structural overcommit on tiny machines is handled by the
            // strategies' fallbacks; scheduling invariants are then
            // checked through the driver path instead.
            continue;
        }
        for block in &code.blocks {
            if block.insts.is_empty() {
                continue;
            }
            let dag = build_dag(&spec.machine, block, true);
            match sched::schedule_block(&spec.machine, &code, block, &dag, &Default::default()) {
                Ok(schedule) => {
                    sched::verify_schedule(&spec.machine, block, &dag, &schedule)
                        .unwrap_or_else(|e| panic!("{machine_name}: invalid schedule: {e}"));
                    // The independent auditor must agree, including
                    // with every recorded stall reason.
                    audit_schedule(&spec.machine, block, &dag, &schedule, true)
                        .unwrap_or_else(|e| panic!("{machine_name}: audit disagrees: {e}"));
                    assert_stalls_account(machine_name, &schedule);
                }
                Err(_) => {
                    // The strategies' fallback discipline: latch
                    // name-dependences instead of Rule 1. Verified
                    // against its own DAG, minus the Rule 1 check.
                    let dag2 =
                        marion::backend::dag::build_dag_with(&spec.machine, block, true, true);
                    let opts = sched::SchedOptions {
                        ignore_rule1: true,
                        ..Default::default()
                    };
                    let schedule =
                        match sched::schedule_block(&spec.machine, &code, block, &dag2, &opts) {
                            Ok(s) => s,
                            Err(_) => sched::serial_schedule(&spec.machine, block, &dag2),
                        };
                    sched::verify_schedule_with(&spec.machine, block, &dag2, &schedule, false)
                        .unwrap_or_else(|e| panic!("{machine_name}: invalid fallback: {e}"));
                    audit_schedule(&spec.machine, block, &dag2, &schedule, false).unwrap_or_else(
                        |e| panic!("{machine_name}: fallback audit disagrees: {e}"),
                    );
                    assert_stalls_account(machine_name, &schedule);
                }
            }
        }
    }
}

#[test]
fn schedules_valid_on_all_machines() {
    // 16 deterministic random programs (the proptest suite ran 16
    // cases), each checked on every bundled machine.
    let mut rng = SplitMix64::new(0x5EED);
    for _ in 0..16 {
        let seed = rng.below(100_000);
        let src = random_program(seed, &GenConfig::default());
        for machine in marion::machines::EXTENDED {
            check_all_schedules(machine, &src);
        }
    }
}

#[test]
fn livermore_schedules_valid_on_i860() {
    // The EAP machine is where Rule 1 and packing classes bite.
    for kernel in marion::workloads::livermore::kernels() {
        check_all_schedules("i860", &kernel.source);
    }
}

#[test]
fn serial_fallback_schedules_are_valid_too() {
    let spec = marion::machines::load("i860");
    let kernels = marion::workloads::livermore::kernels();
    let ll7 = kernels.iter().find(|k| k.name == "LL7").unwrap();
    let mut module = ll7.module();
    marion::backend::driver::materialize_float_constants(&mut module);
    for f in &module.funcs {
        let mut f = f.clone();
        marion::backend::glue::apply_glue(&spec.machine, &mut f).unwrap();
        let code = select_func(&spec.machine, &spec.escapes, &module, &f).unwrap();
        for block in &code.blocks {
            if block.insts.is_empty() {
                continue;
            }
            let dag = build_dag(&spec.machine, block, true);
            let schedule = sched::serial_schedule(&spec.machine, block, &dag);
            // The serial fallback must satisfy dependences and
            // resources; Rule 1 is intentionally waived for it (the
            // simulator's per-word semantics make thread order safe),
            // so check the first two constraint families only via a
            // full verify on blocks without temporal edges.
            let has_temporal = dag
                .edges
                .iter()
                .any(|e| matches!(e.kind, marion::backend::dag::EdgeKind::TrueTemporal(_)));
            if !has_temporal {
                sched::verify_schedule(&spec.machine, block, &dag, &schedule)
                    .unwrap_or_else(|e| panic!("serial schedule invalid: {e}"));
                audit_schedule(&spec.machine, block, &dag, &schedule, true)
                    .unwrap_or_else(|e| panic!("serial audit disagrees: {e}"));
            }
            assert_stalls_account("i860", &schedule);
        }
    }
}
