//! Retargeting regression tests: replay the fuzz corpus and keep the
//! generator's core contracts honest.
//!
//! `corpus/` holds minimised reproducers for every compiler bug the
//! retargeting fuzzer (`marion-fuzz`, `crates/mdgen`) has found. Each
//! entry records the generated machine (canonical Maril text), the
//! program that tripped it, and the (workload, strategy) pair it
//! failed under. Replaying an entry runs the machine through the real
//! Maril front door and the full differential audit — a failure here
//! means a fixed bug has reappeared, with the reproducer already in
//! hand.

use marion_mdgen::audit::{audit_machine, prepare_smoke_suite};
use marion_mdgen::corpus::load_dir;
use std::path::Path;

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// Every corpus entry must replay clean: the recorded bugs are fixed,
/// and this is the tripwire that keeps them fixed.
#[test]
fn corpus_entries_replay_clean() {
    let entries = load_dir(&corpus_dir()).expect("corpus directory must parse");
    assert!(
        !entries.is_empty(),
        "corpus/ is empty — the checked-in reproducers are missing"
    );
    let mut broken = Vec::new();
    for (path, entry) in &entries {
        if let Err(e) = entry.replay() {
            broken.push(format!("{}: {e}", path.display()));
        }
    }
    assert!(
        broken.is_empty(),
        "recorded bugs have reappeared:\n{}",
        broken.join("\n")
    );
}

/// A fixed-seed fuzz smoke: freshly generated machines must pass the
/// differential audit on the reduced workload suite. Seeds land in the
/// band `marion-fuzz --smoke` exercises in CI, so a regression shows
/// up identically in both places.
#[test]
fn fixed_seed_smoke_audit_passes() {
    let workloads = prepare_smoke_suite();
    let escapes = marion_machines::toyp::escapes();
    for seed in [0u64, 1] {
        let gen =
            marion_mdgen::generate(seed).unwrap_or_else(|e| panic!("seed {seed}: generator: {e}"));
        let machine = gen
            .machine()
            .unwrap_or_else(|e| panic!("seed {seed}: front door: {e}"));
        let audit = audit_machine(&machine, &escapes, &workloads, seed as usize);
        assert!(
            audit.passed(),
            "seed {seed} ({}) failed the audit: {:?}",
            gen.config.summary(),
            audit
                .failures
                .iter()
                .map(|f| format!(
                    "{} {} {}: {}",
                    f.kind.tag(),
                    f.workload,
                    f.strategy.name(),
                    f.detail
                ))
                .collect::<Vec<_>>()
        );
        assert!(audit.blocks_audited > 0, "seed {seed}: audited no blocks");
    }
}

/// Generation is a pure function of the seed: same seed, byte-equal
/// canonical text. Everything downstream (the corpus, `--seed`
/// replays, BENCH_retarget.json) leans on this.
#[test]
fn generation_is_byte_reproducible() {
    for seed in [0u64, 7, 19, 123456789] {
        let a = marion_mdgen::generate(seed).unwrap();
        let b = marion_mdgen::generate(seed).unwrap();
        assert_eq!(a.text, b.text, "seed {seed}: texts differ between runs");
    }
}
