//! Livermore kernels, compiled and simulated, must agree with the IR
//! interpreter on every machine (a subset per machine keeps the debug
//! profile fast; the bench binaries run all 14 everywhere).

use marion::backend::{Compiler, StrategyKind};
use marion::ir::interp::{Interp, Value};
use marion::sim::{run_program, SimConfig};

fn check(kernel_name: &str, machine: &str, strategy: StrategyKind) {
    let kernels = marion::workloads::livermore::kernels();
    let kernel = kernels.iter().find(|k| k.name == kernel_name).unwrap();
    let module = kernel.module();
    let mut interp = Interp::new(&module, 1 << 22).with_budget(400_000_000);
    let expected = interp.call_by_name("main", &[]).unwrap().unwrap();
    let spec = marion::machines::load(machine);
    let compiler = Compiler::new(spec.machine.clone(), spec.escapes.clone(), strategy);
    let program = compiler
        .compile_module(&module)
        .unwrap_or_else(|e| panic!("{kernel_name} on {machine}/{strategy}: {e}"));
    let run = run_program(
        &spec.machine,
        &program,
        "main",
        &[],
        Some(marion::maril::Ty::Int),
        &SimConfig::default(),
    )
    .unwrap_or_else(|e| panic!("{kernel_name} on {machine}/{strategy}: {e}"));
    let got = run.result.unwrap();
    let ok = matches!((expected, got), (Value::I(a), Value::I(b)) if a == b);
    assert!(
        ok,
        "{kernel_name} on {machine}/{strategy}: interp {expected:?} != sim {got:?}"
    );
}

#[test]
fn ll1_hydro_everywhere() {
    for machine in marion::machines::ALL {
        check("LL1", machine, StrategyKind::Ips);
    }
}

#[test]
fn ll3_inner_product_everywhere() {
    for machine in marion::machines::ALL {
        check("LL3", machine, StrategyKind::Postpass);
    }
}

#[test]
fn ll5_recurrence_r2000_all_strategies() {
    for strategy in StrategyKind::ALL {
        check("LL5", "r2000", strategy);
    }
}

#[test]
fn ll7_eos_i860_postpass_and_ips() {
    check("LL7", "i860", StrategyKind::Postpass);
    check("LL7", "i860", StrategyKind::Ips);
}

#[test]
fn ll12_first_diff_everywhere_rase() {
    for machine in marion::machines::ALL {
        check("LL12", machine, StrategyKind::Rase);
    }
}

#[test]
fn ll13_pic_m88k_and_toyp() {
    check("LL13", "m88k", StrategyKind::Ips);
    check("LL13", "toyp", StrategyKind::Postpass);
}
